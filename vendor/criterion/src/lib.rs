//! Minimal, dependency-free re-implementation of the subset of the
//! `criterion` API this workspace's benches use. The container this
//! repository builds in has no access to crates.io, so the real criterion
//! cannot be vendored.
//!
//! Semantics: each `bench_function` runs a short warm-up, then times a
//! fixed-duration measurement loop and prints mean wall time per
//! iteration (plus throughput when configured). No statistics, plots, or
//! saved baselines.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How much setup output to hand each batch in `iter_batched`.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Opaque value blackhole preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The timing driver handed to `bench_function` closures.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Filled in by the iteration helpers.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine` over repeated calls.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: one call (the workspace's benches are long-running
        // end-to-end pipelines; a fixed warm-up budget would double them).
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.sample_size as u64 {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.result = Some((start.elapsed(), iters.max(1)));
    }

    /// Times `routine` over inputs produced by `setup` (setup excluded
    /// from timing).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while iters < self.sample_size as u64 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
            if total >= self.measurement_time {
                break;
            }
        }
        self.result = Some((total, iters.max(1)));
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; warm-up is a single call.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Caps the wall time spent measuring one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut b);
        let (elapsed, iters) = b.result.unwrap_or((Duration::ZERO, 1));
        let per_iter = elapsed.as_secs_f64() / iters as f64;
        let mut line = format!(
            "{}/{}: {} iters, {:.3} ms/iter",
            self.name,
            id,
            iters,
            per_iter * 1e3
        );
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / per_iter.max(1e-12);
                line.push_str(&format!(", {rate:.0} elem/s"));
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / per_iter.max(1e-12);
                line.push_str(&format!(", {rate:.0} B/s"));
            }
            None => {}
        }
        println!("{line}");
        self.criterion.benches_run += 1;
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    benches_run: usize,
}

impl Criterion {
    /// Accepted for API compatibility with `criterion_main!`.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            throughput: None,
            criterion: self,
        }
    }

    /// Runs one unnamed-group benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
