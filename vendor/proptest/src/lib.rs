//! Minimal, dependency-free, deterministic re-implementation of the
//! subset of the `proptest` API this workspace uses.
//!
//! The container this repository builds in has no network access to
//! crates.io, so the real `proptest` cannot be vendored; this shim keeps
//! the property tests compiling and genuinely running many random cases.
//! Differences from upstream:
//!
//! * no shrinking — a failing case panics with its seed and case number;
//! * generation is deterministic per test (seeded from the test name), so
//!   CI runs are reproducible;
//! * only the strategies the workspace needs are provided (integer and
//!   float ranges, `any`, tuples, `Just`, `prop_oneof!`, collections,
//!   `sample::select`, `option::of`, simple regex-class string patterns,
//!   `prop_map`, `prop_recursive`).

pub mod test_runner {
    /// Per-test configuration (subset: the number of cases to run).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Why a single case failed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion in the test body failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// Deterministic xorshift* PRNG used to drive all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator (seed 0 is remapped to a fixed constant).
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. Unlike upstream there is no value tree: strategies
/// produce plain values and failures are not shrunk.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds recursive values: `recurse` receives a strategy for the
    /// previous depth level and returns the strategy for one level up.
    /// `depth` bounds the recursion; the other two upstream tuning knobs
    /// are accepted and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
        for _ in 0..depth {
            let prev = levels.last().expect("non-empty").clone();
            levels.push(recurse(prev).boxed());
        }
        BoxedStrategy::from_fn(move |rng| {
            let pick = rng.below(levels.len() as u64) as usize;
            levels[pick].generate(rng)
        })
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy::from_fn(move |rng| inner.generate(rng))
    }
}

/// A clonable type-erased strategy.
pub struct BoxedStrategy<T> {
    gen: std::rc::Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: std::rc::Rc::clone(&self.gen),
        }
    }
}

impl<T> BoxedStrategy<T> {
    fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy {
            gen: std::rc::Rc::new(f),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy generating one constant value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2e6 - 1e6
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The `any::<T>()` strategy over an [`Arbitrary`] type.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// String strategies from a tiny regex-like pattern language supporting
/// literals, escapes, `[...]` classes with ranges, groups, and the
/// `{m,n}` / `{n}` / `?` / `*` / `+` quantifiers.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

mod pattern {
    use super::TestRng;

    #[derive(Clone, Debug)]
    enum Item {
        Lit(char),
        Class(Vec<(char, char)>),
        Group(Vec<(Item, (u32, u32))>),
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Item {
        let mut ranges = Vec::new();
        loop {
            let c = chars.next().expect("unterminated character class");
            if c == ']' {
                break;
            }
            let c = if c == '\\' { unescape(chars.next().expect("escape")) } else { c };
            if chars.peek() == Some(&'-') {
                let mut look = chars.clone();
                look.next();
                if look.peek() != Some(&']') {
                    chars.next();
                    let hi = chars.next().expect("range end");
                    let hi = if hi == '\\' { unescape(chars.next().expect("escape")) } else { hi };
                    ranges.push((c, hi));
                    continue;
                }
            }
            ranges.push((c, c));
        }
        Item::Class(ranges)
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn parse_seq(
        chars: &mut std::iter::Peekable<std::str::Chars>,
        in_group: bool,
    ) -> Vec<(Item, (u32, u32))> {
        let mut items = Vec::new();
        while let Some(&c) = chars.peek() {
            if in_group && c == ')' {
                chars.next();
                break;
            }
            chars.next();
            let item = match c {
                '[' => parse_class(chars),
                '(' => Item::Group(parse_seq(chars, true)),
                '\\' => Item::Lit(unescape(chars.next().expect("escape"))),
                other => Item::Lit(other),
            };
            let quant = match chars.peek() {
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    let (lo, hi) = match spec.split_once(',') {
                        Some((lo, hi)) => (lo.parse().expect("bound"), hi.parse().expect("bound")),
                        None => {
                            let n: u32 = spec.parse().expect("bound");
                            (n, n)
                        }
                    };
                    (lo, hi)
                }
                _ => (1, 1),
            };
            items.push((item, quant));
        }
        items
    }

    fn emit(items: &[(Item, (u32, u32))], rng: &mut TestRng, out: &mut String) {
        for (item, (lo, hi)) in items {
            let reps = lo + rng.below((hi - lo + 1) as u64) as u32;
            for _ in 0..reps {
                match item {
                    Item::Lit(c) => out.push(*c),
                    Item::Class(ranges) => {
                        let (lo_c, hi_c) = ranges[rng.below(ranges.len() as u64) as usize];
                        let span = hi_c as u32 - lo_c as u32 + 1;
                        let v = lo_c as u32 + rng.below(span as u64) as u32;
                        out.push(char::from_u32(v).unwrap_or(lo_c));
                    }
                    Item::Group(inner) => emit(inner, rng, out),
                }
            }
        }
    }

    /// Generates one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut chars = pattern.chars().peekable();
        let items = parse_seq(&mut chars, false);
        let mut out = String::new();
        emit(&items, rng, &mut out);
        out
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy producing `Vec`s with sizes drawn from a range strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `vec(element, size_range)` as in upstream proptest.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniformly selects one of the given values.
    pub struct Select<T: Clone>(Vec<T>);

    /// `select(values)` as in upstream proptest.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select over an empty list");
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Generates `None` a quarter of the time, `Some` otherwise.
    pub struct OptionStrategy<S>(S);

    /// `of(strategy)` as in upstream proptest.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// The `prop::` namespace as re-exported by the upstream prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

/// Stable per-test seed derived from the test's (module-qualified) name.
pub fn seed_from_name(name: &str) -> u64 {
    // FNV-1a.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything the workspace imports via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
    pub use crate::test_runner::TestCaseError;
}

/// One-of strategy over same-valued alternatives (no weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct OneOf<T> {
    alts: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Wraps the alternatives.
    pub fn new(alts: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!alts.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { alts }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.alts.len() as u64) as usize;
        self.alts[i].generate(rng)
    }
}

/// `prop_assert!` — fails the current case (without panicking the whole
/// process until the runner reports seed and case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!` analogue of `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// `prop_assert_ne!` analogue of `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// The `proptest!` test-definition macro (subset: function items with
/// `pat in strategy` arguments and an optional leading
/// `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut rng = $crate::TestRng::new(seed);
                let strategy = ($($strategy,)+);
                for case in 0..cfg.cases {
                    let value = $crate::Strategy::generate(&strategy, &mut rng);
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            let ($($pat,)+) = value;
                            $body
                            Ok(())
                        })();
                    if let Err($crate::test_runner::TestCaseError::Fail(msg)) = result {
                        panic!(
                            "proptest case {} of {} failed (seed {:#x}): {}",
                            case + 1, cfg.cases, seed, msg
                        );
                    }
                }
            }
        )*
    };
}
