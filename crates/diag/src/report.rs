//! The violation report: one struct, two renderers.
//!
//! Both the human-readable text and the JSON document are derived from
//! the same [`ViolationReport`] fields through the same address
//! formatter, so the two renderings agree on every address by
//! construction.

use crate::symbolize::Frame;
use janitizer_dbt::{JasanContext, JcfiContext, ShadowRow, ToolContext, ViolationKind};
use janitizer_isa::Reg;
use janitizer_telemetry::json::Json;
use std::fmt::Write as _;

/// Schema tag stamped into every JSON report; bump on layout changes.
pub const REPORT_SCHEMA: &str = "janitizer.diag.report/v1";

/// One disassembled instruction of the faulting-pc window.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DisasmLine {
    /// Instruction address.
    pub addr: u64,
    /// Raw encoded bytes, `objdump`-style hex.
    pub bytes: String,
    /// Decoded mnemonic.
    pub text: String,
    /// Whether this is the faulting instruction.
    pub fault: bool,
}

/// A fully assembled forensic report for one violation.
#[derive(Clone, Debug)]
pub struct ViolationReport {
    /// Stable identifier: `tool-exe-seq-pc` (deterministic, clock-free).
    pub id: String,
    /// Reporting plugin (`jasan`, `jcfi`, ...).
    pub tool: String,
    /// Executable the violation occurred in.
    pub exe: String,
    /// Index of this report within the run (report *i* of the engine).
    pub seq: usize,
    /// Violation category.
    pub kind: ViolationKind,
    /// Guest pc of the guarded instruction.
    pub pc: u64,
    /// The raw one-line detail string from the probe.
    pub details: String,
    /// Symbolized backtrace; frame 0 is the faulting pc.
    pub backtrace: Vec<Frame>,
    /// Disassembly window around the faulting pc.
    pub disasm: Vec<DisasmLine>,
    /// Register snapshot at violation time.
    pub regs: [u64; 16],
    /// Packed condition flags.
    pub flags: u8,
    /// Symbolized execution trail (oldest block first).
    pub trail: Vec<Frame>,
    /// Tool-specific context.
    pub context: ToolContext,
}

/// The one address formatter both renderers share.
fn addr_str(a: u64) -> String {
    format!("{a:#010x}")
}

fn frame_json(f: &Frame) -> Json {
    Json::obj([
        ("addr", Json::str(addr_str(f.addr))),
        (
            "module",
            f.module.as_deref().map(Json::str).unwrap_or(Json::Null),
        ),
        (
            "symbol",
            f.symbol.as_deref().map(Json::str).unwrap_or(Json::Null),
        ),
        ("offset", Json::str(format!("{:#x}", f.offset))),
    ])
}

fn shadow_row_text(row: &ShadowRow, fault_addr: Option<u64>) -> String {
    let mut line = format!("  {}:", addr_str(row.base));
    for (g, s) in row.shadow.iter().enumerate() {
        let granule = row.base + g as u64 * 8;
        let hit = fault_addr.is_some_and(|a| a >= granule && a < granule + 8);
        let cell = match s {
            Some(b) => format!("{b:02x}"),
            None => "--".into(),
        };
        if hit {
            let _ = write!(line, " [{cell}]");
        } else {
            let _ = write!(line, "  {cell} ");
        }
    }
    line
}

fn jasan_text(out: &mut String, j: &JasanContext) {
    let _ = writeln!(
        out,
        "JASan shadow map around {} ({} of size {}, shadow byte {:#04x} = {}):",
        addr_str(j.access_addr),
        if j.is_write { "WRITE" } else { "READ" },
        j.access_size,
        j.shadow_byte,
        shadow_label(j.shadow_byte),
    );
    for row in &j.rows {
        let _ = writeln!(out, "{}", shadow_row_text(row, Some(j.access_addr)));
    }
    let _ = writeln!(
        out,
        "  Legend: 00 addressable, 01-07 partial, fa heap redzone, fd freed heap, f1 stack canary, -- unmapped"
    );
}

/// Local copy of JASan's shadow-byte legend: diag cannot depend on the
/// jasan crate (jasan depends on the layers below diag), so the marker
/// values are matched by their architectural constants.
fn shadow_label(s: u8) -> &'static str {
    match s {
        0 => "addressable",
        1..=7 => "partial granule",
        0xfa => "heap redzone",
        0xfd => "freed heap",
        0xf1 => "stack canary",
        _ => "poisoned",
    }
}

fn jcfi_text(out: &mut String, j: &JcfiContext, bt: &[Frame]) {
    let _ = writeln!(out, "JCFI {} policy check failed:", j.cti);
    let _ = writeln!(out, "  actual target:   {}", addr_str(j.actual));
    match j.expected {
        Some(e) => {
            let _ = writeln!(out, "  expected target: {}", addr_str(e));
        }
        None => {
            let _ = writeln!(out, "  expected target: (any of the allowed set)");
        }
    }
    let sample: Vec<String> = j.allowed_sample.iter().map(|&a| addr_str(a)).collect();
    let _ = writeln!(
        out,
        "  allowed set: {} target(s){}",
        j.allowed_count,
        if sample.is_empty() {
            String::new()
        } else {
            format!(" (sample: {})", sample.join(", "))
        }
    );
    if !j.shadow_stack.is_empty() {
        let _ = writeln!(out, "  shadow stack (top first):");
        for (i, &a) in j.shadow_stack.iter().enumerate() {
            // Reuse the backtrace's symbolization when it walked the
            // shadow stack (frame 0 is the pc, frames 1.. the stack).
            match bt.get(i + 1).filter(|f| f.addr == a) {
                Some(f) => {
                    let _ = writeln!(out, "    {f}");
                }
                None => {
                    let _ = writeln!(out, "    {}", addr_str(a));
                }
            }
        }
    }
}

fn context_json(ctx: &ToolContext) -> Json {
    match ctx {
        ToolContext::None => Json::obj([("type", Json::str("none"))]),
        ToolContext::Jasan(j) => Json::obj([
            ("type", Json::str("jasan")),
            ("access_addr", Json::str(addr_str(j.access_addr))),
            ("access_size", Json::U64(j.access_size)),
            ("is_write", Json::Bool(j.is_write)),
            ("shadow_byte", Json::str(format!("{:#04x}", j.shadow_byte))),
            (
                "rows",
                Json::Arr(
                    j.rows
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("base", Json::str(addr_str(r.base))),
                                (
                                    "shadow",
                                    Json::Arr(
                                        r.shadow
                                            .iter()
                                            .map(|s| match s {
                                                Some(b) => Json::str(format!("{b:02x}")),
                                                None => Json::Null,
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        ToolContext::Jcfi(j) => Json::obj([
            ("type", Json::str("jcfi")),
            ("cti", Json::str(j.cti)),
            ("actual", Json::str(addr_str(j.actual))),
            (
                "expected",
                j.expected.map(|e| Json::str(addr_str(e))).unwrap_or(Json::Null),
            ),
            ("allowed_count", Json::U64(j.allowed_count)),
            (
                "allowed_sample",
                Json::Arr(j.allowed_sample.iter().map(|&a| Json::str(addr_str(a))).collect()),
            ),
            (
                "shadow_stack",
                Json::Arr(j.shadow_stack.iter().map(|&a| Json::str(addr_str(a))).collect()),
            ),
        ]),
    }
}

impl ViolationReport {
    /// Renders the ASan-style human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "==janitizer== ERROR: {} at pc {} (tool {}, exe {}, report {})",
            self.kind,
            addr_str(self.pc),
            self.tool,
            self.exe,
            self.id
        );
        let _ = writeln!(out, "==janitizer== {}", self.details);
        for (i, f) in self.backtrace.iter().enumerate() {
            let _ = writeln!(out, "    #{i} {f}");
        }
        if !self.disasm.is_empty() {
            let _ = writeln!(out, "Faulting instruction window:");
            for l in &self.disasm {
                let marker = if l.fault { "=>" } else { "  " };
                let _ = writeln!(
                    out,
                    "  {marker} {}:  {:<31} {}",
                    addr_str(l.addr),
                    l.bytes,
                    l.text
                );
            }
        }
        let _ = writeln!(out, "Registers:");
        for chunk in Reg::ALL.chunks(4) {
            let line: Vec<String> = chunk
                .iter()
                .map(|&r| format!("{r}={}", addr_str(self.regs[r.index()])))
                .collect();
            let _ = writeln!(out, "  {}", line.join("  "));
        }
        let _ = writeln!(out, "  flags={:#04x}", self.flags);
        match &self.context {
            ToolContext::None => {}
            ToolContext::Jasan(j) => jasan_text(&mut out, j),
            ToolContext::Jcfi(j) => jcfi_text(&mut out, j, &self.backtrace),
        }
        if !self.trail.is_empty() {
            let _ = writeln!(out, "Execution trail (oldest block first):");
            for f in &self.trail {
                let _ = writeln!(out, "  {f}");
            }
        }
        out
    }

    /// Renders the schema-stable JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str(REPORT_SCHEMA)),
            ("id", Json::str(&self.id)),
            ("tool", Json::str(&self.tool)),
            ("exe", Json::str(&self.exe)),
            ("seq", Json::U64(self.seq as u64)),
            ("kind", Json::str(self.kind.as_str())),
            ("pc", Json::str(addr_str(self.pc))),
            ("details", Json::str(&self.details)),
            (
                "backtrace",
                Json::Arr(self.backtrace.iter().map(frame_json).collect()),
            ),
            (
                "disasm",
                Json::Arr(
                    self.disasm
                        .iter()
                        .map(|l| {
                            Json::obj([
                                ("addr", Json::str(addr_str(l.addr))),
                                ("bytes", Json::str(l.bytes.trim_end())),
                                ("text", Json::str(&l.text)),
                                ("fault", Json::Bool(l.fault)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "registers",
                Json::obj(
                    Reg::ALL
                        .iter()
                        .map(|&r| (r.to_string(), Json::str(addr_str(self.regs[r.index()])))),
                ),
            ),
            ("flags", Json::str(format!("{:#04x}", self.flags))),
            (
                "trail",
                Json::Arr(self.trail.iter().map(frame_json).collect()),
            ),
            ("context", context_json(&self.context)),
        ])
    }
}
