//! # Violation forensics (`janitizer-diag`)
//!
//! Turns the bare violation reports the DBT engine collects into
//! analyst-grade diagnostics, ASan-report style. For every violation the
//! pipeline combines three capture points:
//!
//! 1. the **engine context** ([`janitizer_dbt::ViolationContext`]):
//!    register snapshot, flags and the executed-block ring buffer,
//!    recorded by the engine when the probe fired;
//! 2. the **tool context** ([`janitizer_dbt::ToolContext`]): JASan's
//!    shadow-memory window around the faulting access or JCFI's
//!    expected-vs-actual target sets, recorded by the plugin inside the
//!    violating probe (where the facts are in scope);
//! 3. the **load map**: a [`Symbolizer`] over every loaded module's
//!    symbol table (JOF images + DBT load biases) resolves addresses to
//!    `module!symbol+offset`, PLT-stub aware.
//!
//! [`capture_reports`] assembles these into [`ViolationReport`]s — a
//! symbolized backtrace (shadow-stack walk when JCFI recorded one, a
//! conservative guest-stack scan otherwise), a disassembled window
//! around the faulting pc, the tool section, and the execution trail —
//! and each report renders as both human-readable text
//! ([`ViolationReport::render_text`]) and schema-stable JSON
//! ([`ViolationReport::to_json`], schema [`REPORT_SCHEMA`]). Report IDs
//! are deterministic (`tool-exe-seq-pc`) and are cross-linked from
//! telemetry via a `diag.report` event emitted per assembled report.
//!
//! Everything here is *observation*: no capture path charges guest
//! cycles, so enabling forensics cannot change any deterministic result.

mod report;
mod symbolize;

pub use report::{DisasmLine, ViolationReport, REPORT_SCHEMA};
pub use symbolize::{Frame, Symbolizer};

use janitizer_dbt::{Stats, ToolContext, ViolationContext};
use janitizer_isa::Reg;
use janitizer_vm::{Process, STACK_BASE, STACK_SIZE};

/// Upper bound on backtrace depth.
const MAX_FRAMES: usize = 8;
/// Guest-stack words scanned for plausible return addresses.
const SCAN_WORDS: u64 = 256;
/// Instructions decoded into the faulting-pc window.
const WINDOW_INSNS: usize = 12;
/// Decode-walk bound between the block start and the faulting pc
/// (instrumented blocks can be long; runaway guard, not a window size).
const MAX_WALK: usize = 65_536;

/// Builds the symbolized backtrace for one violation. Frame 0 is the
/// faulting pc; the rest come from JCFI's shadow stack when the tool
/// recorded one, else from a conservative scan of the guest stack that
/// keeps only words landing in a code section of a loaded module.
fn build_backtrace(
    sym: &Symbolizer,
    proc: &mut Process,
    ctx: &ViolationContext,
    tool_ctx: &ToolContext,
) -> Vec<Frame> {
    let mut frames = vec![sym.resolve(ctx.pc)];
    if let ToolContext::Jcfi(j) = tool_ctx {
        if !j.shadow_stack.is_empty() {
            frames.extend(j.shadow_stack.iter().map(|&a| sym.resolve(a)));
            frames.truncate(MAX_FRAMES);
            return frames;
        }
    }
    let mut a = ctx.regs[Reg::SP.index()] & !7;
    let top = STACK_BASE + STACK_SIZE;
    let mut scanned = 0;
    while a < top && scanned < SCAN_WORDS && frames.len() < MAX_FRAMES {
        if let Ok(w) = proc.mem.read_int(a, 8) {
            if w != ctx.pc && sym.is_code(w) {
                frames.push(sym.resolve(w));
            }
        }
        a += 8;
        scanned += 1;
    }
    frames
}

/// Disassembles a window of instructions around the faulting pc,
/// starting from the beginning of the block that contained it (the last
/// trail entry) so the window shows the lead-up, not just the fault.
fn build_disasm_window(proc: &mut Process, ctx: &ViolationContext) -> Vec<DisasmLine> {
    fn line(proc: &mut Process, pc: u64, fault: bool) -> Option<(DisasmLine, u64)> {
        let (insn, next) = proc.fetch_decode(pc).ok()?;
        let mut bytes = Vec::new();
        insn.encode(&mut bytes);
        let hex: String = bytes.iter().map(|b| format!("{b:02x} ")).collect();
        Some((
            DisasmLine {
                addr: pc,
                bytes: hex,
                text: insn.to_string(),
                fault,
            },
            next,
        ))
    }
    let start = ctx
        .trail
        .last()
        .copied()
        .filter(|&b| b <= ctx.pc)
        .unwrap_or(ctx.pc);
    // Walk from the block start to the fault, keeping a rolling window of
    // lead-up instructions (instrumented blocks can be far longer than
    // the window).
    let mut window: std::collections::VecDeque<DisasmLine> = Default::default();
    let mut pc = start;
    let mut found = false;
    for _ in 0..MAX_WALK {
        let Some((l, next)) = line(proc, pc, pc == ctx.pc) else {
            break;
        };
        found = l.fault;
        window.push_back(l);
        pc = next;
        if found {
            break;
        }
        if window.len() > WINDOW_INSNS - 3 {
            window.pop_front();
        }
    }
    if !found {
        // The straight-line walk never met the pc (mid-block entry or a
        // foreign trail entry): restart at the faulting pc itself.
        window.clear();
        pc = ctx.pc;
        if let Some((l, next)) = line(proc, pc, true) {
            window.push_back(l);
            pc = next;
            found = true;
        }
    }
    if found {
        // A couple of instructions of fall-through context.
        for _ in 0..2 {
            let Some((l, next)) = line(proc, pc, false) else {
                break;
            };
            window.push_back(l);
            pc = next;
        }
    }
    window.into()
}

/// Assembles one [`ViolationReport`] per collected engine report,
/// pairing report *i* with engine context *i* and tool context *i*
/// (missing tool entries render as [`ToolContext::None`]). Emits a
/// `diag.report` telemetry event per report so traces cross-link to the
/// report ID.
pub fn capture_reports(
    proc: &mut Process,
    exe: &str,
    tool: &str,
    stats: &Stats,
    tool_ctxs: Vec<ToolContext>,
) -> Vec<ViolationReport> {
    let sym = Symbolizer::from_process(proc);
    let mut out = Vec::with_capacity(stats.reports.len());
    for (i, r) in stats.reports.iter().enumerate() {
        // The engine records contexts in lockstep with reports; tolerate
        // a missing one (foreign Stats values) with an empty snapshot.
        let fallback = ViolationContext {
            pc: r.pc,
            regs: [0; 16],
            flags: 0,
            trail: Vec::new(),
        };
        let ctx = stats.contexts.get(i).unwrap_or(&fallback);
        let tool_ctx = tool_ctxs.get(i).cloned().unwrap_or_default();
        let id = format!("{tool}-{exe}-{i:04}-{:x}", r.pc);
        janitizer_telemetry::event!("diag.report", id = id.as_str(), kind = r.kind.as_str(), pc = r.pc);
        out.push(ViolationReport {
            id,
            tool: tool.to_string(),
            exe: exe.to_string(),
            seq: i,
            kind: r.kind,
            pc: r.pc,
            details: r.details.clone(),
            backtrace: build_backtrace(&sym, proc, ctx, &tool_ctx),
            disasm: build_disasm_window(proc, ctx),
            regs: ctx.regs,
            flags: ctx.flags,
            trail: ctx.trail.iter().map(|&b| sym.resolve(b)).collect(),
            context: tool_ctx,
        });
    }
    out
}
