//! Address symbolization over the DBT module load map.
//!
//! A [`Symbolizer`] snapshots the load map of a [`Process`] — every
//! loaded module's image plus its load bias — and resolves run-time
//! addresses back to `module!symbol+offset`. Resolution handles PIC
//! modules (non-zero bias), non-PIC executables (bias 0), PLT stubs
//! (rendered as `symbol@plt`, the import they trampoline to) and
//! addresses between symbols (nearest-preceding function + offset, the
//! assembler's size-0 symbols make this the common case).

use janitizer_obj::Image;
use janitizer_vm::Process;
use std::fmt;
use std::sync::Arc;

/// One symbolized address.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Frame {
    /// The run-time address.
    pub addr: u64,
    /// Containing module name, when the address falls inside one.
    pub module: Option<String>,
    /// Resolved symbol name (`name` or `name@plt`), when one was found.
    pub symbol: Option<String>,
    /// Offset from the symbol start (or from the module base when only
    /// the module resolved).
    pub offset: u64,
}

impl Frame {
    /// Whether the address resolved all the way to `module!symbol`.
    pub fn is_resolved(&self) -> bool {
        self.module.is_some() && self.symbol.is_some()
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.module, &self.symbol) {
            (Some(m), Some(s)) => {
                write!(f, "{:#010x} in {m}!{s}+{:#x}", self.addr, self.offset)
            }
            (Some(m), None) => write!(f, "{:#010x} in {m}+{:#x}", self.addr, self.offset),
            _ => write!(f, "{:#010x} <unknown>", self.addr),
        }
    }
}

/// A loaded module as the symbolizer sees it.
struct MappedModule {
    name: String,
    base: u64,
    lo: u64,
    hi: u64,
    image: Arc<Image>,
}

/// Address → `module!symbol+offset` resolver over a process's load map.
pub struct Symbolizer {
    modules: Vec<MappedModule>,
}

impl Symbolizer {
    /// Snapshots the load map of `proc` (including `dlopen`ed modules).
    pub fn from_process(proc: &Process) -> Symbolizer {
        let modules = proc
            .modules
            .iter()
            .map(|m| {
                let (lo, hi) = m.range();
                MappedModule {
                    name: m.image.name.clone(),
                    base: m.base,
                    lo,
                    hi,
                    image: m.image.clone(),
                }
            })
            .collect();
        Symbolizer { modules }
    }

    fn module_at(&self, addr: u64) -> Option<&MappedModule> {
        self.modules.iter().find(|m| addr >= m.lo && addr < m.hi)
    }

    /// Whether `addr` lies inside a code section of a loaded module —
    /// the plausibility filter for return addresses found on the stack.
    pub fn is_code(&self, addr: u64) -> bool {
        self.module_at(addr)
            .and_then(|m| m.image.section_containing(addr - m.base))
            .is_some_and(|s| s.kind.is_code())
    }

    /// Resolves one run-time address to a [`Frame`].
    pub fn resolve(&self, addr: u64) -> Frame {
        let Some(m) = self.module_at(addr) else {
            return Frame {
                addr,
                module: None,
                symbol: None,
                offset: 0,
            };
        };
        let image_addr = addr - m.base;
        // PLT stubs first: a pc inside a stub is "in" the import it
        // trampolines to, not in whatever local symbol precedes `.plt`.
        if let Some(p) = m.image.plt_entry_containing(image_addr) {
            return Frame {
                addr,
                module: Some(m.name.clone()),
                symbol: Some(format!("{}@plt", p.symbol)),
                offset: image_addr - p.plt_offset,
            };
        }
        if let Some(f) = m.image.function_containing(image_addr) {
            return Frame {
                addr,
                module: Some(m.name.clone()),
                symbol: Some(f.name.clone()),
                offset: image_addr - f.value,
            };
        }
        if let Some((s, off)) = m.image.nearest_symbol(image_addr) {
            return Frame {
                addr,
                module: Some(m.name.clone()),
                symbol: Some(s.name.clone()),
                offset: off,
            };
        }
        Frame {
            addr,
            module: Some(m.name.clone()),
            symbol: None,
            offset: image_addr,
        }
    }
}

impl fmt::Debug for Symbolizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Symbolizer")
            .field("modules", &self.modules.len())
            .finish()
    }
}
