//! Golden symbolization tests: every resolution path of the
//! [`Symbolizer`] pinned against a real linked-and-loaded process —
//! non-PIC executable, PIC shared object (non-zero load bias), a
//! PLT/GOT-resolved cross-module call, and an address between symbols
//! (nearest-preceding fallback).

use janitizer_asm::{assemble, AsmOptions};
use janitizer_diag::Symbolizer;
use janitizer_link::{link, LinkOptions};
use janitizer_vm::{load_process, LoadOptions, ModuleStore, MINIMAL_LD_SO, PIC_MODULE_BASE};

/// exe `t` (non-PIC, two functions, PLT call into `libfive.so`) +
/// `libfive.so` (PIC) + `ld.so`, loaded into a fresh process.
fn world() -> janitizer_vm::Process {
    let lib = {
        let o = assemble(
            "lib.s",
            ".section text\n.global add_five\nadd_five:\n add r0, 5\n ret\n\
             .global add_six\nadd_six:\n add r0, 6\n ret\n",
            &AsmOptions { pic: true },
        )
        .unwrap();
        link(&[o], &LinkOptions::shared_object("libfive.so")).unwrap()
    };
    let exe = {
        let o = assemble(
            "e.s",
            ".section text\n.global _start\n_start:\n mov r0, 10\n call add_five\n ret\n\
             .global helper\nhelper:\n add r0, 1\n add r0, 2\n ret\n",
            &AsmOptions::default(),
        )
        .unwrap();
        link(&[o], &LinkOptions::executable("t").needs("libfive.so")).unwrap()
    };
    let ld = {
        let o = assemble("ld.s", MINIMAL_LD_SO, &AsmOptions { pic: true }).unwrap();
        link(&[o], &LinkOptions::shared_object("ld.so")).unwrap()
    };
    let mut store = ModuleStore::new();
    store.add(exe);
    store.add(lib);
    store.add(ld);
    load_process(&store, "t", &LoadOptions::default()).unwrap()
}

/// Image-space value of symbol `name` in module `module`, plus the
/// module's load bias.
fn sym_addr(p: &janitizer_vm::Process, module: &str, name: &str) -> u64 {
    let m = p
        .modules
        .iter()
        .find(|m| m.image.name == module)
        .unwrap_or_else(|| panic!("module {module} not loaded"));
    let s = m
        .image
        .functions()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("symbol {name} not in {module}"));
    m.base + s.value
}

#[test]
fn non_pic_symbol_resolves_at_bias_zero() {
    let p = world();
    let exe = p.modules.iter().find(|m| m.image.name == "t").unwrap();
    assert_eq!(exe.base, 0, "non-PIC executable loads unbiased");
    let addr = sym_addr(&p, "t", "helper");
    let f = Symbolizer::from_process(&p).resolve(addr);
    assert_eq!(f.module.as_deref(), Some("t"));
    assert_eq!(f.symbol.as_deref(), Some("helper"));
    assert_eq!(f.offset, 0);
    assert!(f.is_resolved());
    assert_eq!(f.to_string(), format!("{addr:#010x} in t!helper+0x0"));
}

#[test]
fn pic_module_resolves_through_load_bias() {
    let p = world();
    let lib = p
        .modules
        .iter()
        .find(|m| m.image.name == "libfive.so")
        .unwrap();
    assert!(lib.base >= PIC_MODULE_BASE, "PIC module is biased");
    let addr = sym_addr(&p, "libfive.so", "add_five");
    let f = Symbolizer::from_process(&p).resolve(addr);
    assert_eq!(f.module.as_deref(), Some("libfive.so"));
    assert_eq!(f.symbol.as_deref(), Some("add_five"));
    assert_eq!(f.offset, 0, "bias subtracted before symbol lookup");
}

#[test]
fn plt_stub_resolves_as_import_at_plt() {
    let p = world();
    let exe = p.modules.iter().find(|m| m.image.name == "t").unwrap();
    let plt = exe
        .image
        .plt
        .iter()
        .find(|e| e.symbol == "add_five")
        .expect("cross-module call produced a PLT entry");
    let sym = Symbolizer::from_process(&p);
    // The stub's first byte and an address inside the stub both resolve
    // to the import, not to whatever local symbol precedes .plt.
    for delta in [0u64, 1] {
        let f = sym.resolve(exe.base + plt.plt_offset + delta);
        assert_eq!(f.module.as_deref(), Some("t"));
        assert_eq!(f.symbol.as_deref(), Some("add_five@plt"), "+{delta}");
        assert_eq!(f.offset, delta);
    }
}

#[test]
fn address_between_symbols_uses_nearest_preceding() {
    let p = world();
    // `helper` is 3 instructions; an address past its first instruction
    // is between symbols (assembler symbols carry size 0), so resolution
    // falls back to nearest-preceding + offset.
    let base = sym_addr(&p, "t", "helper");
    let f = Symbolizer::from_process(&p).resolve(base + 4);
    assert_eq!(f.module.as_deref(), Some("t"));
    assert_eq!(f.symbol.as_deref(), Some("helper"));
    assert_eq!(f.offset, 4);
    assert_eq!(f.to_string(), format!("{:#010x} in t!helper+0x4", base + 4));
}

#[test]
fn unmapped_address_is_unknown() {
    let p = world();
    let f = Symbolizer::from_process(&p).resolve(0xdead_0000_0000);
    assert!(f.module.is_none() && f.symbol.is_none());
    assert_eq!(f.to_string(), "0xdead00000000 <unknown>");
}
