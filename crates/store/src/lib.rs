//! # Crash-safe persistent rule store
//!
//! The analyze-once/distribute-many deployment story made durable: rules
//! are computed once per module build and served to every later run from
//! an on-disk, content-addressed store keyed by the JRUL v2 module
//! fingerprint. The store's contract is the robustness invariant of the
//! whole service layer:
//!
//! * **never wrong bytes** — every entry is wrapped in a checksummed
//!   envelope ([`StoreEntry`]) verified on every load; a corrupt entry is
//!   quarantined and reported as a miss (the caller transparently
//!   re-analyzes), never served;
//! * **never a torn commit** — every write goes through the atomic
//!   temp+rename writer ([`atomic::write_atomic`]) under a single-record
//!   write journal; an interrupted commit is detected at the next
//!   [`RuleStore::open`] and rolled back;
//! * **never a crash** — all failures surface as typed [`StoreError`]s;
//!   transient I/O errors are absorbed by a bounded, deterministic
//!   retry-with-backoff schedule ([`RetryPolicy`]).
//!
//! On-disk layout:
//!
//! ```text
//! <root>/
//!   journal                 # JJRN intent record, present only mid-commit
//!   entries/<addr16>.jse    # JSTE envelopes, content-addressed by key hash
//!   quarantine/<name>.<n>   # corrupt entries, kept for forensics
//! ```
//!
//! Every failure path is observable: `store.{hits,misses,corrupt,
//! recovered}` and `serve.retries` telemetry counters plus
//! `diag.store_*` events.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub use janitizer_obj::FormatError;

pub mod atomic;
mod format;

pub use format::{
    JournalRecord, StoreEntry, StoreKey, ENTRY_MAGIC, ENTRY_VERSION, JOURNAL_MAGIC,
    JOURNAL_VERSION,
};

/// Every way a store operation can fail. Corrupt *content* is not an
/// error at the [`RuleStore::load`] API: it is quarantined and reported
/// as a miss, because the caller can always re-analyze — only I/O the
/// retry schedule could not absorb surfaces here.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StoreError {
    /// An I/O operation failed after exhausting the retry schedule.
    Io {
        /// Which store operation failed.
        op: &'static str,
        /// The underlying error kind.
        kind: io::ErrorKind,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, kind } => write!(f, "store {op} failed: {kind:?}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Bounded, deterministic retry-with-backoff for transient store I/O.
///
/// The schedule is wall-clock-free: "backoff" is a deterministic unit
/// count derived from the seed (exponential base with seeded jitter),
/// recorded to telemetry rather than slept, so tests and replay runs are
/// exact. `attempts` bounds the *extra* tries after the first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub attempts: u32,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { attempts: 3, seed: 0 }
    }
}

/// splitmix64 finalizer — the workspace's standard deterministic mixer.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// Deterministic backoff units before retry number `attempt`
    /// (1-based): exponential base `2^attempt` plus seeded jitter in
    /// `[0, 2^attempt)`.
    pub fn backoff_units(&self, attempt: u32) -> u64 {
        let base = 1u64 << attempt.min(32);
        base + mix64(self.seed ^ u64::from(attempt)) % base
    }
}

/// Injectable failure plan, the store-level analogue of the evaluation's
/// `--inject-faults`: deterministic I/O failures for tests and the CI
/// crash-recovery smoke. [`FailurePlan::default`] injects nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct FailurePlan {
    /// Fail this many physical write attempts (across all operations)
    /// with a transient error before letting writes succeed — exercises
    /// the retry schedule.
    pub transient_write_failures: u64,
    /// After this many successful entry commits, simulate a crash
    /// mid-commit: the journal intent and a torn entry file are left on
    /// disk and every later write fails. The next [`RuleStore::open`] of
    /// the directory must detect and roll the torn commit back.
    pub crash_after_commits: Option<u64>,
}

/// Counters of one store instance. Mirrored into the telemetry registry
/// under `store.*` / `serve.retries`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Entries served after full verification.
    pub hits: u64,
    /// Lookups that found no (valid) entry.
    pub misses: u64,
    /// Entries that failed verification and were quarantined.
    pub corrupt: u64,
    /// Interrupted or torn commits detected and repaired at open time.
    pub recovered: u64,
    /// Transient I/O failures absorbed by the retry schedule.
    pub retries: u64,
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    recovered: AtomicU64,
    retries: AtomicU64,
}

/// The crash-safe, content-addressed rule store. `Sync`: concurrent
/// loads and saves from many threads are safe; a per-store commit lock
/// serializes the journal protocol so at most one entry commit is in
/// flight at a time (which is what makes the single-record journal
/// sufficient).
pub struct RuleStore {
    root: PathBuf,
    retry: RetryPolicy,
    stats: Counters,
    /// Serializes the begin-journal / write-entry / commit sequence.
    commit_lock: Mutex<()>,
    /// Remaining injected transient write failures.
    transient_left: AtomicU64,
    /// Successful commits until the simulated crash (`u64::MAX` = never).
    commits_until_crash: AtomicU64,
    /// Set after the simulated crash: all writes fail, loads miss.
    poisoned: std::sync::atomic::AtomicBool,
}

impl fmt::Debug for RuleStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RuleStore")
            .field("root", &self.root)
            .field("stats", &self.stats())
            .finish()
    }
}

impl RuleStore {
    /// Opens (creating if needed) the store at `root` and runs crash
    /// recovery: a pending journal record means the previous process
    /// died mid-commit, so the named entry is verified and rolled back
    /// if torn; an unreadable (torn) journal triggers a full verify
    /// scan. Either path counts into `store.recovered`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the directory layout cannot be
    /// created or recovery I/O fails persistently.
    pub fn open(root: impl Into<PathBuf>) -> Result<RuleStore, StoreError> {
        RuleStore::open_with(root, RetryPolicy::default(), FailurePlan::default())
    }

    /// [`RuleStore::open`] with an explicit retry policy and failure
    /// plan (tests, CI smokes, the `--store-kill-after` evaluation flag).
    pub fn open_with(
        root: impl Into<PathBuf>,
        retry: RetryPolicy,
        failures: FailurePlan,
    ) -> Result<RuleStore, StoreError> {
        let root = root.into();
        let store = RuleStore {
            root,
            retry,
            stats: Counters::default(),
            commit_lock: Mutex::new(()),
            transient_left: AtomicU64::new(failures.transient_write_failures),
            commits_until_crash: AtomicU64::new(
                failures.crash_after_commits.unwrap_or(u64::MAX),
            ),
            poisoned: std::sync::atomic::AtomicBool::new(false),
        };
        store.io_op("create-layout", || {
            std::fs::create_dir_all(store.entries_dir())?;
            std::fs::create_dir_all(store.quarantine_dir())
        })?;
        store.recover()?;
        Ok(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Directory holding the content-addressed entries.
    pub fn entries_dir(&self) -> PathBuf {
        self.root.join("entries")
    }

    /// Directory holding quarantined (corrupt) entries.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    /// Path of the write journal.
    pub fn journal_path(&self) -> PathBuf {
        self.root.join("journal")
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            corrupt: self.stats.corrupt.load(Ordering::Relaxed),
            recovered: self.stats.recovered.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
        }
    }

    /// Number of committed entries currently on disk.
    pub fn entry_count(&self) -> usize {
        std::fs::read_dir(self.entries_dir())
            .map(|it| it.filter_map(Result::ok).count())
            .unwrap_or(0)
    }

    /// On-disk quarantine usage: `(files, total bytes)`. Quarantined
    /// entries are kept for forensics, so unlike `entries/` this
    /// directory only ever grows between prunes.
    pub fn quarantine_usage(&self) -> (u64, u64) {
        let mut files = 0u64;
        let mut bytes = 0u64;
        if let Ok(it) = std::fs::read_dir(self.quarantine_dir()) {
            for e in it.filter_map(Result::ok) {
                files += 1;
                bytes += e.metadata().map(|m| m.len()).unwrap_or(0);
            }
        }
        (files, bytes)
    }

    /// Caps `quarantine/` growth: removes the oldest quarantined files
    /// until at most `limit` remain, returning how many were deleted.
    /// Age is modification time with the file name as a deterministic
    /// tie-break. Only the quarantine directory is touched — live
    /// entries under `entries/` are never candidates.
    pub fn prune_quarantine(&self, limit: usize) -> u64 {
        let Ok(it) = std::fs::read_dir(self.quarantine_dir()) else {
            return 0;
        };
        let mut files: Vec<(std::time::SystemTime, String, PathBuf)> = it
            .filter_map(Result::ok)
            .map(|e| {
                let age = e
                    .metadata()
                    .and_then(|m| m.modified())
                    .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                (age, e.file_name().to_string_lossy().into_owned(), e.path())
            })
            .collect();
        if files.len() <= limit {
            return 0;
        }
        files.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        let excess = files.len() - limit;
        let mut removed = 0u64;
        for (_, name, path) in files.into_iter().take(excess) {
            if std::fs::remove_file(&path).is_ok() {
                removed += 1;
                janitizer_telemetry::event!("diag.store_quarantine_pruned", entry = name.as_str());
            }
        }
        janitizer_telemetry::counter_add("store.quarantine_pruned", removed);
        removed
    }

    /// Runs `f` under the bounded deterministic retry schedule,
    /// counting absorbed failures into `serve.retries`.
    fn io_op<T>(
        &self,
        op: &'static str,
        mut f: impl FnMut() -> io::Result<T>,
    ) -> Result<T, StoreError> {
        let mut attempt = 0u32;
        loop {
            match f() {
                Ok(v) => return Ok(v),
                Err(e) if attempt < self.retry.attempts => {
                    attempt += 1;
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    janitizer_telemetry::counter_add("serve.retries", 1);
                    janitizer_telemetry::counter_add(
                        "serve.backoff_units",
                        self.retry.backoff_units(attempt),
                    );
                    let _ = e;
                }
                Err(e) => {
                    janitizer_telemetry::event!(
                        "diag.store_io_failed",
                        op = op,
                        kind = format!("{:?}", e.kind()),
                    );
                    return Err(StoreError::Io { op, kind: e.kind() });
                }
            }
        }
    }

    /// One physical write attempt, honouring the injected failure plan.
    fn raw_write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if self.poisoned.load(Ordering::Relaxed) {
            return Err(io::Error::other("store crashed"));
        }
        if self
            .transient_left
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
        {
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected transient write failure",
            ));
        }
        atomic::write_atomic(path, bytes)
    }

    /// Looks up the verified rule bytes for `key`.
    ///
    /// `Ok(Some(bytes))` is a fully verified entry (envelope checksum and
    /// key match); `Ok(None)` is a miss — including the case where an
    /// entry existed but failed verification, in which case it has been
    /// quarantined and counted so the caller transparently re-analyzes.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] only for persistent read failures.
    pub fn load(&self, key: &StoreKey) -> Result<Option<Vec<u8>>, StoreError> {
        if self.poisoned.load(Ordering::Relaxed) {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            janitizer_telemetry::counter_add("store.misses", 1);
            return Ok(None);
        }
        let name = key.entry_name();
        let path = self.entries_dir().join(&name);
        let bytes = match self.io_op("read-entry", || match std::fs::read(&path) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        })? {
            Some(b) => b,
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                janitizer_telemetry::counter_add("store.misses", 1);
                return Ok(None);
            }
        };
        match StoreEntry::from_bytes(&bytes) {
            Ok(entry) if entry.key == *key => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                janitizer_telemetry::counter_add("store.hits", 1);
                Ok(Some(entry.rule_bytes))
            }
            verdict => {
                // Corrupt envelope or an entry keyed for something else
                // (a store-level collision or tamper): quarantine it and
                // report a miss so the caller re-analyzes.
                let reason = match verdict {
                    Err(e) => format!("{e:?}"),
                    Ok(_) => "key-mismatch".to_string(),
                };
                self.quarantine(&name, &reason);
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                janitizer_telemetry::counter_add("store.misses", 1);
                Ok(None)
            }
        }
    }

    /// Commits `rule_bytes` under `key` using the journal protocol:
    ///
    /// 1. write the journal intent record (atomic temp+rename);
    /// 2. write the entry envelope (atomic temp+rename);
    /// 3. remove the journal (the commit point).
    ///
    /// A crash anywhere in the sequence leaves a state the next
    /// [`RuleStore::open`] repairs: intent-without-entry or a torn entry
    /// rolls back; intent-with-valid-entry completes.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if writes fail past the retry budget;
    /// the destination entry is left absent or fully valid, never torn.
    pub fn save(&self, key: &StoreKey, rule_bytes: &[u8]) -> Result<(), StoreError> {
        let name = key.entry_name();
        let entry = StoreEntry {
            key: key.clone(),
            rule_bytes: rule_bytes.to_vec(),
        };
        let entry_bytes = entry.to_bytes();
        let journal_bytes = JournalRecord {
            entry_name: name.clone(),
        }
        .to_bytes();

        let _commit = self.commit_lock.lock().unwrap_or_else(|e| e.into_inner());
        if self.poisoned.load(Ordering::Relaxed) {
            return Err(StoreError::Io {
                op: "begin-journal",
                kind: io::ErrorKind::Other,
            });
        }
        // Simulated crash: leave the journal intent plus a torn entry on
        // disk — exactly the state the recovery protocol must repair —
        // and fail every write from here on.
        // `fetch_update` yields `Err(0)` once the budget of successful
        // commits is spent: this attempt is the one that "crashes".
        if self
            .commits_until_crash
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            == Err(0)
        {
            let _ = std::fs::write(self.journal_path(), &journal_bytes);
            let torn = &entry_bytes[..entry_bytes.len() / 2];
            let _ = std::fs::write(self.entries_dir().join(&name), torn);
            self.poisoned.store(true, Ordering::Relaxed);
            janitizer_telemetry::event!("diag.store_crash_injected", entry = name.as_str());
            return Err(StoreError::Io {
                op: "write-entry",
                kind: io::ErrorKind::Other,
            });
        }
        self.io_op("begin-journal", || {
            self.raw_write(&self.journal_path(), &journal_bytes)
        })?;
        self.io_op("write-entry", || {
            self.raw_write(&self.entries_dir().join(&name), &entry_bytes)
        })?;
        self.io_op("commit-journal", || {
            match std::fs::remove_file(self.journal_path()) {
                Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
                _ => Ok(()),
            }
        })?;
        janitizer_telemetry::counter_add("store.writes", 1);
        Ok(())
    }

    /// Moves a corrupt entry into `quarantine/` (unique numeric suffix)
    /// and counts it. Keeping the bytes makes store corruption
    /// diagnosable after the fact instead of silently destroyed.
    fn quarantine(&self, name: &str, reason: &str) {
        self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
        janitizer_telemetry::counter_add("store.corrupt", 1);
        janitizer_telemetry::event!(
            "diag.store_entry_quarantined",
            entry = name,
            reason = reason,
        );
        if janitizer_telemetry::flight::armed() {
            let id = janitizer_telemetry::flight::intern_module(name);
            janitizer_telemetry::flight::trip("store-quarantine", id, 0, 0);
        }
        let src = self.entries_dir().join(name);
        for n in 0u32.. {
            let dst = self.quarantine_dir().join(format!("{name}.{n}"));
            if dst.exists() {
                continue;
            }
            if std::fs::rename(&src, &dst).is_ok() {
                return;
            }
            break;
        }
        // Rename failed (e.g. quarantine dir unlinked): last resort is
        // removal, so the corrupt bytes can never be served.
        let _ = std::fs::remove_file(&src);
    }

    /// Verifies one on-disk entry file: readable, envelope checksum
    /// valid, and stored under its own content address.
    fn entry_valid(&self, name: &str) -> bool {
        let Ok(bytes) = std::fs::read(self.entries_dir().join(name)) else {
            return false;
        };
        match StoreEntry::from_bytes(&bytes) {
            Ok(e) => e.key.entry_name() == name,
            Err(_) => false,
        }
    }

    /// Crash recovery at open time (see [`RuleStore::open`]).
    fn recover(&self) -> Result<(), StoreError> {
        let journal = match std::fs::read(self.journal_path()) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()), // clean
            Err(e) => {
                return Err(StoreError::Io {
                    op: "read-journal",
                    kind: e.kind(),
                })
            }
        };
        match JournalRecord::from_bytes(&journal) {
            Ok(rec) => {
                // Interrupted commit: the named entry is suspect. A valid
                // entry means the crash hit between entry write and
                // journal removal — the commit is complete, keep it.
                // Anything else rolls back.
                if !self.entry_valid(&rec.entry_name) {
                    let path = self.entries_dir().join(&rec.entry_name);
                    if path.exists() {
                        self.quarantine(&rec.entry_name, "torn-commit");
                    }
                    janitizer_telemetry::event!(
                        "diag.store_rollback",
                        entry = rec.entry_name.as_str(),
                    );
                }
                self.stats.recovered.fetch_add(1, Ordering::Relaxed);
                janitizer_telemetry::counter_add("store.recovered", 1);
                janitizer_telemetry::flight::record(
                    "store.recovered",
                    janitizer_telemetry::flight::NO_MODULE,
                    0,
                    0,
                );
            }
            Err(_) => {
                // Torn journal: the in-flight entry name is unknown, so
                // verify everything and quarantine what fails.
                let names: Vec<String> = std::fs::read_dir(self.entries_dir())
                    .map(|it| {
                        it.filter_map(Result::ok)
                            .map(|e| e.file_name().to_string_lossy().into_owned())
                            .collect()
                    })
                    .unwrap_or_default();
                for name in names {
                    if !self.entry_valid(&name) {
                        self.quarantine(&name, "torn-journal-scan");
                    }
                }
                janitizer_telemetry::event!("diag.store_journal_torn");
                self.stats.recovered.fetch_add(1, Ordering::Relaxed);
                janitizer_telemetry::counter_add("store.recovered", 1);
                janitizer_telemetry::flight::record(
                    "store.recovered",
                    janitizer_telemetry::flight::NO_MODULE,
                    1,
                    0,
                );
            }
        }
        self.io_op("clear-journal", || {
            match std::fs::remove_file(self.journal_path()) {
                Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
                _ => Ok(()),
            }
        })
    }

    /// Verifies every committed entry, returning `(valid, quarantined)`
    /// counts — the `janitizer-eval serve --fsck`-style integrity sweep
    /// and the recovery fallback for torn journals.
    pub fn verify_all(&self) -> (usize, usize) {
        let names: Vec<String> = std::fs::read_dir(self.entries_dir())
            .map(|it| {
                it.filter_map(Result::ok)
                    .map(|e| e.file_name().to_string_lossy().into_owned())
                    .collect()
            })
            .unwrap_or_default();
        let mut valid = 0;
        let mut bad = 0;
        for name in names {
            if self.entry_valid(&name) {
                valid += 1;
            } else {
                self.quarantine(&name, "verify-sweep");
                bad += 1;
            }
        }
        (valid, bad)
    }
}

/// A unique scratch directory under the system temp dir, for tests and
/// the fault-injection harness. The caller owns cleanup.
pub fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "janitizer-store-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[cfg(test)]
pub(crate) use scratch_dir as test_dir;

/// Renders store statistics as a stable one-line summary (stderr
/// reporting in the evaluation harness).
pub fn stats_line(stats: &StoreStats) -> String {
    format!(
        "store: hits={} misses={} corrupt={} recovered={} retries={}",
        stats.hits, stats.misses, stats.corrupt, stats.recovered, stats.retries
    )
}

/// Deterministically sorted `(entry name, byte length)` listing of the
/// committed entries — used by tests and the serve summary.
pub fn list_entries(store: &RuleStore) -> BTreeMap<String, u64> {
    std::fs::read_dir(store.entries_dir())
        .map(|it| {
            it.filter_map(Result::ok)
                .filter_map(|e| {
                    let len = e.metadata().ok()?.len();
                    Some((e.file_name().to_string_lossy().into_owned(), len))
                })
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u64) -> StoreKey {
        StoreKey {
            module: format!("mod{tag}"),
            fingerprint: 0x1000 + tag,
            plugin: "plug".into(),
            noop: true,
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = test_dir("roundtrip");
        let store = RuleStore::open(&dir).unwrap();
        let k = key(1);
        assert_eq!(store.load(&k).unwrap(), None);
        store.save(&k, b"rule-bytes").unwrap();
        assert_eq!(store.load(&k).unwrap().unwrap(), b"rule-bytes");
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.corrupt, s.recovered), (1, 1, 0, 0));
        // Reopen: still served, no recovery needed.
        let store2 = RuleStore::open(&dir).unwrap();
        assert_eq!(store2.load(&k).unwrap().unwrap(), b"rule-bytes");
        assert_eq!(store2.stats().recovered, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_quarantined_and_misses() {
        let dir = test_dir("corrupt");
        let store = RuleStore::open(&dir).unwrap();
        let k = key(2);
        store.save(&k, b"payload").unwrap();
        let path = store.entries_dir().join(k.entry_name());
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() - 2;
        bytes[at] ^= 0x80;
        std::fs::write(&path, &bytes).unwrap();

        assert_eq!(store.load(&k).unwrap(), None, "corrupt entry is a miss");
        assert_eq!(store.stats().corrupt, 1);
        assert!(!path.exists(), "corrupt entry removed from entries/");
        assert_eq!(
            std::fs::read_dir(store.quarantine_dir()).unwrap().count(),
            1,
            "…and kept in quarantine/"
        );
        // Re-save over the quarantined address works.
        store.save(&k, b"payload").unwrap();
        assert_eq!(store.load(&k).unwrap().unwrap(), b"payload");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_prune_caps_growth_without_touching_live_entries() {
        let dir = test_dir("prune");
        let store = RuleStore::open(&dir).unwrap();
        // Three live entries and four quarantined corpses (corrupted one
        // at a time, oldest first by mtime order of quarantining).
        for t in 0..3 {
            store.save(&key(10 + t), b"live").unwrap();
        }
        for t in 0..4u64 {
            let k = key(20 + t);
            store.save(&k, b"doomed").unwrap();
            let path = store.entries_dir().join(k.entry_name());
            let mut bytes = std::fs::read(&path).unwrap();
            let at = bytes.len() - 2;
            bytes[at] ^= 0x80;
            std::fs::write(&path, &bytes).unwrap();
            assert_eq!(store.load(&k).unwrap(), None);
        }
        let (files, bytes) = store.quarantine_usage();
        assert_eq!(files, 4);
        assert!(bytes > 0, "quarantined corpses have bytes");

        // Under the limit: nothing to do.
        assert_eq!(store.prune_quarantine(4), 0);
        assert_eq!(store.quarantine_usage().0, 4);

        // Past the limit: the excess (oldest) corpses go, the rest stay.
        assert_eq!(store.prune_quarantine(2), 2);
        let (files, _) = store.quarantine_usage();
        assert_eq!(files, 2);

        // Live entries were never candidates: all still served intact.
        assert_eq!(store.entry_count(), 3);
        for t in 0..3 {
            assert_eq!(
                store.load(&key(10 + t)).unwrap().unwrap(),
                b"live",
                "live entry survived the prune"
            );
        }

        // Prune-to-zero empties the directory but the store stays usable.
        assert_eq!(store.prune_quarantine(0), 2);
        assert_eq!(store.quarantine_usage(), (0, 0));
        store.save(&key(30), b"after").unwrap();
        assert_eq!(store.load(&key(30)).unwrap().unwrap(), b"after");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_commit_rolls_back_on_open() {
        let dir = test_dir("rollback");
        let k = key(3);
        {
            let store = RuleStore::open(&dir).unwrap();
            store.save(&k, b"good").unwrap();
            // Simulate dying mid-commit of a second entry: journal intent
            // present, entry torn.
            let k2 = key(4);
            let entry = StoreEntry {
                key: k2.clone(),
                rule_bytes: b"half".to_vec(),
            }
            .to_bytes();
            std::fs::write(
                store.journal_path(),
                JournalRecord {
                    entry_name: k2.entry_name(),
                }
                .to_bytes(),
            )
            .unwrap();
            std::fs::write(
                store.entries_dir().join(k2.entry_name()),
                &entry[..entry.len() / 2],
            )
            .unwrap();
        }
        let store = RuleStore::open(&dir).unwrap();
        assert_eq!(store.stats().recovered, 1, "rollback counted");
        assert!(!store.journal_path().exists(), "journal cleared");
        assert_eq!(store.load(&key(4)).unwrap(), None, "torn entry gone");
        assert_eq!(store.load(&k).unwrap().unwrap(), b"good", "survivor intact");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn completed_commit_with_stale_journal_is_kept() {
        let dir = test_dir("stale-journal");
        let k = key(5);
        {
            let store = RuleStore::open(&dir).unwrap();
            store.save(&k, b"done").unwrap();
            // Crash between entry write and journal removal: intent
            // present but the entry is complete and valid.
            std::fs::write(
                store.journal_path(),
                JournalRecord {
                    entry_name: k.entry_name(),
                }
                .to_bytes(),
            )
            .unwrap();
        }
        let store = RuleStore::open(&dir).unwrap();
        assert_eq!(store.stats().recovered, 1);
        assert_eq!(store.load(&k).unwrap().unwrap(), b"done", "commit survives");
        assert_eq!(store.stats().corrupt, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_triggers_verify_scan() {
        let dir = test_dir("torn-journal");
        let k = key(6);
        {
            let store = RuleStore::open(&dir).unwrap();
            store.save(&k, b"keep").unwrap();
            // Plant a corrupt entry plus an unreadable journal.
            std::fs::write(store.entries_dir().join("feedfeedfeedfeed.jse"), b"junk").unwrap();
            std::fs::write(store.journal_path(), b"JJRN\x01").unwrap();
        }
        let store = RuleStore::open(&dir).unwrap();
        assert_eq!(store.stats().recovered, 1);
        assert!(store.stats().corrupt >= 1, "scan quarantined the junk");
        assert_eq!(store.load(&k).unwrap().unwrap(), b"keep");
        assert!(!store.journal_path().exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_failures_are_retried() {
        let dir = test_dir("transient");
        let store = RuleStore::open_with(
            &dir,
            RetryPolicy { attempts: 3, seed: 9 },
            FailurePlan {
                transient_write_failures: 2,
                crash_after_commits: None,
            },
        )
        .unwrap();
        let k = key(7);
        store.save(&k, b"eventually").unwrap();
        assert_eq!(store.load(&k).unwrap().unwrap(), b"eventually");
        assert_eq!(store.stats().retries, 2, "both injected failures absorbed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_retries_surface_typed_io_error() {
        let dir = test_dir("exhausted");
        let store = RuleStore::open_with(
            &dir,
            RetryPolicy { attempts: 1, seed: 0 },
            FailurePlan {
                transient_write_failures: 100,
                crash_after_commits: None,
            },
        )
        .unwrap();
        let err = store.save(&key(8), b"never").unwrap_err();
        assert!(matches!(err, StoreError::Io { op: "begin-journal", .. }));
        assert_eq!(store.load(&key(8)).unwrap(), None, "nothing half-written");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_crash_leaves_recoverable_state() {
        let dir = test_dir("crash");
        let k1 = key(9);
        let k2 = key(10);
        {
            let store = RuleStore::open_with(
                &dir,
                RetryPolicy::default(),
                FailurePlan {
                    transient_write_failures: 0,
                    crash_after_commits: Some(1),
                },
            )
            .unwrap();
            store.save(&k1, b"first").unwrap();
            let err = store.save(&k2, b"second").unwrap_err();
            assert!(matches!(err, StoreError::Io { .. }));
            // Post-crash the store acts dead: saves fail, loads miss.
            assert!(store.save(&k1, b"again").is_err());
            assert_eq!(store.load(&k1).unwrap(), None);
            assert!(store.journal_path().exists(), "crash left the intent");
        }
        let store = RuleStore::open(&dir).unwrap();
        assert_eq!(store.stats().recovered, 1, "torn commit detected");
        assert_eq!(store.load(&k2).unwrap(), None, "torn entry rolled back");
        assert_eq!(store.load(&k1).unwrap().unwrap(), b"first");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_seeded() {
        let a = RetryPolicy { attempts: 5, seed: 1 };
        let b = RetryPolicy { attempts: 5, seed: 1 };
        let c = RetryPolicy { attempts: 5, seed: 2 };
        let units_a: Vec<u64> = (1..=5).map(|i| a.backoff_units(i)).collect();
        let units_b: Vec<u64> = (1..=5).map(|i| b.backoff_units(i)).collect();
        let units_c: Vec<u64> = (1..=5).map(|i| c.backoff_units(i)).collect();
        assert_eq!(units_a, units_b);
        assert_ne!(units_a, units_c);
        for (i, u) in units_a.iter().enumerate() {
            let base = 1u64 << (i + 1);
            assert!(*u >= base && *u < 2 * base, "bounded exponential");
        }
    }

    #[test]
    fn verify_all_counts() {
        let dir = test_dir("verify");
        let store = RuleStore::open(&dir).unwrap();
        store.save(&key(11), b"a").unwrap();
        store.save(&key(12), b"b").unwrap();
        std::fs::write(store.entries_dir().join("baadf00dbaadf00d.jse"), b"?").unwrap();
        assert_eq!(store.verify_all(), (2, 1));
        assert_eq!(store.entry_count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
