//! Atomic file replacement: the PR 5 atomic writer, promoted from the
//! evaluation harness into the store crate so every persistent artifact
//! (rule-store entries, the write journal, result files, benchmarks,
//! reports) shares one crash-safe write primitive.

use std::io;
use std::path::Path;

/// Atomically replaces `path` with `bytes`: the content lands in a
/// sibling temp file first and is renamed over the target, so a crash or
/// I/O error mid-write never leaves a torn result file — readers see
/// either the old complete file or the new one.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    write_atomic_with(path.as_ref(), bytes, |p, b| std::fs::write(p, b))
}

/// [`write_atomic`] with an injectable write step, so tests can
/// substitute a writer that fails mid-stream. On any error the temp file
/// is removed and the destination is left untouched.
pub fn write_atomic_with(
    path: &Path,
    bytes: &[u8],
    write_fn: impl FnOnce(&Path, &[u8]) -> io::Result<()>,
) -> io::Result<()> {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    let tmp = path.with_file_name(name);
    match write_fn(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, path)) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failed_write_leaves_destination_untouched() {
        let dir = crate::test_dir("atomic");
        let path = dir.join("out.txt");
        std::fs::write(&path, b"old").unwrap();
        let err = write_atomic_with(&path, b"new", |_, _| {
            Err(io::Error::other("boom"))
        });
        assert!(err.is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"old");
        assert!(!path.with_file_name("out.txt.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn successful_write_replaces() {
        let dir = crate::test_dir("atomic2");
        let path = dir.join("out.txt");
        write_atomic(&path, b"abc").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"abc");
        write_atomic(&path, b"def").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"def");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
