//! On-disk formats of the rule store: the entry envelope (`JSTE`) and
//! the write-journal record (`JJRN`).
//!
//! Both formats follow the workspace convention set by the JRUL v2 rule
//! files: a 4-byte magic, a `u32` version, a `u64` content checksum over
//! a length-prefixed payload, then the payload itself. Any byte
//! corruption past the header surfaces as exactly one typed
//! [`FormatError`] — the property the faultz corpus regression-tests.

use janitizer_obj::{checksum64, FormatError, Reader, Writer};

/// Magic prefix of store entry files.
pub const ENTRY_MAGIC: &[u8; 4] = b"JSTE";
/// Current entry-envelope version.
pub const ENTRY_VERSION: u32 = 1;
/// Magic prefix of the write journal.
pub const JOURNAL_MAGIC: &[u8; 4] = b"JJRN";
/// Current journal-record version.
pub const JOURNAL_VERSION: u32 = 1;

/// The content address of one store entry: the JRUL v2 module
/// fingerprint (text + symbol table of the exact module build) plus the
/// plugin configuration the rules were computed under. Two binaries with
/// identical code share one entry; a rebuilt module or a reconfigured
/// plugin gets a fresh one.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct StoreKey {
    /// Module name (informational; the fingerprint is the identity).
    pub module: String,
    /// Module build fingerprint ([`janitizer_obj::Image::fingerprint`]).
    pub fingerprint: u64,
    /// Plugin cache key (`SecurityPlugin::cache_key`).
    pub plugin: String,
    /// Whether no-op rules were emitted for unmarked blocks.
    pub noop: bool,
}

impl StoreKey {
    /// The entry's file name: a content address derived by hashing every
    /// key field, so distinct (module build, plugin config) pairs never
    /// collide on disk and renames/copies of the store stay valid.
    pub fn entry_name(&self) -> String {
        let mut w = Writer::new();
        w.put_str(&self.module);
        w.put_u64(self.fingerprint);
        w.put_str(&self.plugin);
        w.put_u8(self.noop as u8);
        format!("{:016x}.jse", checksum64(&w.into_bytes()))
    }
}

/// One serialized store entry: the key it was written under plus the
/// JRUL v2 rule-file bytes, wrapped in a checksummed envelope.
///
/// The envelope checksum is deliberately *in addition to* the rule
/// file's own internal checksum: it also covers the key fields, so a
/// store-level corruption (entry swapped, key fields flipped) is caught
/// before the rule bytes are even looked at, and an entry served for the
/// wrong key can never masquerade as valid rules.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StoreEntry {
    /// The content address the entry was stored under.
    pub key: StoreKey,
    /// Serialized [`janitizer_rules::RuleFile`] bytes, exactly as the
    /// in-process analysis produced them (the byte-parity invariant).
    pub rule_bytes: Vec<u8>,
}

impl StoreEntry {
    /// Serializes the entry envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut p = Writer::new();
        p.put_str(&self.key.module);
        p.put_u64(self.key.fingerprint);
        p.put_str(&self.key.plugin);
        p.put_u8(self.key.noop as u8);
        p.put_bytes(&self.rule_bytes);
        let payload = p.into_bytes();
        let mut w = Writer::with_header(ENTRY_MAGIC, ENTRY_VERSION);
        w.put_u64(checksum64(&payload));
        w.put_bytes(&payload);
        w.into_bytes()
    }

    /// Deserializes and verifies an entry envelope.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] on bad magic, a stale version, truncation,
    /// or a checksum mismatch
    /// ([`FormatError::Invalid`]`{ what: "store-entry checksum" }`).
    pub fn from_bytes(bytes: &[u8]) -> Result<StoreEntry, FormatError> {
        let (mut r, version) = Reader::with_header(bytes, ENTRY_MAGIC)?;
        if version != ENTRY_VERSION {
            return Err(FormatError::BadVersion(version));
        }
        let sum = r.u64()?;
        let payload = r.bytes()?;
        if checksum64(&payload) != sum {
            return Err(FormatError::Invalid {
                what: "store-entry checksum",
            });
        }
        let mut r = Reader::new(&payload);
        let module = r.str()?;
        let fingerprint = r.u64()?;
        let plugin = r.str()?;
        let noop = r.u8()? != 0;
        let rule_bytes = r.bytes()?;
        Ok(StoreEntry {
            key: StoreKey {
                module,
                fingerprint,
                plugin,
                noop,
            },
            rule_bytes,
        })
    }
}

/// The write journal's single intent record: "entry `<name>` is being
/// committed". Present on disk only between the start of a commit and
/// its completion; finding one at open time means the previous process
/// died mid-commit and the named entry must be treated as suspect.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JournalRecord {
    /// File name (within `entries/`) of the in-flight entry.
    pub entry_name: String,
}

impl JournalRecord {
    /// Serializes the journal record.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut p = Writer::new();
        p.put_str(&self.entry_name);
        let payload = p.into_bytes();
        let mut w = Writer::with_header(JOURNAL_MAGIC, JOURNAL_VERSION);
        w.put_u64(checksum64(&payload));
        w.put_bytes(&payload);
        w.into_bytes()
    }

    /// Deserializes and verifies a journal record.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] on bad magic, a stale version, truncation
    /// (a torn journal), or a checksum mismatch
    /// ([`FormatError::Invalid`]`{ what: "journal checksum" }`).
    pub fn from_bytes(bytes: &[u8]) -> Result<JournalRecord, FormatError> {
        let (mut r, version) = Reader::with_header(bytes, JOURNAL_MAGIC)?;
        if version != JOURNAL_VERSION {
            return Err(FormatError::BadVersion(version));
        }
        let sum = r.u64()?;
        let payload = r.bytes()?;
        if checksum64(&payload) != sum {
            return Err(FormatError::Invalid {
                what: "journal checksum",
            });
        }
        let mut r = Reader::new(&payload);
        Ok(JournalRecord {
            entry_name: r.str()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> StoreKey {
        StoreKey {
            module: "libdemo.so".into(),
            fingerprint: 0xdead_beef,
            plugin: "jasan".into(),
            noop: true,
        }
    }

    #[test]
    fn entry_roundtrip() {
        let e = StoreEntry {
            key: key(),
            rule_bytes: vec![1, 2, 3, 4, 5],
        };
        assert_eq!(StoreEntry::from_bytes(&e.to_bytes()).unwrap(), e);
    }

    #[test]
    fn entry_checksum_catches_payload_flip() {
        let e = StoreEntry {
            key: key(),
            rule_bytes: vec![9; 64],
        };
        let mut b = e.to_bytes();
        let at = b.len() - 5;
        b[at] ^= 0x10;
        assert_eq!(
            StoreEntry::from_bytes(&b).unwrap_err(),
            FormatError::Invalid {
                what: "store-entry checksum"
            }
        );
    }

    #[test]
    fn entry_truncation_is_typed() {
        let e = StoreEntry {
            key: key(),
            rule_bytes: vec![7; 32],
        };
        let b = e.to_bytes();
        assert_eq!(
            StoreEntry::from_bytes(&b[..b.len() / 2]).unwrap_err(),
            FormatError::Truncated
        );
    }

    #[test]
    fn journal_roundtrip_and_tear() {
        let j = JournalRecord {
            entry_name: "0123456789abcdef.jse".into(),
        };
        let b = j.to_bytes();
        assert_eq!(JournalRecord::from_bytes(&b).unwrap(), j);
        // A torn (half-written) journal must fail typed, never panic.
        assert_eq!(
            JournalRecord::from_bytes(&b[..b.len() - 7]).unwrap_err(),
            FormatError::Truncated
        );
        let mut b2 = b.clone();
        let at = b2.len() - 2;
        b2[at] ^= 0x20;
        assert_eq!(
            JournalRecord::from_bytes(&b2).unwrap_err(),
            FormatError::Invalid {
                what: "journal checksum"
            }
        );
    }

    #[test]
    fn distinct_keys_get_distinct_entry_names() {
        let a = key();
        let mut b = key();
        b.fingerprint ^= 1;
        let mut c = key();
        c.plugin = "jcfi".into();
        let mut d = key();
        d.noop = false;
        let names: std::collections::BTreeSet<String> =
            [&a, &b, &c, &d].iter().map(|k| k.entry_name()).collect();
        assert_eq!(names.len(), 4);
        assert_eq!(a.entry_name(), key().entry_name(), "address is stable");
    }
}
