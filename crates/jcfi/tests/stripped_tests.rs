//! §4.2.2: stripped modules fall back to a weaker load-time policy based
//! on exported symbols and scanned constants.

use janitizer_asm::{assemble, AsmOptions};
use janitizer_core::{run_hybrid, HybridOptions, RunOutcome};
use janitizer_jcfi::{CfiModuleInfo, Jcfi};
use janitizer_link::{link, LinkOptions};
use janitizer_vm::{ModuleStore, MINIMAL_LD_SO};

fn lib_src() -> &'static str {
    ".section text\n\
     .global api_entry\n\
     api_entry:\n mov r0, 11\n ret\n\
     internal_helper:\n mov r0, 22\n ret\n\
     .section data\ncb: .quad internal_helper\n"
}

#[test]
fn stripped_info_degrades_gracefully() {
    let o = assemble("lib.s", lib_src(), &AsmOptions { pic: true }).unwrap();
    let full_img = link(std::slice::from_ref(&o), &LinkOptions::shared_object("lib.so")).unwrap();
    let mut sopts = LinkOptions::shared_object("lib.so");
    sopts.strip = true;
    let stripped_img = link(&[o], &sopts).unwrap();
    assert!(stripped_img.stripped);

    let full = CfiModuleInfo::from_image(&full_img, None);
    let stripped = CfiModuleInfo::from_stripped_image(&stripped_img);

    // Full symbols know both functions; stripped knows only the export.
    assert!(full.functions.len() >= 2);
    assert_eq!(
        stripped.functions,
        stripped.exported,
        "stripped functions degrade to exports"
    );
    // The stripped address-taken set falls back to boundary constants, so
    // the callback stays (weakly) admitted.
    let helper = full_img.symbol("internal_helper").unwrap().value;
    assert!(full.address_taken.contains(&helper));
    assert!(stripped.address_taken.contains(&helper));
}

#[test]
fn dlopened_stripped_module_still_runs_under_jcfi() {
    // An exe dlopens a *stripped* plugin and calls both an exported entry
    // and an unexported address-taken callback; the weaker load-time
    // policy admits both.
    let o = assemble("plg.s", lib_src(), &AsmOptions { pic: true }).unwrap();
    let mut sopts = LinkOptions::shared_object("libplg.so");
    sopts.strip = true;
    let plugin = link(&[o], &sopts).unwrap();

    let exe_src = ".section text\n.global _start\n_start:\n\
        mov r0, 5\n la r1, name\n mov r2, 9\n syscall\n\
        mov r8, r0\n\
        mov r0, 6\n mov r1, r8\n la r2, sym\n mov r3, 9\n syscall\n\
        call r0\n ret\n\
        .section rodata\nname: .ascii \"libplg.so\"\nsym: .ascii \"api_entry\"\n";
    let eo = assemble("e.s", exe_src, &AsmOptions::default()).unwrap();
    let exe = link(&[eo], &LinkOptions::executable("e")).unwrap();

    let ld = assemble("ld.s", MINIMAL_LD_SO, &AsmOptions { pic: true }).unwrap();
    let mut store = ModuleStore::new();
    store.add(exe);
    store.add(plugin);
    store.add(link(&[ld], &LinkOptions::shared_object("ld.so")).unwrap());

    let run = run_hybrid(&store, "e", Jcfi::hybrid(), &HybridOptions::default()).unwrap();
    assert_eq!(run.outcome.code(), Some(11), "{:?}", run.outcome);
    assert!(run.engine.reports.is_empty());
}

#[test]
fn hijack_still_caught_in_stripped_module() {
    // Weaker is not disabled: a call into the middle of an instruction
    // is still rejected even for stripped modules.
    let o = assemble("plg.s", lib_src(), &AsmOptions { pic: true }).unwrap();
    let mut sopts = LinkOptions::shared_object("libplg.so");
    sopts.strip = true;
    let plugin = link(&[o], &sopts).unwrap();

    let exe_src = ".section text\n.global _start\n_start:\n\
        mov r0, 5\n la r1, name\n mov r2, 9\n syscall\n\
        mov r8, r0\n\
        mov r0, 6\n mov r1, r8\n la r2, sym\n mov r3, 9\n syscall\n\
        add r0, 3\n call r0\n ret\n\
        .section rodata\nname: .ascii \"libplg.so\"\nsym: .ascii \"api_entry\"\n";
    let eo = assemble("e.s", exe_src, &AsmOptions::default()).unwrap();
    let exe = link(&[eo], &LinkOptions::executable("e")).unwrap();
    let ld = assemble("ld.s", MINIMAL_LD_SO, &AsmOptions { pic: true }).unwrap();
    let mut store = ModuleStore::new();
    store.add(exe);
    store.add(plugin);
    store.add(link(&[ld], &LinkOptions::shared_object("ld.so")).unwrap());

    let run = run_hybrid(&store, "e", Jcfi::hybrid(), &HybridOptions::default()).unwrap();
    assert!(
        matches!(&run.outcome, RunOutcome::Violation(r) if r.kind.as_str() == "cfi-icall-violation"),
        "{:?}",
        run.outcome
    );
}
