//! End-to-end JCFI tests: legal programs run unchanged, hijacks are
//! caught, the lazy-resolver special case works, and AIR behaves.

use janitizer_asm::{assemble, AsmOptions};
use janitizer_core::{run_hybrid, run_native, HybridOptions, RunOutcome};
use janitizer_jcfi::{static_air, CtiKind, Jcfi};
use janitizer_link::{link, LinkOptions};
use janitizer_minic::{compile, CompileOptions};
use janitizer_vm::{LoadOptions, ModuleStore, MINIMAL_LD_SO};

fn exe_store(src_asm: &str) -> ModuleStore {
    let o = assemble("t.s", src_asm, &AsmOptions::default()).unwrap();
    let mut store = ModuleStore::new();
    store.add(link(&[o], &LinkOptions::executable("t")).unwrap());
    store
}

fn c_store(src: &str) -> ModuleStore {
    let asm = compile(
        src,
        &CompileOptions {
            emit_start: true,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    exe_store(&asm)
}

#[test]
fn legal_function_pointer_calls_pass() {
    let src = "long inc(long x) { return x + 1; }\
               long dec(long x) { return x - 1; }\
               long ops[] = {&inc, &dec};\
               long main() {\
                 long s = 0;\
                 for (long i = 0; i < 2; i++) { long f = ops[i]; s += f(10); }\
                 return s;\
               }";
    let store = c_store(src);
    let run = run_hybrid(&store, "t", Jcfi::hybrid(), &HybridOptions::default()).unwrap();
    assert_eq!(run.outcome.code(), Some(20), "{:?}", run.outcome);
    assert!(run.engine.reports.is_empty(), "no CFI false positives");
}

#[test]
fn jump_tables_pass() {
    let src = "long f(long x) { switch (x) {\
                 case 0: return 5; case 1: return 6; case 2: return 7;\
                 case 3: return 8; case 4: return 9; default: return 1; } }\
               long main() { long s = 0; for (long i = 0; i < 7; i++) s += f(i); return s; }";
    let store = c_store(src);
    let run = run_hybrid(&store, "t", Jcfi::hybrid(), &HybridOptions::default()).unwrap();
    assert_eq!(run.outcome.code(), Some(5 + 6 + 7 + 8 + 9 + 1 + 1), "{:?}", run.outcome);
    assert!(run.engine.reports.is_empty());
}

#[test]
fn icall_to_function_body_rejected() {
    // Jump to the *middle* of a function: classic hijack target.
    let src = ".section text\n.global _start\n_start:\n\
               la r8, victim\n add r8, 3\n call r8\n ret\n\
               victim:\n nop\n nop\n mov r0, 9\n ret\n";
    let store = exe_store(src);
    let run = run_hybrid(&store, "t", Jcfi::hybrid(), &HybridOptions::default()).unwrap();
    let RunOutcome::Violation(r) = &run.outcome else {
        panic!("expected CFI violation, got {:?}", run.outcome);
    };
    assert_eq!(r.kind.as_str(), "cfi-icall-violation");
}

#[test]
fn icall_into_data_rejected() {
    let src = ".section text\n.global _start\n_start:\n\
               la r8, blob\n call r8\n ret\n\
               .section data\nblob: .quad 0x6c6c6c6c\n";
    let store = exe_store(src);
    let run = run_hybrid(&store, "t", Jcfi::hybrid(), &HybridOptions::default()).unwrap();
    assert!(
        matches!(&run.outcome, RunOutcome::Violation(r) if r.kind.as_str() == "cfi-icall-violation"),
        "{:?}",
        run.outcome
    );
}

#[test]
fn return_address_smash_rejected() {
    // Overwrite the saved return address on the stack, then ret.
    let src = ".section text\n.global _start\n_start:\n\
               call victim\n mov r0, 1\n ret\n\
               victim:\n la r8, evil\n st8 [sp], r8\n nop\n ret\n\
               evil:\n mov r0, 66\n ret\n";
    // NB: `st8 [sp], r8` right before `ret` would look like the resolver
    // idiom; the `nop` separates them so this is a plain smashed return.
    let store = exe_store(src);
    let run = run_hybrid(&store, "t", Jcfi::hybrid(), &HybridOptions::default()).unwrap();
    let RunOutcome::Violation(r) = &run.outcome else {
        panic!("expected return violation, got {:?}", run.outcome);
    };
    assert_eq!(r.kind.as_str(), "cfi-return-violation");
}

#[test]
fn forward_only_misses_return_smash() {
    let src = ".section text\n.global _start\n_start:\n\
               call victim\n mov r0, 1\n ret\n\
               victim:\n la r8, evil\n st8 [sp], r8\n nop\n ret\n\
               evil:\n mov r0, 66\n ret\n";
    let store = exe_store(src);
    let run = run_hybrid(&store, "t", Jcfi::forward_only(), &HybridOptions::default()).unwrap();
    assert_eq!(
        run.outcome.code(),
        Some(66),
        "without the shadow stack the smash succeeds: {:?}",
        run.outcome
    );
}

#[test]
fn lazy_binding_resolver_ret_is_special_cased() {
    // Cross-module call with lazy binding: the resolver's ret dispatches
    // to the resolved function. JCFI must not flag it.
    let lib = {
        let o = assemble(
            "lib.s",
            ".section text\n.global add_five\nadd_five:\n add r0, 5\n ret\n",
            &AsmOptions { pic: true },
        )
        .unwrap();
        link(&[o], &LinkOptions::shared_object("libfive.so")).unwrap()
    };
    let exe = {
        let o = assemble(
            "e.s",
            ".section text\n.global _start\n_start:\n mov r0, 10\n call add_five\n call add_five\n ret\n",
            &AsmOptions::default(),
        )
        .unwrap();
        link(&[o], &LinkOptions::executable("t").needs("libfive.so")).unwrap()
    };
    let ld = {
        let o = assemble("ld.s", MINIMAL_LD_SO, &AsmOptions { pic: true }).unwrap();
        link(&[o], &LinkOptions::shared_object("ld.so")).unwrap()
    };
    let mut store = ModuleStore::new();
    store.add(exe);
    store.add(lib);
    store.add(ld);
    let run = run_hybrid(&store, "t", Jcfi::hybrid(), &HybridOptions::default()).unwrap();
    assert_eq!(run.outcome.code(), Some(20), "{:?}", run.outcome);
    assert!(run.engine.reports.is_empty(), "resolver ret not flagged");
}

#[test]
fn cross_module_callback_is_allowed_via_address_taken_scan() {
    // A non-exported comparator passed to a library: Lockdown's strong
    // policy false-positives here; JCFI's address-taken scan admits it.
    let lib = {
        let o = assemble(
            "lib.s",
            ".section text\n.global apply\napply:\n ; apply(f, x) = f(x)\n mov r7, r0\n mov r0, r1\n call r7\n ret\n",
            &AsmOptions { pic: true },
        )
        .unwrap();
        link(&[o], &LinkOptions::shared_object("libapply.so")).unwrap()
    };
    // `local_cb` is static (not exported) but its address is taken into a
    // data table — the scan finds it.
    let exe_src = "static long local_cb(long x) { return x * 3; }\
                   long cbtab[] = {&local_cb};\
                   long main() { long f = cbtab[0]; return apply(f, 7); }";
    let exe = {
        let asm = compile(
            exe_src,
            &CompileOptions {
                emit_start: true,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let o = assemble("e.s", &asm, &AsmOptions::default()).unwrap();
        link(&[o], &LinkOptions::executable("t").needs("libapply.so")).unwrap()
    };
    let ld = {
        let o = assemble("ld.s", MINIMAL_LD_SO, &AsmOptions { pic: true }).unwrap();
        link(&[o], &LinkOptions::shared_object("ld.so")).unwrap()
    };
    let mut store = ModuleStore::new();
    store.add(exe);
    store.add(lib);
    store.add(ld);
    let run = run_hybrid(&store, "t", Jcfi::hybrid(), &HybridOptions::default()).unwrap();
    assert_eq!(run.outcome.code(), Some(21), "{:?}", run.outcome);
    assert!(run.engine.reports.is_empty(), "no FP on stack-passed callback");
}

#[test]
fn dynamic_air_high_for_protected_program() {
    let src = "long inc(long x) { return x + 1; }\
               long ops[] = {&inc};\
               long main() { long f = ops[0]; return f(41); }";
    let store = c_store(src);
    let jcfi = Jcfi::hybrid();
    let air_handle = std::rc::Rc::clone(&jcfi.state);
    let run = run_hybrid(&store, "t", jcfi, &HybridOptions::default()).unwrap();
    assert_eq!(run.outcome.code(), Some(42));
    let st = air_handle.borrow();
    assert!(!st.sites.is_empty(), "sites were recorded");
    assert!(st.backward_ops > 0);
    // Return sites are precise: |T| = 1.
    assert!(st
        .sites
        .values()
        .filter(|s| s.kind == CtiKind::Ret)
        .all(|s| s.allowed == 1));
    // Every recorded target set is tiny relative to the code size.
    let s = st.total_code_bytes();
    assert!(st.sites.values().all(|site| site.allowed * 10 < s));
}

#[test]
fn dynamic_air_accessor() {
    let src = "long inc(long x) { return x + 1; }\
               long ops[] = {&inc};\
               long main() { long f = ops[0]; return f(41); }";
    let store = c_store(src);
    let jcfi = Jcfi::hybrid();
    let state = std::rc::Rc::clone(&jcfi.state);
    let run = run_hybrid(&store, "t", jcfi, &HybridOptions::default()).unwrap();
    assert_eq!(run.outcome.code(), Some(42));
    let air = state.borrow().dynamic_air();
    assert!(air > 95.0, "AIR should be high, got {air}");
}

#[test]
fn hybrid_cheaper_than_dynamic_only() {
    let src = "long inc(long x) { return x + 1; }\
               long ops[] = {&inc};\
               long main() {\
                 long s = 0;\
                 for (long i = 0; i < 500; i++) { long f = ops[0]; s += f(i); }\
                 return s % 100;\
               }";
    let store = c_store(src);
    let hybrid = run_hybrid(&store, "t", Jcfi::hybrid(), &HybridOptions::default()).unwrap();
    let dynamic = run_hybrid(
        &store,
        "t",
        Jcfi::hybrid(),
        &HybridOptions {
            dynamic_only: true,
            ..HybridOptions::default()
        },
    )
    .unwrap();
    assert_eq!(hybrid.outcome.code(), dynamic.outcome.code());
    assert!(
        hybrid.cycles < dynamic.cycles,
        "hybrid {} vs dyn {}",
        hybrid.cycles,
        dynamic.cycles
    );
    let (native, nproc) = run_native(&store, "t", &LoadOptions::default(), 0).unwrap();
    assert_eq!(native.code(), hybrid.outcome.code());
    assert!(hybrid.cycles > nproc.cycles);
}

#[test]
fn forward_only_is_cheaper_than_full() {
    let src = "long fib(long n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\
               long main() { return fib(14); }";
    let store = c_store(src);
    let full = run_hybrid(&store, "t", Jcfi::hybrid(), &HybridOptions::default()).unwrap();
    let fwd = run_hybrid(&store, "t", Jcfi::forward_only(), &HybridOptions::default()).unwrap();
    assert_eq!(full.outcome.code(), fwd.outcome.code());
    assert!(
        fwd.cycles < full.cycles,
        "forward-only {} vs full {}",
        fwd.cycles,
        full.cycles
    );
}

#[test]
fn static_air_is_high() {
    let src = "long inc(long x) { return x + 1; }\
               long ops[] = {&inc};\
               long f(long x) { switch (x) { case 0: return 1; case 1: return 2; case 2: return 3; case 3: return 4; case 4: return 5; default: return 0; } }\
               long main() { long g = ops[0]; return g(f(2)); }";
    let store = c_store(src);
    let image = store.get("t").unwrap();
    let air = static_air(&[&image]);
    assert!(air > 97.0, "static AIR {air}");
    assert!(air <= 100.0);
}

#[test]
fn jit_code_is_tolerated_with_shadow_discipline() {
    // JIT region target: the forward check admits it; the generated ret
    // plays by shadow-stack rules (its push came from the call probe).
    let src = ".section text\n.global _start\n_start:\n\
         mov r0, 3\n mov r1, 4096\n mov r2, 1\n syscall\n\
         mov r8, r0\n\
         mov r9, 0x12\n st1 [r8], r9\n\
         mov r9, 0\n st1 [r8+1], r9\n\
         mov r9, 77\n st4 [r8+2], r9\n\
         mov r9, 0x6c\n st1 [r8+6], r9\n\
         call r8\n ret\n";
    let store = exe_store(src);
    let run = run_hybrid(&store, "t", Jcfi::hybrid(), &HybridOptions::default()).unwrap();
    assert_eq!(run.outcome.code(), Some(77), "{:?}", run.outcome);
    assert!(run.engine.reports.is_empty());
}
