//! Per-module CFI metadata: the "set of valid targets" hints the static
//! analyzer precomputes (paper §4.2.1) and the module-load-time fallback
//! recomputes for modules without hints (§4.2.2).

use janitizer_analysis::{analyze_module, scan_code_pointers, ModuleCfg};
use janitizer_obj::{Image, SectionKind};
use std::collections::BTreeSet;

/// CFI-relevant facts about one module, in image (link-time) addresses;
/// [`CfiModuleInfo::rebase`] converts to run-time addresses.
#[derive(Clone, Debug, Default)]
pub struct CfiModuleInfo {
    /// Entry addresses of known functions.
    pub functions: BTreeSet<u64>,
    /// `[entry, end)` ranges of known functions.
    pub func_ranges: Vec<(u64, u64)>,
    /// Exported (dynamic) symbol addresses.
    pub exported: BTreeSet<u64>,
    /// Address-taken function entries discovered by scanning the raw
    /// binary (callbacks that are never exported, §4.2.3).
    pub address_taken: BTreeSet<u64>,
    /// All recovered instruction boundaries.
    pub boundaries: BTreeSet<u64>,
    /// PLT stub addresses (valid intra-module indirect-call targets that
    /// are not functions).
    pub plt_stubs: BTreeSet<u64>,
    /// `.plt` section range, whose indirect jumps follow the cross-module
    /// call policy.
    pub plt_range: Option<(u64, u64)>,
    /// Addresses of `ret` instructions that implement the ld.so
    /// push-resolved-pointer-and-return idiom; these get a forward check
    /// instead of a shadow-stack check (§4.2.3).
    pub resolver_rets: BTreeSet<u64>,
    /// Addresses one past each call instruction (BinCFI's allowed return
    /// targets under its weaker policy).
    pub call_preceded: BTreeSet<u64>,
    /// Raw-scan constants anywhere in code sections (the weakest set,
    /// used for stripped modules).
    pub scanned_code_ptrs: BTreeSet<u64>,
    /// Raw-scan constants at instruction boundaries (BinCFI's allowed
    /// forward targets).
    pub scanned_boundary_ptrs: BTreeSet<u64>,
    /// Allow-list: address-taken targets that are *not* at detected
    /// function boundaries — the libgfortran-style abnormality of §4.2.3
    /// ("we add target addresses to an allow list, similar to Lockdown").
    pub allowlist: BTreeSet<u64>,
    /// Total executable bytes (the `S` of the AIR metric).
    pub code_bytes: u64,
}

impl CfiModuleInfo {
    /// Builds the metadata from an image using full static analysis (the
    /// static analyzer's hint generation). When `cfg` was already
    /// computed, pass it to avoid re-analysis.
    pub fn from_image(image: &Image, cfg: Option<&ModuleCfg>) -> CfiModuleInfo {
        let owned;
        let cfg = match cfg {
            Some(c) => c,
            None => {
                owned = analyze_module(image);
                &owned
            }
        };
        let scan = scan_code_pointers(image, cfg);
        let mut info = CfiModuleInfo {
            functions: cfg.functions.iter().map(|f| f.entry).collect(),
            func_ranges: cfg
                .functions
                .iter()
                .map(|f| (f.entry, f.entry + f.size.max(1)))
                .collect(),
            exported: image
                .exports()
                .filter(|s| s.kind == janitizer_obj::SymKind::Func)
                .map(|s| s.value)
                .collect(),
            address_taken: scan.at_func_entry.clone(),
            boundaries: cfg.insn_boundaries.iter().copied().collect(),
            plt_stubs: {
                let mut stubs: BTreeSet<u64> =
                    image.plt.iter().map(|p| p.plt_offset).collect();
                // The plt0 lazy trampoline is a legal target of every PLT
                // stub's jump.
                if let Some(plt) = image.section(SectionKind::Plt) {
                    stubs.insert(plt.addr);
                }
                stubs
            },
            plt_range: image
                .section(SectionKind::Plt)
                .map(|s| (s.addr, s.end())),
            resolver_rets: BTreeSet::new(),
            call_preceded: BTreeSet::new(),
            allowlist: scan
                .at_insn_boundary
                .difference(&scan.at_func_entry)
                .copied()
                .collect(),
            scanned_code_ptrs: scan.in_code.clone(),
            scanned_boundary_ptrs: scan.at_insn_boundary.clone(),
            code_bytes: image.code_bytes(),
        };
        // ld.so-style resolver rets: a `st8 [sp], rX` immediately before a
        // `ret` rewrites the return target — the lazy-binding idiom.
        for block in cfg.blocks.values() {
            for w in block.insns.windows(2) {
                let (_, a) = w[0];
                let (ret_addr, b) = w[1];
                if matches!(
                    a,
                    janitizer_isa::Instr::St {
                        base: janitizer_isa::Reg::R15,
                        disp: 0,
                        ..
                    }
                ) && matches!(b, janitizer_isa::Instr::Ret)
                {
                    info.resolver_rets.insert(ret_addr);
                }
            }
            // Call-preceded addresses (for BinCFI's return policy).
            for (addr, insn) in &block.insns {
                if insn.is_call() {
                    info.call_preceded.insert(addr + insn.encoded_len() as u64);
                }
            }
        }
        info
    }

    /// The weaker load-time variant for stripped modules (§4.2.2): no full
    /// symbol table, so function knowledge degrades to exports plus
    /// scanned constants.
    pub fn from_stripped_image(image: &Image) -> CfiModuleInfo {
        let mut info = CfiModuleInfo::from_image(image, None);
        // Without full symbols the function set is just the exports; the
        // address-taken refinement cannot check function boundaries, so it
        // falls back to "any scanned constant in a code section" (the
        // paper's exported-symbols-and-code-section-addresses policy).
        info.functions = info.exported.clone();
        info.address_taken = info.scanned_code_ptrs.clone();
        info
    }

    /// Rebases every address by the module's load bias.
    pub fn rebase(&self, bias: u64) -> CfiModuleInfo {
        let shift = |s: &BTreeSet<u64>| s.iter().map(|a| a + bias).collect::<BTreeSet<u64>>();
        CfiModuleInfo {
            functions: shift(&self.functions),
            func_ranges: self
                .func_ranges
                .iter()
                .map(|(a, b)| (a + bias, b + bias))
                .collect(),
            exported: shift(&self.exported),
            address_taken: shift(&self.address_taken),
            boundaries: shift(&self.boundaries),
            plt_stubs: shift(&self.plt_stubs),
            plt_range: self.plt_range.map(|(a, b)| (a + bias, b + bias)),
            resolver_rets: shift(&self.resolver_rets),
            call_preceded: shift(&self.call_preceded),
            scanned_code_ptrs: shift(&self.scanned_code_ptrs),
            allowlist: shift(&self.allowlist),
            scanned_boundary_ptrs: shift(&self.scanned_boundary_ptrs),
            code_bytes: self.code_bytes,
        }
    }

    /// The function range containing `addr`, if known.
    pub fn function_range_of(&self, addr: u64) -> Option<(u64, u64)> {
        self.func_ranges
            .iter()
            .copied()
            .find(|&(lo, hi)| addr >= lo && addr < hi)
    }
}
