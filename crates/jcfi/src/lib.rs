//! # JCFI: hybrid control-flow integrity for binaries (paper §4.2)
//!
//! Policies:
//!
//! * **Forward edges** — indirect calls may target function entries:
//!   within the caller's module, any known function or PLT stub; across
//!   modules, exported functions plus *address-taken* functions found by
//!   scanning the raw binary (so unexported callbacks like `qsort`
//!   comparators stay legal, unlike Lockdown's heuristics — §6.2.2).
//!   Indirect jumps may stay inside their function (at instruction
//!   boundaries when static analysis recovered them) or target function
//!   entries in the same module (tail calls).
//! * **Backward edges** — a precise shadow stack: every call pushes its
//!   return address, every `ret` must match. The ld.so lazy-resolver
//!   `ret` that *dispatches* to the freshly resolved function is detected
//!   statically and given a forward-CFI check instead (§4.2.3).
//!
//! The plugin reports Average Indirect-target Reduction (AIR) both
//! statically ([`static_air`]) and dynamically over executed sites
//! ([`Jcfi::dynamic_air`]), matching the BinCFI and Lockdown
//! methodologies the paper compares against.

mod info;

pub use info::CfiModuleInfo;

use janitizer_core::{Probe, ProbeResult, Report, RuleId, SecurityPlugin, StaticContext};
use janitizer_dbt::{
    DecodedBlock, JcfiContext, ProbeClass, ProbeSite, SiteOrigin, TbItem, ToolContext,
    ViolationKind, DEFAULT_MAX_REPORTS,
};
use janitizer_isa::Instr;
use janitizer_obj::Image;
use janitizer_rules::RewriteRule;
use janitizer_vm::Process;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

/// Rule: push the return address on the shadow stack (at any call).
pub const RULE_SHADOW_PUSH: RuleId = 10;
/// Rule: verify a `ret` against the shadow stack.
pub const RULE_RET_CHECK: RuleId = 11;
/// Rule: ld.so resolver `ret` — forward-CFI check instead (§4.2.3).
pub const RULE_RET_RESOLVER: RuleId = 12;
/// Rule: verify an indirect call's target.
pub const RULE_ICALL_CHECK: RuleId = 13;
/// Rule: verify an indirect jump's target; `data[0]`/`data[1]` give the
/// enclosing function's range.
pub const RULE_IJMP_CHECK: RuleId = 14;
/// Rule: indirect jump inside a PLT stub — cross-module call policy.
pub const RULE_PLT_JMP: RuleId = 15;

/// The kind of indirect control transfer, for AIR accounting.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CtiKind {
    /// Indirect call.
    Call,
    /// Indirect jump.
    Jump,
    /// Return.
    Ret,
}

/// Per-site execution record.
#[derive(Clone, Copy, Debug)]
pub struct SiteStat {
    /// Kind of transfer.
    pub kind: CtiKind,
    /// Size of the allowed-target set at this site.
    pub allowed: u64,
}

/// Shared run-time CFI state (shadow stack, per-module target tables,
/// AIR accounting), referenced by every probe.
#[derive(Debug, Default)]
pub struct CfiState {
    /// Rebased metadata per module id.
    pub modules: Vec<Option<CfiModuleInfo>>,
    /// The shadow stack of return addresses.
    pub shadow_stack: Vec<u64>,
    /// Executed indirect-CTI sites. Ordered map: the AIR means sum
    /// floating-point terms over the values, and the iteration order must
    /// be deterministic for result files to be byte-reproducible.
    pub sites: BTreeMap<u64, SiteStat>,
    /// Shadow-stack pushes/pops performed.
    pub backward_ops: u64,
    /// Forward checks performed.
    pub forward_checks: u64,
    /// Tool-side violation contexts recorded at check time, one per
    /// violation report (same order), drained by the forensics layer.
    pub captures: Vec<ToolContext>,
}

impl CfiState {
    fn module_info_at(&self, proc: &Process, addr: u64) -> Option<(usize, &CfiModuleInfo)> {
        let m = proc.module_containing(addr)?;
        self.modules
            .get(m.id)
            .and_then(|i| i.as_ref())
            .map(|i| (m.id, i))
    }

    /// Total executable bytes across loaded modules (the AIR denominator).
    pub fn total_code_bytes(&self) -> u64 {
        self.modules
            .iter()
            .flatten()
            .map(|i| i.code_bytes)
            .sum::<u64>()
            .max(1)
    }

    /// Whether `target` is a valid indirect-call destination from
    /// `caller_module` under JCFI's policy.
    pub fn call_allowed(&self, proc: &Process, caller_module: Option<usize>, target: u64) -> bool {
        match self.module_info_at(proc, target) {
            None => {
                // Dynamically generated code has no static target set; the
                // dynamic analyzer admits it (and instruments it when it
                // runs).
                proc.mem.region_label(target) == Some("jit")
            }
            Some((mid, info)) => {
                if Some(mid) == caller_module {
                    info.functions.contains(&target)
                        || info.plt_stubs.contains(&target)
                        || info.address_taken.contains(&target)
                        || info.allowlist.contains(&target)
                } else {
                    info.exported.contains(&target)
                        || info.address_taken.contains(&target)
                        || info.allowlist.contains(&target)
                }
            }
        }
    }

    /// Dynamic AIR over executed indirect-CTI sites, in percent.
    pub fn dynamic_air(&self) -> f64 {
        let s = self.total_code_bytes() as f64;
        if self.sites.is_empty() {
            return 100.0;
        }
        let sum: f64 = self
            .sites
            .values()
            .map(|site| 1.0 - (site.allowed as f64 / s).min(1.0))
            .sum();
        sum / self.sites.len() as f64 * 100.0
    }

    /// Dynamic AIR restricted to one CTI kind.
    pub fn dynamic_air_of(&self, kind: CtiKind) -> Option<f64> {
        let s = self.total_code_bytes() as f64;
        let vals: Vec<f64> = self
            .sites
            .values()
            .filter(|x| x.kind == kind)
            .map(|site| 1.0 - (site.allowed as f64 / s).min(1.0))
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64 * 100.0)
        }
    }

    /// |T| for an indirect call from `caller_module` (cached per module by
    /// the caller).
    pub fn call_target_count(&self, caller_module: Option<usize>) -> u64 {
        let mut total = 0u64;
        for (id, info) in self.modules.iter().enumerate() {
            let Some(info) = info else { continue };
            if Some(id) == caller_module {
                total += (info.functions.len()
                    + info.plt_stubs.len()
                    + info.address_taken.len()
                    + info.allowlist.len()) as u64;
            } else {
                total += info.exported.union(&info.address_taken).count() as u64
                    + info.allowlist.len() as u64;
            }
        }
        total.max(1)
    }

    /// Top of the shadow stack (most recent return address first),
    /// truncated for forensic snapshots.
    fn shadow_top(&self) -> Vec<u64> {
        self.shadow_stack.iter().rev().take(16).copied().collect()
    }

    /// A deterministic sample of the allowed indirect-call targets from
    /// `caller_module`: the sorted union of the policy's sets, truncated
    /// to `k` entries.
    fn call_target_sample(&self, caller_module: Option<usize>, k: usize) -> Vec<u64> {
        let mut v: Vec<u64> = Vec::new();
        for (id, info) in self.modules.iter().enumerate() {
            let Some(info) = info else { continue };
            if Some(id) == caller_module {
                v.extend(info.functions.iter().copied());
                v.extend(info.plt_stubs.iter().copied());
            } else {
                v.extend(info.exported.iter().copied());
            }
            v.extend(info.address_taken.iter().copied());
            v.extend(info.allowlist.iter().copied());
        }
        v.sort_unstable();
        v.dedup();
        v.truncate(k);
        v
    }

    /// Records a violation context for forensics, bounded the same way
    /// the engine bounds its report vector so indexes stay aligned.
    fn record_capture(&mut self, ctx: JcfiContext) {
        if self.captures.len() < DEFAULT_MAX_REPORTS {
            self.captures.push(ToolContext::Jcfi(ctx));
        }
    }
}

/// JCFI configuration.
#[derive(Clone, Copy, Debug)]
pub struct JcfiOptions {
    /// Enforce forward edges (indirect calls/jumps).
    pub forward: bool,
    /// Enforce backward edges (shadow stack).
    pub backward: bool,
}

impl Default for JcfiOptions {
    fn default() -> JcfiOptions {
        JcfiOptions {
            forward: true,
            backward: true,
        }
    }
}

// Inline-check fast-path costs (cycles).
const COST_SHADOW_PUSH: u64 = 4;
const COST_RET_CHECK: u64 = 5;
const COST_ICALL: u64 = 13;
const COST_IJMP: u64 = 10;
const COST_PLT_JMP: u64 = 6;
/// Extra cost for conservatively-generated fallback checks.
const DYN_EXTRA: u64 = 6;

/// Stable profiler kind label for each JCFI check rule.
fn kind_of(id: RuleId) -> &'static str {
    match id {
        RULE_SHADOW_PUSH => "shadow-push",
        RULE_RET_CHECK => "ret-check",
        RULE_RET_RESOLVER => "resolver-ret",
        RULE_ICALL_CHECK => "icall-check",
        RULE_PLT_JMP => "plt-jmp",
        RULE_IJMP_CHECK => "ijmp-check",
        _ => "other",
    }
}

/// Profiler identity of one JCFI check site; `conservative` marks the
/// dynamic-fallback instrumentation path.
fn site(kind: &'static str, pc: u64, conservative: bool) -> ProbeSite {
    ProbeSite {
        tool: "jcfi",
        kind,
        pc,
        class: ProbeClass::Inline,
        origin: if conservative {
            SiteOrigin::Dynamic
        } else {
            SiteOrigin::Static
        },
    }
}

/// The JCFI plugin.
#[derive(Debug)]
pub struct Jcfi {
    /// Configuration.
    pub opts: JcfiOptions,
    /// Shared run-time state (exposed for metric extraction).
    pub state: Rc<RefCell<CfiState>>,
    /// Metadata computed by static passes, keyed by module name.
    static_info: RefCell<HashMap<String, CfiModuleInfo>>,
}

impl Jcfi {
    /// Creates the plugin.
    pub fn new(opts: JcfiOptions) -> Jcfi {
        Jcfi {
            opts,
            state: Rc::new(RefCell::new(CfiState::default())),
            static_info: RefCell::new(HashMap::new()),
        }
    }

    /// The paper's JCFI-hybrid configuration.
    pub fn hybrid() -> Jcfi {
        Jcfi::new(JcfiOptions::default())
    }

    /// Forward-edge-only configuration (Figure 11's "+ Forward CFI").
    pub fn forward_only() -> Jcfi {
        Jcfi::new(JcfiOptions {
            forward: true,
            backward: false,
        })
    }

    /// Dynamic AIR over executed indirect-CTI sites (Figure 12): the mean
    /// of `1 - |T|/S`, in percent.
    pub fn dynamic_air(&self) -> f64 {
        self.state.borrow().dynamic_air()
    }

    /// Dynamic AIR restricted to one CTI kind.
    pub fn dynamic_air_of(&self, kind: CtiKind) -> Option<f64> {
        self.state.borrow().dynamic_air_of(kind)
    }

    fn push_probe(&self, pc: u64, ret_addr: u64, conservative: bool) -> TbItem {
        let state = Rc::clone(&self.state);
        TbItem::Probe(Probe {
            cost: COST_SHADOW_PUSH + if conservative { 1 } else { 0 },
            run: Box::new(move |_p| {
                let mut st = state.borrow_mut();
                st.shadow_stack.push(ret_addr);
                st.backward_ops += 1;
                ProbeResult::Ok
            }),
            site: Some(site(kind_of(RULE_SHADOW_PUSH), pc, conservative)),
        })
    }

    fn ret_probe(&self, pc: u64, conservative: bool) -> TbItem {
        let state = Rc::clone(&self.state);
        TbItem::Probe(Probe {
            cost: COST_RET_CHECK + if conservative { DYN_EXTRA } else { 0 },
            run: Box::new(move |p: &mut Process| {
                let target = match p.mem.read_int(p.cpu.reg(janitizer_isa::Reg::SP), 8) {
                    Ok(t) => t,
                    Err(_) => return ProbeResult::Ok, // the ret itself will fault
                };
                let mut st = state.borrow_mut();
                st.backward_ops += 1;
                st.sites.insert(
                    pc,
                    SiteStat {
                        kind: CtiKind::Ret,
                        allowed: 1,
                    },
                );
                match st.shadow_stack.pop() {
                    None => ProbeResult::Ok, // entry frames precede tracking
                    Some(expected) if expected == target => ProbeResult::Ok,
                    Some(expected) => {
                        janitizer_telemetry::counter_add("jcfi.violations", 1);
                        let fctx = JcfiContext {
                            cti: "return",
                            actual: target,
                            expected: Some(expected),
                            allowed_count: 1,
                            allowed_sample: vec![expected],
                            shadow_stack: st.shadow_top(),
                        };
                        st.record_capture(fctx);
                        ProbeResult::Violation(Report {
                            pc,
                            kind: ViolationKind::CfiReturn,
                            details: format!(
                                "return to {target:#x}, shadow stack expected {expected:#x}"
                            ),
                        })
                    }
                }
            }),
            site: Some(site(kind_of(RULE_RET_CHECK), pc, conservative)),
        })
    }

    fn icall_probe(
        &self,
        pc: u64,
        reg: janitizer_isa::Reg,
        kind: CtiKind,
        cost: u64,
        site_kind: &'static str,
        conservative: bool,
    ) -> TbItem {
        let state = Rc::clone(&self.state);
        TbItem::Probe(Probe {
            cost,
            run: Box::new(move |p: &mut Process| {
                let target = p.cpu.reg(reg);
                let caller = p.module_containing(pc).map(|m| m.id);
                let mut st = state.borrow_mut();
                st.forward_checks += 1;
                let allowed_count = st.call_target_count(caller);
                st.sites.insert(
                    pc,
                    SiteStat {
                        kind,
                        allowed: allowed_count,
                    },
                );
                if st.call_allowed(p, caller, target) {
                    ProbeResult::Ok
                } else {
                    janitizer_telemetry::counter_add("jcfi.violations", 1);
                    let fctx = JcfiContext {
                        cti: "indirect-call",
                        actual: target,
                        expected: None,
                        allowed_count,
                        allowed_sample: st.call_target_sample(caller, 8),
                        shadow_stack: st.shadow_top(),
                    };
                    st.record_capture(fctx);
                    ProbeResult::Violation(Report {
                        pc,
                        kind: ViolationKind::CfiIcall,
                        details: format!("indirect call to invalid target {target:#x}"),
                    })
                }
            }),
            site: Some(site(site_kind, pc, conservative)),
        })
    }

    /// Resolver `ret`: validates the *dispatch* target like a forward call
    /// and leaves the shadow stack alone.
    fn resolver_ret_probe(&self, pc: u64, conservative: bool) -> TbItem {
        let state = Rc::clone(&self.state);
        TbItem::Probe(Probe {
            cost: COST_ICALL,
            run: Box::new(move |p: &mut Process| {
                let target = match p.mem.read_int(p.cpu.reg(janitizer_isa::Reg::SP), 8) {
                    Ok(t) => t,
                    Err(_) => return ProbeResult::Ok,
                };
                let caller = p.module_containing(pc).map(|m| m.id);
                let mut st = state.borrow_mut();
                st.forward_checks += 1;
                let allowed_count = st.call_target_count(caller);
                st.sites.insert(
                    pc,
                    SiteStat {
                        kind: CtiKind::Call,
                        allowed: allowed_count,
                    },
                );
                if st.call_allowed(p, None, target) {
                    ProbeResult::Ok
                } else {
                    janitizer_telemetry::counter_add("jcfi.violations", 1);
                    let fctx = JcfiContext {
                        cti: "indirect-call",
                        actual: target,
                        expected: None,
                        allowed_count,
                        allowed_sample: st.call_target_sample(None, 8),
                        shadow_stack: st.shadow_top(),
                    };
                    st.record_capture(fctx);
                    ProbeResult::Violation(Report {
                        pc,
                        kind: ViolationKind::CfiIcall,
                        details: format!("lazy-resolver dispatch to invalid target {target:#x}"),
                    })
                }
            }),
            site: Some(site(kind_of(RULE_RET_RESOLVER), pc, conservative)),
        })
    }

    fn ijmp_probe(
        &self,
        pc: u64,
        reg: janitizer_isa::Reg,
        func: Option<(u64, u64)>,
        conservative: bool,
    ) -> TbItem {
        let state = Rc::clone(&self.state);
        TbItem::Probe(Probe {
            cost: COST_IJMP + if conservative { DYN_EXTRA } else { 0 },
            run: Box::new(move |p: &mut Process| {
                let target = p.cpu.reg(reg);
                let mut st = state.borrow_mut();
                st.forward_checks += 1;
                let (allowed, count) = {
                    let info = st.module_info_at(p, pc).map(|(_, i)| i);
                    match info {
                        None => (true, 1),
                        Some(info) => {
                            let in_func = func
                                .map(|(lo, hi)| target >= lo && target < hi)
                                .unwrap_or(false);
                            let boundary_ok = if info.boundaries.is_empty() {
                                // Load-time analysis only: any byte within
                                // the function (the weaker policy).
                                true
                            } else {
                                info.boundaries.contains(&target)
                            };
                            let tail_call = info.functions.contains(&target);
                            let count = func
                                .map(|(lo, hi)| {
                                    if info.boundaries.is_empty() {
                                        hi - lo
                                    } else {
                                        info.boundaries.range(lo..hi).count() as u64
                                    }
                                })
                                .unwrap_or(0)
                                + info.functions.len() as u64;
                            ((in_func && boundary_ok) || tail_call, count.max(1))
                        }
                    }
                };
                st.sites.insert(
                    pc,
                    SiteStat {
                        kind: CtiKind::Jump,
                        allowed: count,
                    },
                );
                if allowed {
                    ProbeResult::Ok
                } else {
                    janitizer_telemetry::counter_add("jcfi.violations", 1);
                    // Sample the in-function boundary targets (sorted by
                    // construction: `boundaries` is ordered).
                    let sample: Vec<u64> = st
                        .module_info_at(p, pc)
                        .map(|(_, info)| match func {
                            Some((lo, hi)) if !info.boundaries.is_empty() => {
                                info.boundaries.range(lo..hi).take(8).copied().collect()
                            }
                            _ => info.functions.iter().take(8).copied().collect(),
                        })
                        .unwrap_or_default();
                    let fctx = JcfiContext {
                        cti: "indirect-jump",
                        actual: target,
                        expected: None,
                        allowed_count: count,
                        allowed_sample: sample,
                        shadow_stack: st.shadow_top(),
                    };
                    st.record_capture(fctx);
                    ProbeResult::Violation(Report {
                        pc,
                        kind: ViolationKind::CfiIjmp,
                        details: format!("indirect jump to invalid target {target:#x}"),
                    })
                }
            }),
            site: Some(site(kind_of(RULE_IJMP_CHECK), pc, conservative)),
        })
    }

    /// Shared instrumentation walk; `rules_of` yields rule decisions per
    /// instruction (from the rewrite rules or the fallback analysis).
    fn instrument(
        &mut self,
        block: &DecodedBlock,
        conservative: bool,
        decide: impl Fn(u64, &Instr) -> Vec<(RuleId, [u64; 4])>,
    ) -> Vec<TbItem> {
        let mut items = Vec::new();
        let mut emitted = 0u64;
        let mut elided = 0u64;
        for &(pc, insn, next) in &block.insns {
            for (id, data) in decide(pc, &insn) {
                let before = items.len();
                match id {
                    RULE_SHADOW_PUSH if self.opts.backward => {
                        items.push(self.push_probe(pc, next, conservative));
                    }
                    RULE_RET_CHECK if self.opts.backward => {
                        items.push(self.ret_probe(pc, conservative));
                    }
                    RULE_RET_RESOLVER if self.opts.forward => {
                        items.push(self.resolver_ret_probe(pc, conservative));
                    }
                    RULE_ICALL_CHECK if self.opts.forward => {
                        if let Instr::CallInd { rs } = insn {
                            items.push(self.icall_probe(
                                pc,
                                rs,
                                CtiKind::Call,
                                COST_ICALL + if conservative { DYN_EXTRA } else { 0 },
                                kind_of(RULE_ICALL_CHECK),
                                conservative,
                            ));
                        }
                    }
                    RULE_PLT_JMP if self.opts.forward => {
                        if let Instr::JmpInd { rs } = insn {
                            items.push(self.icall_probe(
                                pc,
                                rs,
                                CtiKind::Jump,
                                COST_PLT_JMP,
                                kind_of(RULE_PLT_JMP),
                                conservative,
                            ));
                        }
                    }
                    RULE_IJMP_CHECK if self.opts.forward => {
                        if let Instr::JmpInd { rs } = insn {
                            let func = (data[1] != 0).then_some((data[0], data[1]));
                            items.push(self.ijmp_probe(pc, rs, func, conservative));
                        }
                    }
                    _ => {}
                }
                if items.len() > before {
                    emitted += 1;
                } else if id != janitizer_rules::NO_OP {
                    // A rule applied to this site but the configuration
                    // (forward/backward off) dropped the check. The Note
                    // lets the profiler count it per execution; the engine
                    // strips it before translation.
                    elided += 1;
                    items.push(TbItem::Note(site(kind_of(id), pc, conservative)));
                }
            }
            items.push(TbItem::Guest(pc, insn, next));
        }
        janitizer_telemetry::counter_add("jcfi.checks_emitted", emitted);
        janitizer_telemetry::counter_add("jcfi.checks_elided", elided);
        items
    }

    /// Builds rule decisions for one instruction from module metadata —
    /// used both by the static pass (to emit rules) and by the dynamic
    /// fallback (to decide on the fly).
    fn decide_for(info: &CfiModuleInfo, pc: u64, insn: &Instr) -> Vec<(RuleId, [u64; 4])> {
        let mut out = Vec::new();
        if insn.is_call() {
            out.push((RULE_SHADOW_PUSH, [0; 4]));
        }
        match insn {
            Instr::Ret => {
                if info.resolver_rets.contains(&pc) {
                    out.push((RULE_RET_RESOLVER, [0; 4]));
                } else {
                    out.push((RULE_RET_CHECK, [0; 4]));
                }
            }
            Instr::CallInd { .. } => out.push((RULE_ICALL_CHECK, [0; 4])),
            Instr::JmpInd { .. } => {
                let in_plt = info
                    .plt_range
                    .map(|(lo, hi)| pc >= lo && pc < hi)
                    .unwrap_or(false);
                if in_plt {
                    out.push((RULE_PLT_JMP, [0; 4]));
                } else {
                    let (lo, hi) = info.function_range_of(pc).unwrap_or((0, 0));
                    out.push((RULE_IJMP_CHECK, [lo, hi, 0, 0]));
                }
            }
            _ => {}
        }
        out
    }
}

impl SecurityPlugin for Jcfi {
    fn name(&self) -> &str {
        "jcfi"
    }

    fn take_violation_contexts(&mut self) -> Vec<ToolContext> {
        std::mem::take(&mut self.state.borrow_mut().captures)
    }

    fn static_pass(&self, image: &Image, ctx: &StaticContext) -> Vec<RewriteRule> {
        let info = CfiModuleInfo::from_image(image, Some(&ctx.cfg));
        let mut rules = Vec::new();
        for block in ctx.cfg.blocks.values() {
            for (addr, insn) in &block.insns {
                for (id, data) in Self::decide_for(&info, *addr, insn) {
                    let mut r = RewriteRule::new(id, block.start, *addr);
                    r.data = data;
                    rules.push(r);
                }
            }
        }
        self.static_info
            .borrow_mut()
            .insert(image.name.clone(), info);
        rules
    }

    fn on_rules_cached(&self, image: &Image, ctx: &StaticContext) {
        // `static_pass` has a side effect beyond the rules it returns: it
        // stashes CFG-derived module info consumed at load time. Replay
        // that stash when a cached `RuleFile` short-circuits the pass so
        // cached and fresh runs behave identically.
        self.static_info.borrow_mut().insert(
            image.name.clone(),
            CfiModuleInfo::from_image(image, Some(&ctx.cfg)),
        );
    }

    fn on_module_load(
        &mut self,
        proc: &mut Process,
        module_id: usize,
        rules: Option<&janitizer_rules::RuleTable>,
    ) {
        let m = &proc.modules[module_id];
        // Statically analyzed modules ship their hint tables; everything
        // else gets the load-time analysis of §4.2.2 (weaker for stripped
        // modules).
        let base_info = if rules.is_some() {
            self.static_info
                .borrow()
                .get(&m.image.name)
                .cloned()
                .unwrap_or_else(|| CfiModuleInfo::from_image(&m.image, None))
        } else if m.image.stripped {
            CfiModuleInfo::from_stripped_image(&m.image)
        } else {
            let mut i = CfiModuleInfo::from_image(&m.image, None);
            // Load-time analysis does not build a full CFG; instruction
            // boundaries are unavailable, weakening the intra-function
            // jump policy (paper footnote 15).
            i.boundaries.clear();
            i
        };
        let rebased = base_info.rebase(m.base);
        let mut st = self.state.borrow_mut();
        while st.modules.len() <= module_id {
            st.modules.push(None);
        }
        st.modules[module_id] = Some(rebased);
    }

    fn instrument_static(
        &mut self,
        proc: &mut Process,
        block: &DecodedBlock,
        rules: &janitizer_core::BlockRules<'_>,
    ) -> Vec<TbItem> {
        // Rewrite-rule payloads carry link-time addresses (function
        // ranges); PIC modules need them rebased, just like the rule keys
        // themselves (3.4.2).
        let bias = proc
            .module_containing(block.start)
            .map(|m| m.base)
            .unwrap_or(0);
        self.instrument(block, false, |pc, _insn| {
            rules
                .rules_for(pc)
                .iter()
                .map(|r| {
                    let mut data = r.data;
                    if r.id == RULE_IJMP_CHECK && data[1] != 0 {
                        data[0] += bias;
                        data[1] += bias;
                    }
                    (r.id, data)
                })
                .collect()
        })
    }

    fn instrument_dynamic(&mut self, proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
        // One-time per-block fallback analysis cost (scanning the block
        // for indirect CTIs and the resolver idiom).
        proc.cycles += 12 * block.insns.len() as u64;
        // The fallback sees one block at a time; decisions come from the
        // module metadata built at load time (or a permissive default for
        // JIT code). The resolver special case is still recognizable
        // within the block: `st8 [sp], rX` immediately before `ret`.
        let mut resolver_rets: Vec<u64> = Vec::new();
        for w in block.insns.windows(2) {
            let (_, a, _) = w[0];
            let (rpc, b, _) = w[1];
            if matches!(
                a,
                Instr::St {
                    base: janitizer_isa::Reg::R15,
                    disp: 0,
                    ..
                }
            ) && matches!(b, Instr::Ret)
            {
                resolver_rets.push(rpc);
            }
        }
        let info = {
            let st = self.state.borrow();
            st.module_info_at(proc, block.start).map(|(_, i)| i.clone())
        };
        self.instrument(block, true, move |pc, insn| {
            let mut base = match &info {
                Some(i) => Self::decide_for(i, pc, insn),
                None => {
                    // JIT / unknown code: shadow-stack discipline plus
                    // permissive forward checks.
                    let mut v = Vec::new();
                    if insn.is_call() {
                        v.push((RULE_SHADOW_PUSH, [0u64; 4]));
                    }
                    match insn {
                        Instr::Ret => v.push((RULE_RET_CHECK, [0; 4])),
                        Instr::CallInd { .. } => v.push((RULE_ICALL_CHECK, [0; 4])),
                        Instr::JmpInd { .. } => v.push((RULE_IJMP_CHECK, [0, 0, 0, 0])),
                        _ => {}
                    }
                    v
                }
            };
            // Apply the in-block resolver detection on top.
            if resolver_rets.contains(&pc) {
                base.retain(|(id, _)| *id != RULE_RET_CHECK);
                base.push((RULE_RET_RESOLVER, [0; 4]));
            }
            base
        })
    }
}

/// Static AIR (Figure 13 methodology): over every indirect CTI in the
/// given images, the mean of `1 - |T|/S`, in percent, under JCFI's
/// policy.
pub fn static_air(images: &[&Image]) -> f64 {
    let infos: Vec<CfiModuleInfo> = images
        .iter()
        .map(|i| CfiModuleInfo::from_image(i, None))
        .collect();
    let s: u64 = infos.iter().map(|i| i.code_bytes).sum::<u64>().max(1);
    let mut terms: Vec<f64> = Vec::new();
    for (mi, image) in images.iter().enumerate() {
        let info = &infos[mi];
        let cfg = janitizer_analysis::analyze_module(image);
        // Cross-module callable set: exports + address-taken of others.
        let cross: u64 = infos
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != mi)
            .map(|(_, o)| o.exported.union(&o.address_taken).count() as u64)
            .sum();
        let own =
            (info.functions.len() + info.plt_stubs.len() + info.address_taken.len()) as u64;
        for block in cfg.blocks.values() {
            for (addr, insn) in &block.insns {
                let t = match insn {
                    Instr::CallInd { .. } => own + cross,
                    Instr::Ret => 1,
                    Instr::JmpInd { .. } => {
                        let in_plt = info
                            .plt_range
                            .map(|(lo, hi)| *addr >= lo && *addr < hi)
                            .unwrap_or(false);
                        if in_plt {
                            own + cross
                        } else {
                            let range = info.function_range_of(*addr);
                            range
                                .map(|(lo, hi)| info.boundaries.range(lo..hi).count() as u64)
                                .unwrap_or(0)
                                + info.functions.len() as u64
                        }
                    }
                    _ => continue,
                };
                terms.push(1.0 - (t as f64 / s as f64).min(1.0));
            }
        }
    }
    if terms.is_empty() {
        100.0
    } else {
        terms.iter().sum::<f64>() / terms.len() as f64 * 100.0
    }
}
