//! Corruption-regression corpus: each minimized fixture under `corpus/`
//! must decode to the *exact* typed error it was built to trigger — no
//! panic, and no silent acceptance. Regenerate the fixtures with
//! `cargo run -p janitizer-faultz --bin faultz-gen-corpus` after format
//! changes, and update the expectations here deliberately.

use janitizer_obj::{FormatError, Image, Object};
use janitizer_rules::RuleFile;
use janitizer_store::{JournalRecord, StoreEntry};
use std::path::PathBuf;

/// Compact stable rendering: `BadMagic` carries the raw bytes it saw,
/// which are fixture-specific noise; everything else Debug-prints.
fn label(e: &FormatError) -> String {
    match e {
        FormatError::BadMagic { .. } => "BadMagic".into(),
        other => format!("{other:?}"),
    }
}

fn fixture(name: &str) -> Vec<u8> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus").join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("missing fixture {name}: {e}"))
}

/// Decodes one fixture by its name prefix and returns the error's Debug
/// rendering (or panics if the hostile input was accepted).
fn decode_err(name: &str, bytes: &[u8]) -> String {
    let err = if name.starts_with("obj_") {
        Object::from_bytes(bytes).expect_err("hostile object accepted")
    } else if name.starts_with("img_") {
        Image::from_bytes(bytes).expect_err("hostile image accepted")
    } else if name.contains("journal") {
        JournalRecord::from_bytes(bytes).expect_err("hostile journal accepted")
    } else if name.starts_with("store_") {
        StoreEntry::from_bytes(bytes).expect_err("hostile store entry accepted")
    } else {
        RuleFile::from_bytes(bytes).expect_err("hostile rule file accepted")
    };
    label(&err)
}

#[test]
fn every_fixture_fails_with_its_exact_typed_error() {
    let cases: &[(&str, &str)] = &[
        ("obj_bad_magic.bin", "BadMagic"),
        ("obj_bad_version.bin", "BadVersion(99)"),
        ("obj_truncated.bin", "Truncated"),
        ("obj_reloc_offset.bin", r#"Invalid { what: "relocation offset" }"#),
        ("img_bad_magic.bin", "BadMagic"),
        ("img_truncated.bin", "Truncated"),
        ("img_section_span.bin", r#"Invalid { what: "section span" }"#),
        ("img_section_data.bin", r#"Invalid { what: "section data size" }"#),
        ("img_symbol_range.bin", r#"Invalid { what: "symbol range" }"#),
        ("rules_bad_magic.bin", "BadMagic"),
        ("rules_stale_v1.bin", "BadVersion(1)"),
        ("rules_checksum.bin", r#"Invalid { what: "rule-file checksum" }"#),
        ("rules_truncated.bin", "Truncated"),
        ("store_torn_journal.bin", "Truncated"),
        ("store_truncated_entry.bin", "Truncated"),
        ("store_checksum_flip.bin", r#"Invalid { what: "store-entry checksum" }"#),
    ];
    assert!(cases.len() >= 12, "corpus floor");
    for (name, expected) in cases {
        let got = decode_err(name, &fixture(name));
        assert_eq!(&got, expected, "{name}");
    }
}

#[test]
fn corpus_directory_has_no_strays() {
    // Every committed fixture must be covered by the expectations above;
    // a stray file means an untested corruption class.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut found: Vec<String> = std::fs::read_dir(&dir)
        .expect("corpus dir")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    found.sort();
    assert_eq!(found.len(), 16, "fixture count drifted: {found:?}");
}
