//! Corruption-regression corpus: each minimized fixture under `corpus/`
//! must decode to the *exact* typed error it was built to trigger — no
//! panic, and no silent acceptance. Regenerate the fixtures with
//! `cargo run -p janitizer-faultz --bin faultz-gen-corpus` after format
//! changes, and update the expectations here deliberately.

use janitizer_analysis::set_disasm_backend;
use janitizer_core::{run_hybrid, DegradationReason, HybridOptions, RunOutcome};
use janitizer_faultz::MarkerPlugin;
use janitizer_obj::{FormatError, Image, Object};
use janitizer_rules::RuleFile;
use janitizer_store::{JournalRecord, StoreEntry};
use janitizer_vm::{FaultKind, ModuleStore};
use std::path::PathBuf;

/// Compact stable rendering: `BadMagic` carries the raw bytes it saw,
/// which are fixture-specific noise; everything else Debug-prints.
fn label(e: &FormatError) -> String {
    match e {
        FormatError::BadMagic { .. } => "BadMagic".into(),
        other => format!("{other:?}"),
    }
}

fn fixture(name: &str) -> Vec<u8> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus").join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("missing fixture {name}: {e}"))
}

/// Decodes one fixture by its name prefix and returns the error's Debug
/// rendering (or panics if the hostile input was accepted).
fn decode_err(name: &str, bytes: &[u8]) -> String {
    let err = if name.starts_with("obj_") {
        Object::from_bytes(bytes).expect_err("hostile object accepted")
    } else if name.starts_with("img_") {
        Image::from_bytes(bytes).expect_err("hostile image accepted")
    } else if name.contains("journal") {
        JournalRecord::from_bytes(bytes).expect_err("hostile journal accepted")
    } else if name.starts_with("store_") {
        StoreEntry::from_bytes(bytes).expect_err("hostile store entry accepted")
    } else {
        RuleFile::from_bytes(bytes).expect_err("hostile rule file accepted")
    };
    label(&err)
}

#[test]
fn every_fixture_fails_with_its_exact_typed_error() {
    let cases: &[(&str, &str)] = &[
        ("obj_bad_magic.bin", "BadMagic"),
        ("obj_bad_version.bin", "BadVersion(99)"),
        ("obj_truncated.bin", "Truncated"),
        ("obj_reloc_offset.bin", r#"Invalid { what: "relocation offset" }"#),
        ("img_bad_magic.bin", "BadMagic"),
        ("img_truncated.bin", "Truncated"),
        ("img_section_span.bin", r#"Invalid { what: "section span" }"#),
        ("img_section_data.bin", r#"Invalid { what: "section data size" }"#),
        ("img_symbol_range.bin", r#"Invalid { what: "symbol range" }"#),
        ("rules_bad_magic.bin", "BadMagic"),
        ("rules_stale_v1.bin", "BadVersion(1)"),
        ("rules_checksum.bin", r#"Invalid { what: "rule-file checksum" }"#),
        ("rules_truncated.bin", "Truncated"),
        ("store_torn_journal.bin", "Truncated"),
        ("store_truncated_entry.bin", "Truncated"),
        ("store_checksum_flip.bin", r#"Invalid { what: "store-entry checksum" }"#),
    ];
    assert!(cases.len() >= 12, "corpus floor");
    for (name, expected) in cases {
        let got = decode_err(name, &fixture(name));
        assert_eq!(&got, expected, "{name}");
    }
}

#[test]
fn corpus_directory_has_no_strays() {
    // Every committed fixture must be covered by the expectations above
    // (or, for `hostile_*`, by the run-outcome regression below); a
    // stray file means an untested corruption class.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut found: Vec<String> = std::fs::read_dir(&dir)
        .expect("corpus dir")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    found.sort();
    assert_eq!(found.len(), 20, "fixture count drifted: {found:?}");
    assert_eq!(
        found.iter().filter(|n| n.starts_with("hostile_")).count(),
        4,
        "hostile fixture set drifted: {found:?}"
    );
}

/// Runs one hostile fixture end to end under the given disassembly
/// backend and returns the [`janitizer_core::HybridRun`].
fn run_hostile(name: &str, backend: &str) -> janitizer_core::HybridRun {
    let img = Image::from_bytes(&fixture(name)).expect("hostile fixture must decode");
    let module = img.name.clone();
    let mut store = ModuleStore::new();
    store.add(img);
    assert!(set_disasm_backend(backend), "unknown backend {backend}");
    let run = run_hybrid(&store, &module, MarkerPlugin, &HybridOptions::with_fuel(2_000_000));
    set_disasm_backend("hybrid");
    run.expect("hostile fixture run must not error")
}

/// The `hostile_*` fixtures are *valid* images with targeted hostility;
/// each must produce its exact outcome: graceful per-region degradation,
/// a typed fault, or a clean dynamic-fallback run — never a panic and
/// never silent misanalysis.
#[test]
fn hostile_fixtures_degrade_with_their_exact_outcome() {
    // Pristine subject: exits 0 with nothing degraded, under both the
    // default and the evidence backend.
    for backend in ["hybrid", "evidence"] {
        let run = run_hostile("hostile_tiny.bin", backend);
        assert_eq!(run.outcome.code(), Some(0), "pristine subject ({backend})");
        assert!(run.degraded.is_empty(), "pristine subject degraded ({backend})");
    }

    // Data splice: code bytes are demonstrably read as data. The run
    // still exits 0, and the evidence backend records exactly a
    // low-confidence-region degradation for the spliced block.
    let run = run_hostile("hostile_data_splice.bin", "evidence");
    assert_eq!(run.outcome.code(), Some(0), "splice must still run benignly");
    let reasons: Vec<DegradationReason> = run.degraded.iter().map(|d| d.reason).collect();
    assert_eq!(
        reasons,
        [DegradationReason::LowConfidenceRegion],
        "splice must degrade the contested region"
    );
    assert!(
        run.degraded.iter().all(|d| d.module == "hostile-tiny"),
        "degradation names the module"
    );

    // Jump-table scramble: dispatch lands mid-instruction; the run dies
    // with a typed decode fault, never a panic.
    let run = run_hostile("hostile_jumptab_scramble.bin", "hybrid");
    let RunOutcome::Fault(f) = &run.outcome else {
        panic!("scramble must fault: {:?}", run.outcome);
    };
    assert!(
        matches!(f.kind, FaultKind::Decode(_)),
        "scramble must die on decode, got {:?}",
        f.kind
    );

    // Symbol strip: still exits 0; the dispatch targets are reached only
    // through the dynamic fallback.
    let run = run_hostile("hostile_symbol_strip.bin", "hybrid");
    assert_eq!(run.outcome.code(), Some(0), "stripped subject must still run");
    assert!(run.degraded.is_empty(), "strip alone must not degrade");
    assert!(
        run.coverage.dynamic_blocks > 0,
        "stripped dispatch targets must fall back to dynamic translation"
    );
}
