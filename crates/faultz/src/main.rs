//! CLI for the fault-injection harness.
//!
//! ```text
//! cargo run -p janitizer-faultz -- --seed 1 --iters 500
//! ```
//!
//! Prints the deterministic summary JSON on stdout and exits non-zero if
//! any trial panicked (the hostile-input contract violation).

use janitizer_faultz::{run_harness, HarnessOptions};

fn main() {
    let mut opts = HarnessOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("faultz: {what} requires an integer argument");
                    std::process::exit(2);
                })
        };
        match arg.as_str() {
            "--seed" => opts.seed = take("--seed"),
            "--iters" => opts.iters = take("--iters"),
            "--help" | "-h" => {
                println!("usage: janitizer-faultz [--seed N] [--iters N]");
                return;
            }
            other => {
                eprintln!("faultz: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let summary = run_harness(&opts);
    print!("{}", summary.to_json());
    if summary.panics > 0 {
        eprintln!("faultz: {} trial(s) PANICKED", summary.panics);
        std::process::exit(1);
    }
}
