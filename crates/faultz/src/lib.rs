//! # Fault-injection harness (hostile-input hardening)
//!
//! Drives the deterministic byte mutator of `janitizer_core::fault` over
//! a corpus built from the evaluation's own modules: serialized JOF
//! objects, linked images, and rewrite-rule files. Every corrupted input
//! is pushed through the corresponding pipeline stage — decode, link,
//! and (for the executables and rule files) a full [`run_hybrid`]
//! execution — under `catch_unwind`, asserting the framework's hostile-
//! input contract:
//!
//! * the pipeline **never panics**, for any corruption;
//! * every failure surfaces as a **typed error** (`FormatError`,
//!   `LinkError`, `LoadError`) or as a recorded module **degradation**.
//!
//! The harness is seeded and fully deterministic: the same `--seed`
//! yields a byte-identical summary JSON, which CI diffs across runs.

use janitizer_asm::{assemble, AsmOptions};
use janitizer_core::{
    analyze_statically, run_hybrid, BlockRules, DegradationReason, FaultInjection, HybridOptions,
    Mutator, SecurityPlugin, SplitMix64, StaticContext, TbItem,
};
use janitizer_dbt::DecodedBlock;
use janitizer_link::{link, LinkOptions};
use janitizer_obj::{Image, Object};
use janitizer_rules::{RewriteRule, RuleFile};
use janitizer_vm::{ModuleStore, Process};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What kind of artifact a corpus entry is, which decides the pipeline
/// stages its mutations are pushed through.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ItemKind {
    /// A serialized relocatable [`Object`]: decode, then (if it still
    /// decodes) a full static link.
    Object,
    /// A serialized linked [`Image`]: decode + fingerprint; standalone
    /// executables additionally run the full hybrid pipeline.
    Image {
        /// Run the decoded image end to end under [`run_hybrid`].
        runnable: bool,
    },
    /// A serialized [`RuleFile`]: decode, then a full [`run_hybrid`] with
    /// the corrupted bytes installed as the module's rule override
    /// (exercising the graceful-degradation path).
    Rules,
    /// A serialized store-entry envelope (`JSTE`): the corrupted bytes
    /// are planted at their content address in a scratch
    /// [`janitizer_store::RuleStore`] and loaded back — a corrupt entry
    /// must be quarantined and reported as a miss, never served.
    StoreEntry,
    /// A serialized write-journal record (`JJRN`): the corrupted bytes
    /// are planted as the journal of a scratch store holding one valid
    /// committed entry, and the store is re-opened — recovery must
    /// complete (rollback or verify scan), clear the journal, and keep
    /// the valid entry intact.
    StoreJournal,
}

/// One corpus entry: pristine bytes plus how to exercise them.
pub struct CorpusItem {
    /// Stable name used in the summary.
    pub name: &'static str,
    /// Artifact kind.
    pub kind: ItemKind,
    /// The uncorrupted serialized artifact.
    pub bytes: Vec<u8>,
}

/// A tiny standalone program (no imports, no libraries) whose full
/// pipeline run costs microseconds — the run-trial subject.
const TINY_SRC: &str = ".section text\n.global _start\n_start:\n\
    la r8, buf\n mov r2, 0\n\
    loop:\n st8 [r8+r2*8], r2\n add r2, 1\n cmp r2, 8\n jne loop\n\
    ld8 r0, [r8+16]\n ret\n\
    .section bss\nbuf: .space 64\n";

/// A minimal plugin that marks memory accesses statically and passes
/// instructions through unchanged — enough to produce non-trivial rule
/// files and drive the classifier, with no tool-specific state.
pub struct MarkerPlugin;

impl SecurityPlugin for MarkerPlugin {
    fn name(&self) -> &str {
        "faultz-marker"
    }

    fn static_pass(&self, _image: &Image, ctx: &StaticContext) -> Vec<RewriteRule> {
        let mut rules = Vec::new();
        for block in ctx.cfg.blocks.values() {
            for (addr, insn) in &block.insns {
                if insn.mem_access().is_some() {
                    rules.push(RewriteRule::new(7, block.start, *addr));
                }
            }
        }
        rules
    }

    fn instrument_static(
        &mut self,
        _proc: &mut Process,
        block: &DecodedBlock,
        _rules: &BlockRules<'_>,
    ) -> Vec<TbItem> {
        block.insns.iter().map(|&(pc, i, n)| TbItem::Guest(pc, i, n)).collect()
    }

    fn instrument_dynamic(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
        block.insns.iter().map(|&(pc, i, n)| TbItem::Guest(pc, i, n)).collect()
    }
}

/// The tiny standalone executable image (see [`TINY_SRC`]).
pub fn tiny_exe() -> Image {
    let obj = assemble("tiny.s", TINY_SRC, &AsmOptions::default()).expect("tiny asm");
    link(&[obj], &LinkOptions::executable("tiny")).expect("tiny links")
}

/// The hostile-mutation subject: a rodata blob load plus a two-entry
/// pointer-table dispatch, with every patch site labeled so the
/// [`hostile_mutate`] surgeries below hit exact bytes. Benign as built:
/// dispatches to `case_a` and exits 0.
const HOSTILE_TINY_SRC: &str = ".section text\n.global _start\n_start:\n\
    splice_site:\n la r6, blob\n ld8 r7, [r6]\n\
    la r1, jtab\n mov r2, 0\n ld8 r3, [r1+r2*8]\n call r3\n\
    mov r0, 0\n ret\n\
    case_a:\n mov r4, 1\n ret\n\
    case_b:\n mov r4, 2\n ret\n\
    .align 8\n\
    .section rodata\n.align 8\n\
    blob:\n .quad 7\n\
    jtab:\n .quad case_a\n .quad case_b\n";

/// The pristine hostile-mutation subject (see [`HOSTILE_TINY_SRC`]).
pub fn hostile_tiny_exe() -> Image {
    let obj =
        assemble("hostile-tiny.s", HOSTILE_TINY_SRC, &AsmOptions::default()).expect("hostile asm");
    link(&[obj], &LinkOptions::executable("hostile-tiny")).expect("hostile links")
}

/// The targeted hostile-module mutations: each reproduces one way real
/// binaries defeat static disassembly, as a surgical byte patch on
/// [`hostile_tiny_exe`] rather than random corruption.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HostileMutation {
    /// Retargets the blob load at `splice_site` to read `case_b`'s
    /// instruction bytes as data — code and data now share a region, and
    /// the evidence backend must degrade it instead of trusting either
    /// interpretation.
    DataSplice,
    /// Adds one to every jump-table entry, so dispatch lands mid-
    /// instruction. Execution must die with a typed decode fault, never
    /// a panic.
    JumpTableScramble,
    /// Strips the symbol table; the dispatch targets survive only as
    /// dynamically-discovered blocks.
    SymbolStrip,
}

impl HostileMutation {
    /// All mutations, in fixture order.
    pub fn all() -> [HostileMutation; 3] {
        [
            HostileMutation::DataSplice,
            HostileMutation::JumpTableScramble,
            HostileMutation::SymbolStrip,
        ]
    }

    /// Stable kebab-case name (fixture files use it with `-` -> `_`).
    pub fn name(self) -> &'static str {
        match self {
            HostileMutation::DataSplice => "data-splice",
            HostileMutation::JumpTableScramble => "jumptab-scramble",
            HostileMutation::SymbolStrip => "symbol-strip",
        }
    }
}

/// Address of a defined label in the (unstripped) hostile subject.
fn hostile_label(image: &Image, name: &str) -> u64 {
    image
        .symbols
        .iter()
        .find(|s| s.name == name && !s.is_undefined())
        .map(|s| s.value)
        .unwrap_or_else(|| panic!("hostile subject is missing label `{name}`"))
}

/// Reads the little-endian u64 at `addr` from whichever section holds it.
fn hostile_read8(image: &Image, addr: u64) -> u64 {
    let sec = image
        .sections
        .iter()
        .find(|s| addr >= s.addr && addr + 8 <= s.addr + s.data.len() as u64)
        .expect("hostile patch site inside a section");
    let off = (addr - sec.addr) as usize;
    u64::from_le_bytes(sec.data[off..off + 8].try_into().unwrap())
}

/// Overwrites the little-endian u64 at `addr` in place.
fn hostile_patch8(image: &mut Image, addr: u64, value: u64) {
    let sec = image
        .sections
        .iter_mut()
        .find(|s| addr >= s.addr && addr + 8 <= s.addr + s.data.len() as u64)
        .expect("hostile patch site inside a section");
    let off = (addr - sec.addr) as usize;
    sec.data[off..off + 8].copy_from_slice(&value.to_le_bytes());
}

/// Applies one hostile mutation to a pristine [`hostile_tiny_exe`]
/// image, returning the mutated image (the input is left untouched).
pub fn hostile_mutate(kind: HostileMutation, image: &Image) -> Image {
    match kind {
        HostileMutation::SymbolStrip => image.to_stripped(),
        HostileMutation::DataSplice => {
            // `la r6, blob` is a `mov r6, imm64`; its immediate starts 2
            // bytes in. Point it at case_b's code instead of the blob.
            let mut img = image.clone();
            let site = hostile_label(image, "splice_site") + 2;
            let target = hostile_label(image, "case_b");
            hostile_patch8(&mut img, site, target);
            img
        }
        HostileMutation::JumpTableScramble => {
            let mut img = image.clone();
            let jtab = hostile_label(image, "jtab");
            for i in 0..2 {
                let at = jtab + i * 8;
                let v = hostile_read8(&img, at);
                hostile_patch8(&mut img, at, v.wrapping_add(1));
            }
            img
        }
    }
}

/// Builds the mutation corpus from the evaluation's own modules: the
/// shared-library base the figure runs load (libjc, libjf, ld.so, the
/// sanitizer runtime), a tiny standalone executable, raw objects, and
/// rule files for both.
pub fn build_corpus() -> Vec<CorpusItem> {
    let mut corpus = Vec::new();

    // Raw relocatable objects -> decode + link trials.
    let tiny_obj = assemble("tiny.s", TINY_SRC, &AsmOptions::default()).expect("tiny asm");
    corpus.push(CorpusItem {
        name: "obj:tiny",
        kind: ItemKind::Object,
        bytes: tiny_obj.to_bytes(),
    });
    let crt0 = assemble("crt0.s", janitizer_workloads::CRT0, &AsmOptions { pic: true })
        .expect("crt0 asm");
    corpus.push(CorpusItem {
        name: "obj:crt0",
        kind: ItemKind::Object,
        bytes: crt0.to_bytes(),
    });

    // The tiny executable -> decode + full-pipeline run trials.
    let tiny = tiny_exe();
    corpus.push(CorpusItem {
        name: "img:tiny",
        kind: ItemKind::Image { runnable: true },
        bytes: tiny.to_bytes(),
    });

    // The evaluation's shared modules (fig14 inputs) -> decode trials.
    let base = janitizer_workloads::library_base();
    let mut names: Vec<&str> = base.names();
    names.sort_unstable();
    for name in names {
        let image = base.get(name).expect("listed module exists");
        let leaked: &'static str = Box::leak(format!("img:{name}").into_boxed_str());
        corpus.push(CorpusItem {
            name: leaked,
            kind: ItemKind::Image { runnable: false },
            bytes: image.to_bytes(),
        });
    }

    // Rule files -> decode + degradation-run trials.
    let tiny_rules = analyze_statically(&tiny, &MarkerPlugin);
    corpus.push(CorpusItem {
        name: "rules:tiny",
        kind: ItemKind::Rules,
        bytes: tiny_rules.to_bytes(),
    });
    let libjc = base.get("libjc.so").expect("libjc exists");
    let libjc_rules = analyze_statically(&libjc, &MarkerPlugin);
    corpus.push(CorpusItem {
        name: "rules:libjc.so",
        kind: ItemKind::Rules,
        bytes: libjc_rules.to_bytes(),
    });

    // The hostile-mutation subject and its three targeted mutants ->
    // decode + full-pipeline run trials (random corruption stacks on top
    // of the targeted hostility).
    let hostile = hostile_tiny_exe();
    corpus.push(CorpusItem {
        name: "img:hostile-tiny",
        kind: ItemKind::Image { runnable: true },
        bytes: hostile.to_bytes(),
    });
    for kind in HostileMutation::all() {
        let leaked: &'static str =
            Box::leak(format!("img:hostile-{}", kind.name()).into_boxed_str());
        corpus.push(CorpusItem {
            name: leaked,
            kind: ItemKind::Image { runnable: true },
            bytes: hostile_mutate(kind, &hostile).to_bytes(),
        });
    }

    // Store formats -> quarantine/recovery trials against a scratch
    // on-disk store.
    corpus.push(CorpusItem {
        name: "store:entry",
        kind: ItemKind::StoreEntry,
        bytes: store_entry_bytes(&tiny, &tiny_rules),
    });
    corpus.push(CorpusItem {
        name: "store:journal",
        kind: ItemKind::StoreJournal,
        bytes: janitizer_store::JournalRecord {
            entry_name: store_key(&tiny).entry_name(),
        }
        .to_bytes(),
    });

    corpus
}

/// The store content address the store trials commit under.
pub fn store_key(tiny: &Image) -> janitizer_store::StoreKey {
    janitizer_store::StoreKey {
        module: tiny.name.clone(),
        fingerprint: tiny.fingerprint(),
        plugin: "faultz-marker".into(),
        noop: true,
    }
}

/// The pristine serialized store-entry envelope the store trials mutate.
pub fn store_entry_bytes(tiny: &Image, rules: &RuleFile) -> Vec<u8> {
    janitizer_store::StoreEntry {
        key: store_key(tiny),
        rule_bytes: rules.to_bytes(),
    }
    .to_bytes()
}

/// Harness configuration.
#[derive(Clone, Copy, Debug)]
pub struct HarnessOptions {
    /// Master seed for the deterministic mutation stream.
    pub seed: u64,
    /// Number of mutation trials.
    pub iters: u64,
}

impl Default for HarnessOptions {
    fn default() -> HarnessOptions {
        HarnessOptions { seed: 1, iters: 500 }
    }
}

/// Deterministic harness result: everything in sorted maps so the JSON
/// rendering is byte-identical for a given seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Summary {
    /// The seed the trials used.
    pub seed: u64,
    /// Trials executed.
    pub iters: u64,
    /// Trials that panicked (the hard invariant: must be 0).
    pub panics: u64,
    /// `item/mutation/outcome` -> count.
    pub outcomes: BTreeMap<String, u64>,
}

impl Summary {
    /// Renders the summary as deterministic JSON (sorted keys, no
    /// timestamps, no floats).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"iters\": {},\n", self.iters));
        out.push_str(&format!("  \"panics\": {},\n", self.panics));
        out.push_str("  \"outcomes\": {\n");
        let n = self.outcomes.len();
        for (i, (k, v)) in self.outcomes.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            out.push_str(&format!("    \"{k}\": {v}{comma}\n"));
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// Stable outcome label for a `FormatError` (variant name only — payload
/// values are already captured by determinism of the whole summary).
fn format_err_label(e: &janitizer_obj::FormatError) -> &'static str {
    use janitizer_obj::FormatError as F;
    match e {
        F::BadMagic { .. } => "err:bad-magic",
        F::BadVersion(_) => "err:bad-version",
        F::Truncated => "err:truncated",
        F::BadString => "err:bad-string",
        F::BadTag { .. } => "err:bad-tag",
        F::Invalid { .. } => "err:invalid",
    }
}

/// One decode-and-exercise trial over already-corrupted bytes. Returns
/// the outcome label. Must never panic — the caller's `catch_unwind`
/// converts any panic into a harness failure.
fn trial(kind: ItemKind, bytes: &[u8]) -> String {
    match kind {
        ItemKind::Object => match Object::from_bytes(bytes) {
            Err(e) => format_err_label(&e).into(),
            Ok(obj) => {
                let mut opts = LinkOptions::executable("fz");
                opts.entry = "_start".into();
                match link(&[obj], &opts) {
                    Ok(_) => "ok:linked".into(),
                    Err(_) => "err:link".into(),
                }
            }
        },
        ItemKind::Image { runnable } => match Image::from_bytes(bytes) {
            Err(e) => format_err_label(&e).into(),
            Ok(img) => {
                let _ = img.fingerprint();
                if !runnable || img.shared {
                    return "ok:decoded".into();
                }
                let name = img.name.clone();
                let mut store = ModuleStore::new();
                store.add(img);
                let opts = HybridOptions::with_fuel(2_000_000);
                match run_hybrid(&store, &name, MarkerPlugin, &opts) {
                    Ok(_) => "ok:ran".into(),
                    Err(_) => "err:run".into(),
                }
            }
        },
        ItemKind::Rules => {
            let decoded = RuleFile::from_bytes(bytes);
            // Regardless of whether the bytes decode, the full pipeline
            // must absorb them as an override: verification failure means
            // degradation, never an abort.
            let store = {
                let mut s = ModuleStore::new();
                s.add(tiny_exe());
                s
            };
            let opts = HybridOptions {
                rule_overrides: std::collections::HashMap::from([(
                    "tiny".to_string(),
                    bytes.to_vec(),
                )]),
                fuel: 2_000_000,
                ..HybridOptions::default()
            };
            let run = match run_hybrid(&store, "tiny", MarkerPlugin, &opts) {
                Ok(r) => r,
                Err(_) => return "err:run".into(),
            };
            match (decoded, run.degraded.first()) {
                (Err(e), Some(d)) => {
                    format!("{}+degraded:{}", format_err_label(&e), d.reason.as_str())
                }
                (Err(e), None) => format!("{}+no-degradation", format_err_label(&e)),
                (Ok(_), Some(d)) => format!("ok:decoded+degraded:{}", d.reason.as_str()),
                (Ok(_), None) => "ok:accepted".into(),
            }
        }
        ItemKind::StoreEntry => store_entry_trial(bytes),
        ItemKind::StoreJournal => store_journal_trial(bytes),
    }
}

/// Plants possibly-corrupt entry bytes at their content address in a
/// scratch store and loads them back. The invariant: a verified entry is
/// served byte-exactly; anything else is quarantined and reported as a
/// miss — *never* served corrupt, never a panic. `BAD:` labels mark
/// invariant violations (the regression tests assert their absence).
fn store_entry_trial(bytes: &[u8]) -> String {
    use janitizer_store::{RuleStore, StoreEntry};
    let dir = janitizer_store::scratch_dir("fz-entry");
    let key = store_key(&tiny_exe());
    let label = (|| {
        let store = match RuleStore::open(&dir) {
            Ok(s) => s,
            Err(_) => return "err:open".to_string(),
        };
        if std::fs::write(store.entries_dir().join(key.entry_name()), bytes).is_err() {
            return "err:plant".into();
        }
        let decoded = StoreEntry::from_bytes(bytes);
        match store.load(&key) {
            Ok(Some(served)) => match &decoded {
                Ok(e) if e.key == key && e.rule_bytes == served => "ok:served".into(),
                _ => "BAD:served-corrupt".into(),
            },
            Ok(None) => {
                if store.stats().corrupt == 0 {
                    // A miss without a quarantine means the planted file
                    // vanished some other way — still safe, but distinct.
                    return "miss:unquarantined".into();
                }
                match &decoded {
                    Err(e) => format!("{}+quarantined", format_err_label(e)),
                    Ok(_) => "key-mismatch+quarantined".into(),
                }
            }
            Err(_) => "err:io".into(),
        }
    })();
    let _ = std::fs::remove_dir_all(&dir);
    label
}

/// Plants possibly-corrupt journal bytes over a scratch store holding
/// one valid committed entry, then re-opens it. The invariant: recovery
/// always completes, the journal is cleared, and the valid entry
/// survives and is served byte-exactly.
fn store_journal_trial(bytes: &[u8]) -> String {
    use janitizer_store::{JournalRecord, RuleStore};
    let dir = janitizer_store::scratch_dir("fz-journal");
    let tiny = tiny_exe();
    let key = store_key(&tiny);
    let rule_bytes = analyze_statically(&tiny, &MarkerPlugin).to_bytes();
    let label = (|| {
        {
            let store = match RuleStore::open(&dir) {
                Ok(s) => s,
                Err(_) => return "err:open".to_string(),
            };
            if store.save(&key, &rule_bytes).is_err() {
                return "err:seed-save".into();
            }
        }
        if std::fs::write(dir.join("journal"), bytes).is_err() {
            return "err:plant".into();
        }
        let store = match RuleStore::open(&dir) {
            Ok(s) => s,
            Err(_) => return "BAD:reopen-failed".to_string(),
        };
        if store.journal_path().exists() {
            return "BAD:journal-left".into();
        }
        if store.stats().recovered == 0 {
            return "BAD:recovery-uncounted".into();
        }
        match store.load(&key) {
            Ok(Some(served)) if served == rule_bytes => match JournalRecord::from_bytes(bytes) {
                Ok(_) => "ok:journal+recovered".into(),
                Err(e) => format!("{}+scan-recovered", format_err_label(&e)),
            },
            _ => "BAD:lost-entry".into(),
        }
    })();
    let _ = std::fs::remove_dir_all(&dir);
    label
}

/// Runs `iters` seeded mutation trials over the corpus, asserting the
/// no-panic contract. Deterministic: same options, same [`Summary`].
pub fn run_harness(opts: &HarnessOptions) -> Summary {
    let corpus = build_corpus();
    run_harness_over(opts, &corpus)
}

/// [`run_harness`] over a caller-provided corpus (reusable across seeds).
pub fn run_harness_over(opts: &HarnessOptions, corpus: &[CorpusItem]) -> Summary {
    // Silence the default panic hook for the duration: a caught panic is
    // a *counted result* here, not something to spray on stderr.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut rng = SplitMix64::new(opts.seed);
    let mut outcomes: BTreeMap<String, u64> = BTreeMap::new();
    let mut panics = 0u64;
    for _ in 0..opts.iters {
        let item = &corpus[rng.below(corpus.len() as u64) as usize];
        let mut bytes = item.bytes.clone();
        let mutation = Mutator::new(rng.next_u64()).mutate(&mut bytes);
        let kind = item.kind;
        let label = match catch_unwind(AssertUnwindSafe(|| trial(kind, &bytes))) {
            Ok(l) => l,
            Err(_) => {
                panics += 1;
                "PANIC".to_string()
            }
        };
        *outcomes
            .entry(format!("{}/{}/{label}", item.name, mutation.name()))
            .or_insert(0) += 1;
    }

    std::panic::set_hook(prev_hook);
    Summary {
        seed: opts.seed,
        iters: opts.iters,
        panics,
        outcomes,
    }
}

/// Re-exported so the corpus generator and tests share one definition.
pub use janitizer_core::JanitizerError;

/// Convenience: the fault-injection config type eval forwards.
pub fn fault_injection(seed: u64, rate: f64) -> FaultInjection {
    FaultInjection { seed, rate }
}

/// The degradation reason labels, for documentation and summary readers.
pub fn degradation_labels() -> [&'static str; 6] {
    [
        DegradationReason::BadFormat.as_str(),
        DegradationReason::ChecksumMismatch.as_str(),
        DegradationReason::StaleVersion.as_str(),
        DegradationReason::FingerprintMismatch.as_str(),
        DegradationReason::LowConfidenceRegion.as_str(),
        DegradationReason::DisasmConflict.as_str(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_is_deterministic_and_panic_free() {
        let corpus = build_corpus();
        let opts = HarnessOptions { seed: 3, iters: 60 };
        let a = run_harness_over(&opts, &corpus);
        let b = run_harness_over(&opts, &corpus);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.panics, 0, "pipeline panicked:\n{}", a.to_json());
        assert_eq!(a.outcomes.values().sum::<u64>(), 60);
    }

    #[test]
    fn different_seeds_differ() {
        let corpus = build_corpus();
        let a = run_harness_over(&HarnessOptions { seed: 1, iters: 40 }, &corpus);
        let b = run_harness_over(&HarnessOptions { seed: 2, iters: 40 }, &corpus);
        assert_ne!(a.outcomes, b.outcomes);
    }

    #[test]
    fn summary_json_shape() {
        let s = Summary {
            seed: 9,
            iters: 2,
            panics: 0,
            outcomes: BTreeMap::from([("a/b/c".into(), 2)]),
        };
        let j = s.to_json();
        assert!(j.contains("\"seed\": 9"));
        assert!(j.contains("\"a/b/c\": 2"));
        assert!(j.ends_with("}\n"));
    }
}
