//! Regenerates the minimized corruption-regression corpus under
//! `crates/faultz/corpus/`. Each fixture is a small serialized artifact
//! with exactly one corruption, paired (in `tests/corpus.rs`) with the
//! exact typed error its decode must produce.
//!
//! Run from the workspace root after changing the serialization formats:
//!
//! ```text
//! cargo run -p janitizer-faultz --bin faultz-gen-corpus
//! ```

use janitizer_core::analyze_statically;
use janitizer_faultz::{hostile_mutate, hostile_tiny_exe, tiny_exe, HostileMutation, MarkerPlugin};
use janitizer_obj::{Image, Object, Reloc, RelocKind, Section, SectionKind, SymBind, SymKind, Symbol};
use std::path::Path;

fn write(dir: &Path, name: &str, bytes: &[u8]) {
    std::fs::write(dir.join(name), bytes).expect("write fixture");
    println!("wrote {name} ({} bytes)", bytes.len());
}

fn tiny_object_bytes() -> Vec<u8> {
    let mut obj = Object::new("fx.o");
    obj.sections.push(Section::new(SectionKind::Text, vec![0x6c]));
    obj.symbols.push(Symbol {
        name: "_start".into(),
        kind: SymKind::Func,
        bind: SymBind::Global,
        section: Some(SectionKind::Text),
        value: 0,
        size: 1,
    });
    obj.to_bytes()
}

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    std::fs::create_dir_all(&dir).expect("corpus dir");

    // ---- object fixtures -------------------------------------------------
    let obj_ok = tiny_object_bytes();

    let mut b = obj_ok.clone();
    b[0..4].copy_from_slice(b"XXXX");
    write(&dir, "obj_bad_magic.bin", &b);

    let mut b = obj_ok.clone();
    b[4..8].copy_from_slice(&99u32.to_le_bytes());
    write(&dir, "obj_bad_version.bin", &b);

    write(&dir, "obj_truncated.bin", &obj_ok[..10]);

    let mut obj = Object::new("fx.o");
    obj.sections.push(Section::new(SectionKind::Text, vec![0x6c]));
    obj.relocs.push(Reloc {
        section: SectionKind::Text,
        offset: janitizer_obj::MAX_IMAGE_SPAN + 1,
        kind: RelocKind::Abs64,
        symbol: "x".into(),
        addend: 0,
    });
    write(&dir, "obj_reloc_offset.bin", &obj.to_bytes());

    // ---- image fixtures --------------------------------------------------
    let img_ok = tiny_exe().to_bytes();

    let mut b = img_ok.clone();
    b[0..4].copy_from_slice(b"XXXX");
    write(&dir, "img_bad_magic.bin", &b);

    write(&dir, "img_truncated.bin", &img_ok[..10]);

    let mut img = Image::new("fx", false, false);
    let mut s = Section::new(SectionKind::Text, vec![0x6c]);
    s.addr = u64::MAX - 1; // span wraps / exceeds MAX_IMAGE_SPAN
    img.sections.push(s);
    write(&dir, "img_section_span.bin", &img.to_bytes());

    let mut img = Image::new("fx", false, false);
    let mut s = Section::new(SectionKind::Text, vec![0x6c]);
    s.mem_size = 0; // 1 data byte claims to fit in 0
    img.sections.push(s);
    write(&dir, "img_section_data.bin", &img.to_bytes());

    let mut img = Image::new("fx", false, false);
    img.sections.push(Section::new(SectionKind::Text, vec![0x6c]));
    img.symbols.push(Symbol {
        name: "ghost".into(),
        kind: SymKind::Object,
        bind: SymBind::Global,
        section: Some(SectionKind::Text),
        value: u64::MAX,
        size: 1,
    });
    write(&dir, "img_symbol_range.bin", &img.to_bytes());

    // ---- rule-file fixtures ----------------------------------------------
    let rules_ok = analyze_statically(&tiny_exe(), &MarkerPlugin).to_bytes();

    let mut b = rules_ok.clone();
    b[0..4].copy_from_slice(b"XXXX");
    write(&dir, "rules_bad_magic.bin", &b);

    let mut b = rules_ok.clone();
    b[4..8].copy_from_slice(&1u32.to_le_bytes());
    write(&dir, "rules_stale_v1.bin", &b);

    let mut b = rules_ok.clone();
    let at = b.len() - 3;
    b[at] ^= 0x40; // payload flip -> checksum mismatch
    write(&dir, "rules_checksum.bin", &b);

    write(&dir, "rules_truncated.bin", &rules_ok[..10]);

    // ---- rule-store fixtures ---------------------------------------------
    let tiny = tiny_exe();
    let rules = analyze_statically(&tiny, &MarkerPlugin);
    let entry_ok = janitizer_faultz::store_entry_bytes(&tiny, &rules);
    let journal_ok = janitizer_store::JournalRecord {
        entry_name: janitizer_faultz::store_key(&tiny).entry_name(),
    }
    .to_bytes();

    write(&dir, "store_torn_journal.bin", &journal_ok[..journal_ok.len() / 2]);

    write(&dir, "store_truncated_entry.bin", &entry_ok[..entry_ok.len() / 2]);

    let mut b = entry_ok.clone();
    let at = b.len() - 3;
    b[at] ^= 0x40; // flip inside the rule payload -> entry checksum mismatch
    write(&dir, "store_checksum_flip.bin", &b);

    // ---- hostile-module fixtures -----------------------------------------
    // Valid images with targeted hostility: these decode fine and are
    // paired (in tests/corpus.rs) with the exact run outcome or
    // degradation they must produce.
    let hostile = hostile_tiny_exe();
    write(&dir, "hostile_tiny.bin", &hostile.to_bytes());
    for kind in HostileMutation::all() {
        let name = format!("hostile_{}.bin", kind.name().replace('-', "_"));
        write(&dir, &name, &hostile_mutate(kind, &hostile).to_bytes());
    }
}
