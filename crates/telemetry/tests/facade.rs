//! Integration tests for the global telemetry facade. Every test mutates
//! the process-wide collector, so they serialize on one mutex.

use janitizer_telemetry as telemetry;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn span_nesting_builds_paths() {
    let _g = serial();
    telemetry::set_enabled(true);
    telemetry::reset();
    {
        let outer = telemetry::span!("run");
        outer.add_cycles(10);
        {
            let inner = telemetry::span!("translate");
            inner.add_cycles(5);
        }
        {
            let inner = telemetry::span!("translate");
            inner.add_cycles(7);
        }
    }
    telemetry::set_enabled(false);
    let reg = telemetry::snapshot();
    assert_eq!(reg.spans["run"].calls, 1);
    assert_eq!(reg.spans["run"].cycles, 10, "cycles are exclusive per path");
    assert_eq!(reg.spans["run;translate"].calls, 2);
    assert_eq!(reg.spans["run;translate"].cycles, 12);
    assert!(reg.spans["run"].wall_ns >= reg.spans["run;translate"].wall_ns);
}

#[test]
fn disabled_telemetry_collects_nothing() {
    let _g = serial();
    telemetry::set_enabled(true);
    telemetry::reset();
    telemetry::set_enabled(false);
    {
        let s = telemetry::span!("ghost");
        s.add_cycles(99);
        telemetry::counter_add("ghost.counter", 1);
        telemetry::histogram_record("ghost.hist", 1);
        telemetry::event!("ghost.event", pc = 0u64);
        telemetry::cycles("ghost;path", 5);
    }
    let reg = telemetry::snapshot();
    assert!(reg.spans.is_empty());
    assert!(reg.counters.is_empty());
    assert!(reg.histograms.is_empty());
    assert!(reg.events.is_empty());
}

#[test]
fn counters_histograms_events_roundtrip() {
    let _g = serial();
    telemetry::set_enabled(true);
    telemetry::reset();
    telemetry::counter_add("jasan.checks_emitted", 3);
    telemetry::counter_add("jasan.checks_emitted", 2);
    telemetry::histogram_record("dbt.block_insns", 17);
    telemetry::event!("vm.syscall", no = 4u64, name = "write");
    telemetry::cycles("run;dbt;dispatch", 42);
    telemetry::set_enabled(false);
    let reg = telemetry::snapshot();
    assert_eq!(reg.counter("jasan.checks_emitted"), 5);
    assert_eq!(reg.histograms["dbt.block_insns"].count, 1);
    assert_eq!(reg.events.len(), 1);
    assert_eq!(reg.events[0].name, "vm.syscall");
    assert_eq!(reg.event_counts["vm.syscall"], 1);
    assert_eq!(reg.spans["run;dbt;dispatch"].cycles, 42);
    assert_eq!(reg.spans["run;dbt;dispatch"].calls, 0);
}

#[test]
fn custom_collector_is_pluggable() {
    let _g = serial();

    #[derive(Default)]
    struct CountingSink {
        calls: u64,
    }
    impl telemetry::Collector for CountingSink {
        fn span_complete(&mut self, _p: &str, _w: u64, _c: u64) {
            self.calls += 1;
        }
        fn cycles(&mut self, _p: &str, _c: u64) {
            self.calls += 1;
        }
        fn counter_add(&mut self, _n: &str, _d: u64) {
            self.calls += 1;
        }
        fn histogram_record(&mut self, _n: &str, _v: u64) {
            self.calls += 1;
        }
        fn event(&mut self, _n: &str, _f: Vec<(String, telemetry::Value)>) {
            self.calls += 1;
        }
        fn snapshot(&self) -> telemetry::Registry {
            let mut r = telemetry::Registry::new();
            r.counter_add("sink.calls", self.calls);
            r
        }
    }

    telemetry::install(Box::<CountingSink>::default());
    telemetry::set_enabled(true);
    telemetry::counter_add("x", 1);
    telemetry::cycles("y", 2);
    let _ = telemetry::span!("z");
    telemetry::set_enabled(false);
    let reg = telemetry::snapshot();
    // Restore the default collector for other tests.
    telemetry::install(Box::<telemetry::InMemoryCollector>::default());
    assert_eq!(reg.counter("sink.calls"), 3);
}
