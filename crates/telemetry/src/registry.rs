//! The in-memory metrics store: named counters, power-of-two histograms,
//! aggregated span statistics and a bounded event log.

use std::collections::BTreeMap;

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i >= 1`
/// holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Maximum number of events retained verbatim; later events are counted
/// (per name) but their payloads dropped.
pub const EVENT_CAP: usize = 65_536;

/// A dynamically typed event-field value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// A power-of-two-bucketed histogram over `u64` samples (cycles, bytes).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// `buckets[0]` counts zeros; `buckets[i]` counts `[2^(i-1), 2^i)`.
    pub buckets: Vec<u64>,
}

impl Histogram {
    /// Index of the bucket `value` falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            value.ilog2() as usize + 1
        }
    }

    /// Lower bound (inclusive) of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; HISTOGRAM_BUCKETS];
        }
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Aggregated statistics for one span path (`"a;b;c"`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed guard-scoped entries.
    pub calls: u64,
    /// Total wall time spent inside the span (inclusive of children).
    pub wall_ns: u64,
    /// Cycles attributed to exactly this path (exclusive — direct
    /// attributions only, so the folded-stack export needs no
    /// subtraction).
    pub cycles: u64,
}

impl SpanStat {
    /// Wall time in milliseconds — the host-time view of [`SpanStat::wall_ns`],
    /// surfaced in span summaries next to the deterministic cycle counts.
    pub fn wall_ms(&self) -> f64 {
        self.wall_ns as f64 / 1e6
    }
}

/// One retained event.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecord {
    /// Global sequence number (0-based).
    pub seq: u64,
    /// Event name.
    pub name: String,
    /// Event payload.
    pub fields: Vec<(String, Value)>,
}

/// The aggregated telemetry of one run. All maps are ordered so exports
/// are deterministic.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    /// Monotonic named counters.
    pub counters: BTreeMap<String, u64>,
    /// Named histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Per-path span statistics.
    pub spans: BTreeMap<String, SpanStat>,
    /// Retained events, in emission order (capped at [`EVENT_CAP`]).
    pub events: Vec<EventRecord>,
    /// Total emissions per event name (counted past the cap).
    pub event_counts: BTreeMap<String, u64>,
    /// Events whose payloads were dropped by the cap.
    pub events_dropped: u64,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `delta` to counter `name`.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Reads a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records `value` into histogram `name`.
    pub fn histogram_record(&mut self, name: &str, value: u64) {
        self.histograms.entry(name.to_string()).or_default().record(value);
    }

    /// Marks one completed entry of span `path`, adding wall time.
    pub fn span_complete(&mut self, path: &str, wall_ns: u64, cycles: u64) {
        let s = self.spans.entry(path.to_string()).or_default();
        s.calls += 1;
        s.wall_ns += wall_ns;
        s.cycles += cycles;
    }

    /// Attributes `cycles` to span `path` without counting a call.
    pub fn attribute_cycles(&mut self, path: &str, cycles: u64) {
        self.spans.entry(path.to_string()).or_default().cycles += cycles;
    }

    /// Appends an event.
    pub fn event(&mut self, name: &str, fields: Vec<(String, Value)>) {
        *self.event_counts.entry(name.to_string()).or_insert(0) += 1;
        if self.events.len() < EVENT_CAP {
            let seq = self.events.len() as u64 + self.events_dropped;
            self.events.push(EventRecord {
                seq,
                name: name.to_string(),
                fields,
            });
        } else {
            self.events_dropped += 1;
        }
    }

    /// Sum of cycles attributed across all span paths.
    pub fn total_span_cycles(&self) -> u64 {
        self.spans.values().map(|s| s.cycles).sum()
    }

    /// Merges another registry into this one (used to fold per-run
    /// registries into a session-level profile).
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            let mine = self.histograms.entry(k.clone()).or_default();
            if mine.buckets.is_empty() {
                mine.buckets = vec![0; HISTOGRAM_BUCKETS];
            }
            if mine.count == 0 {
                mine.min = h.min;
                mine.max = h.max;
            } else if h.count > 0 {
                mine.min = mine.min.min(h.min);
                mine.max = mine.max.max(h.max);
            }
            mine.count += h.count;
            mine.sum = mine.sum.saturating_add(h.sum);
            for (i, b) in h.buckets.iter().enumerate() {
                mine.buckets[i] += b;
            }
        }
        for (k, s) in &other.spans {
            let mine = self.spans.entry(k.clone()).or_default();
            mine.calls += s.calls;
            mine.wall_ns += s.wall_ns;
            mine.cycles += s.cycles;
        }
        for e in &other.events {
            self.event(&e.name, e.fields.clone());
        }
        for (k, n) in &other.event_counts {
            // `event` above already counted retained events; add only the
            // remainder dropped on the other side.
            let retained = other.events.iter().filter(|e| &e.name == k).count() as u64;
            *self.event_counts.entry(k.clone()).or_insert(0) += n - retained;
        }
        self.events_dropped += other.events_dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket 0 is exactly {0}; bucket i covers [2^(i-1), 2^i).
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 1..HISTOGRAM_BUCKETS {
            // The lower boundary of bucket i maps into bucket i, and the
            // value just below maps into bucket i-1.
            let lo = Histogram::bucket_lo(i);
            assert_eq!(Histogram::bucket_index(lo), i);
            assert_eq!(Histogram::bucket_index(lo - 1), i - 1);
        }
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::default();
        for v in [0, 1, 1, 7, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1033);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[11], 1);
        assert!((h.mean() - 206.6).abs() < 1e-9);
    }

    #[test]
    fn merge_folds_everything() {
        let mut a = Registry::new();
        a.counter_add("c", 1);
        a.histogram_record("h", 8);
        a.span_complete("x;y", 10, 100);
        a.event("e", vec![("k".into(), Value::U64(1))]);

        let mut b = Registry::new();
        b.counter_add("c", 2);
        b.histogram_record("h", 16);
        b.span_complete("x;y", 5, 50);
        b.attribute_cycles("x;z", 7);
        b.event("e", vec![("k".into(), Value::U64(2))]);

        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.histograms["h"].count, 2);
        assert_eq!(a.spans["x;y"].calls, 2);
        assert_eq!(a.spans["x;y"].cycles, 150);
        assert_eq!(a.spans["x;z"].cycles, 7);
        assert_eq!(a.events.len(), 2);
        assert_eq!(a.event_counts["e"], 2);
    }
}
