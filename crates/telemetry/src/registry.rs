//! The in-memory metrics store: named counters, gauges, power-of-two
//! histograms, aggregated span statistics and a bounded event log.

use std::collections::BTreeMap;

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i >= 1`
/// holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Maximum number of events retained verbatim; later events are counted
/// (per name) but their payloads dropped.
pub const EVENT_CAP: usize = 65_536;

/// A dynamically typed event-field value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// A point-in-time instrument: a signed value with its extremes. Gauges
/// track levels (queue depth, in-flight requests) rather than rates, so
/// they support both absolute sets and relative adjustments, and they
/// remember the high/low-water marks the level ever reached.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Gauge {
    /// Current level.
    pub value: i64,
    /// Highest level ever observed.
    pub max: i64,
    /// Lowest level ever observed.
    pub min: i64,
    /// Number of updates applied.
    pub updates: u64,
}

impl Gauge {
    fn observe(&mut self, value: i64) {
        if self.updates == 0 {
            self.max = value;
            self.min = value;
        } else {
            self.max = self.max.max(value);
            self.min = self.min.min(value);
        }
        self.value = value;
        self.updates += 1;
    }

    /// Merges another gauge: levels cannot be summed across runs, so the
    /// merge keeps the component-wise extremes (commutative and
    /// associative, like every other merge in the registry).
    pub fn merge(&mut self, other: &Gauge) {
        if other.updates == 0 {
            return;
        }
        if self.updates == 0 {
            *self = *other;
            return;
        }
        self.value = self.value.max(other.value);
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
        self.updates += other.updates;
    }
}

/// A power-of-two-bucketed histogram over `u64` samples (cycles, bytes).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// `buckets[0]` counts zeros; `buckets[i]` counts `[2^(i-1), 2^i)`.
    pub buckets: Vec<u64>,
}

impl Histogram {
    /// Index of the bucket `value` falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            value.ilog2() as usize + 1
        }
    }

    /// Lower bound (inclusive) of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; HISTOGRAM_BUCKETS];
        }
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A histogram with a bounded window of recent samples next to the
/// cumulative totals. The cumulative half is an ordinary [`Histogram`];
/// the window half keeps the last `cap` raw samples in a ring so recent
/// latency quantiles stay answerable without unbounded memory. The
/// window is host-side state (truncation depends on arrival order), so
/// windowed histograms live outside the mergeable [`Registry`] maps and
/// are never part of deterministic artifacts.
#[derive(Clone, Debug)]
pub struct WindowedHistogram {
    cap: usize,
    ring: Vec<u64>,
    next: usize,
    len: usize,
    /// Cumulative (all-time) histogram over every sample recorded.
    pub total: Histogram,
}

impl WindowedHistogram {
    /// Creates a windowed histogram retaining at most `cap` recent
    /// samples (`cap` is clamped to at least 1).
    pub fn new(cap: usize) -> WindowedHistogram {
        let cap = cap.max(1);
        WindowedHistogram {
            cap,
            ring: vec![0; cap],
            next: 0,
            len: 0,
            total: Histogram::default(),
        }
    }

    /// Records one sample into both the window and the cumulative total.
    pub fn record(&mut self, value: u64) {
        self.total.record(value);
        self.ring[self.next] = value;
        self.next = (self.next + 1) % self.cap;
        self.len = (self.len + 1).min(self.cap);
    }

    /// Number of samples currently in the window.
    pub fn window_len(&self) -> usize {
        self.len
    }

    /// Builds a [`Histogram`] over just the windowed samples.
    pub fn window(&self) -> Histogram {
        let mut h = Histogram::default();
        for i in 0..self.len {
            h.record(self.ring[i]);
        }
        h
    }

    /// The `q`-quantile (`0.0..=1.0`) over the windowed samples, or
    /// `None` when the window is empty. Nearest-rank on the sorted
    /// window.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let mut sorted: Vec<u64> = self.ring[..self.len].to_vec();
        sorted.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
        Some(sorted[idx])
    }
}

/// Aggregated statistics for one span path (`"a;b;c"`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed guard-scoped entries.
    pub calls: u64,
    /// Total wall time spent inside the span (inclusive of children).
    pub wall_ns: u64,
    /// Cycles attributed to exactly this path (exclusive — direct
    /// attributions only, so the folded-stack export needs no
    /// subtraction).
    pub cycles: u64,
}

impl SpanStat {
    /// Wall time in milliseconds — the host-time view of [`SpanStat::wall_ns`],
    /// surfaced in span summaries next to the deterministic cycle counts.
    pub fn wall_ms(&self) -> f64 {
        self.wall_ns as f64 / 1e6
    }
}

/// One retained event.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecord {
    /// Global sequence number (0-based).
    pub seq: u64,
    /// Event name.
    pub name: String,
    /// Event payload.
    pub fields: Vec<(String, Value)>,
}

/// The aggregated telemetry of one run. All maps are ordered so exports
/// are deterministic.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    /// Monotonic named counters.
    pub counters: BTreeMap<String, u64>,
    /// Named level gauges (merged by extremes, not sums).
    pub gauges: BTreeMap<String, Gauge>,
    /// Named histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Per-path span statistics.
    pub spans: BTreeMap<String, SpanStat>,
    /// Retained events, in emission order (capped at [`EVENT_CAP`]).
    pub events: Vec<EventRecord>,
    /// Total emissions per event name (counted past the cap).
    pub event_counts: BTreeMap<String, u64>,
    /// Events whose payloads were dropped by the cap.
    pub events_dropped: u64,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `delta` to counter `name`.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Reads a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to an absolute level.
    pub fn gauge_set(&mut self, name: &str, value: i64) {
        self.gauges.entry(name.to_string()).or_default().observe(value);
    }

    /// Adjusts gauge `name` by `delta` relative to its current level.
    pub fn gauge_add(&mut self, name: &str, delta: i64) {
        let g = self.gauges.entry(name.to_string()).or_default();
        let next = g.value.saturating_add(delta);
        g.observe(next);
    }

    /// Reads a gauge's current level (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).map(|g| g.value).unwrap_or(0)
    }

    /// Records `value` into histogram `name`.
    pub fn histogram_record(&mut self, name: &str, value: u64) {
        self.histograms.entry(name.to_string()).or_default().record(value);
    }

    /// Marks one completed entry of span `path`, adding wall time.
    pub fn span_complete(&mut self, path: &str, wall_ns: u64, cycles: u64) {
        let s = self.spans.entry(path.to_string()).or_default();
        s.calls += 1;
        s.wall_ns += wall_ns;
        s.cycles += cycles;
    }

    /// Attributes `cycles` to span `path` without counting a call.
    pub fn attribute_cycles(&mut self, path: &str, cycles: u64) {
        self.spans.entry(path.to_string()).or_default().cycles += cycles;
    }

    /// Appends an event.
    pub fn event(&mut self, name: &str, fields: Vec<(String, Value)>) {
        *self.event_counts.entry(name.to_string()).or_insert(0) += 1;
        if self.events.len() < EVENT_CAP {
            let seq = self.events.len() as u64 + self.events_dropped;
            self.events.push(EventRecord {
                seq,
                name: name.to_string(),
                fields,
            });
        } else {
            self.events_dropped += 1;
        }
    }

    /// Sum of cycles attributed across all span paths.
    pub fn total_span_cycles(&self) -> u64 {
        self.spans.values().map(|s| s.cycles).sum()
    }

    /// Merges another registry into this one (used to fold per-run
    /// registries into a session-level profile).
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, g) in &other.gauges {
            self.gauges.entry(k.clone()).or_default().merge(g);
        }
        for (k, h) in &other.histograms {
            let mine = self.histograms.entry(k.clone()).or_default();
            if mine.buckets.is_empty() {
                mine.buckets = vec![0; HISTOGRAM_BUCKETS];
            }
            if mine.count == 0 {
                mine.min = h.min;
                mine.max = h.max;
            } else if h.count > 0 {
                mine.min = mine.min.min(h.min);
                mine.max = mine.max.max(h.max);
            }
            mine.count += h.count;
            mine.sum = mine.sum.saturating_add(h.sum);
            for (i, b) in h.buckets.iter().enumerate() {
                mine.buckets[i] += b;
            }
        }
        for (k, s) in &other.spans {
            let mine = self.spans.entry(k.clone()).or_default();
            mine.calls += s.calls;
            mine.wall_ns += s.wall_ns;
            mine.cycles += s.cycles;
        }
        for e in &other.events {
            self.event(&e.name, e.fields.clone());
        }
        for (k, n) in &other.event_counts {
            // `event` above already counted retained events; add only the
            // remainder dropped on the other side.
            let retained = other.events.iter().filter(|e| &e.name == k).count() as u64;
            *self.event_counts.entry(k.clone()).or_insert(0) += n - retained;
        }
        self.events_dropped += other.events_dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket 0 is exactly {0}; bucket i covers [2^(i-1), 2^i).
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 1..HISTOGRAM_BUCKETS {
            // The lower boundary of bucket i maps into bucket i, and the
            // value just below maps into bucket i-1.
            let lo = Histogram::bucket_lo(i);
            assert_eq!(Histogram::bucket_index(lo), i);
            assert_eq!(Histogram::bucket_index(lo - 1), i - 1);
        }
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::default();
        for v in [0, 1, 1, 7, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1033);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[11], 1);
        assert!((h.mean() - 206.6).abs() < 1e-9);
    }

    #[test]
    fn histogram_edge_values() {
        // 0, 1 and u64::MAX land in the first, second and last bucket,
        // and the stats survive the saturating extremes.
        let mut h = Histogram::default();
        h.record(0);
        assert_eq!((h.count, h.min, h.max, h.sum), (1, 0, 0, 0));
        assert_eq!(h.buckets[0], 1);
        h.record(1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!((h.min, h.max), (0, 1));
        h.record(u64::MAX);
        assert_eq!(h.buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(h.max, u64::MAX);
        // sum saturates rather than wrapping.
        assert_eq!(h.sum, u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum, u64::MAX);
        assert_eq!(h.count, 4);

        // Exact powers of two sit on bucket lower boundaries.
        let mut p = Histogram::default();
        for i in 1..HISTOGRAM_BUCKETS {
            p.record(Histogram::bucket_lo(i));
        }
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(p.buckets[i], 1, "bucket {i}");
        }
        assert_eq!(p.buckets[0], 0);
    }

    #[test]
    fn gauge_levels_and_extremes() {
        let mut r = Registry::new();
        r.gauge_add("q", 3);
        r.gauge_add("q", 2);
        r.gauge_add("q", -4);
        assert_eq!(r.gauge("q"), 1);
        assert_eq!(r.gauges["q"].max, 5);
        assert_eq!(r.gauges["q"].min, 1);
        r.gauge_set("q", -7);
        assert_eq!(r.gauge("q"), -7);
        assert_eq!(r.gauges["q"].min, -7);
        assert_eq!(r.gauges["q"].max, 5);
        assert_eq!(r.gauges["q"].updates, 4);
        assert_eq!(r.gauge("absent"), 0);
    }

    #[test]
    fn windowed_histogram_ring() {
        let mut w = WindowedHistogram::new(4);
        assert_eq!(w.quantile(0.5), None);
        for v in [10, 20, 30, 40, 50, 60] {
            w.record(v);
        }
        // Total sees all six samples; the window only the last four.
        assert_eq!(w.total.count, 6);
        assert_eq!(w.window_len(), 4);
        let win = w.window();
        assert_eq!(win.count, 4);
        assert_eq!((win.min, win.max), (30, 60));
        assert_eq!(w.quantile(0.0), Some(30));
        assert_eq!(w.quantile(1.0), Some(60));
        assert_eq!(w.quantile(0.5), Some(50));
    }

    /// The `--threads` fan-out relies on merge being commutative so the
    /// fold order never shows in exported bytes.
    #[test]
    fn merge_is_commutative_with_identity() {
        let mk = |seed: u64| {
            let mut r = Registry::new();
            r.counter_add("c", seed);
            r.counter_add(&format!("only{seed}"), 1);
            r.histogram_record("h", seed);
            r.histogram_record("h", seed * 1000 + 1);
            r.gauge_set("g", seed as i64 * 3);
            r.gauge_add("g", -(seed as i64));
            r.span_complete("x;y", seed, seed * 10);
            r
        };
        let (a, b) = (mk(2), mk(5));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.counters, ba.counters);
        assert_eq!(ab.gauges, ba.gauges);
        assert_eq!(ab.histograms, ba.histograms);
        assert_eq!(ab.spans, ba.spans);

        // Merging the empty registry is the identity, in both directions.
        let mut id = a.clone();
        id.merge(&Registry::new());
        assert_eq!(id.counters, a.counters);
        assert_eq!(id.gauges, a.gauges);
        assert_eq!(id.histograms, a.histograms);
        let mut id2 = Registry::new();
        id2.merge(&a);
        assert_eq!(id2.counters, a.counters);
        assert_eq!(id2.gauges, a.gauges);
        assert_eq!(id2.histograms, a.histograms);
    }

    #[test]
    fn merge_folds_everything() {
        let mut a = Registry::new();
        a.counter_add("c", 1);
        a.histogram_record("h", 8);
        a.span_complete("x;y", 10, 100);
        a.event("e", vec![("k".into(), Value::U64(1))]);

        let mut b = Registry::new();
        b.counter_add("c", 2);
        b.histogram_record("h", 16);
        b.span_complete("x;y", 5, 50);
        b.attribute_cycles("x;z", 7);
        b.event("e", vec![("k".into(), Value::U64(2))]);

        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.histograms["h"].count, 2);
        assert_eq!(a.spans["x;y"].calls, 2);
        assert_eq!(a.spans["x;y"].cycles, 150);
        assert_eq!(a.spans["x;z"].cycles, 7);
        assert_eq!(a.events.len(), 2);
        assert_eq!(a.event_counts["e"], 2);
    }
}
