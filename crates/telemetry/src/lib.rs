//! # Janitizer telemetry
//!
//! Structured tracing and metrics for the whole stack: a
//! zero-cost-when-disabled span/event API over a pluggable [`Collector`],
//! a metrics registry with named counters, gauges and power-of-two
//! cycle/byte histograms, an always-on bounded [`flight`] recorder for
//! black-box dumps, and exporters for JSON profiles, OpenMetrics text,
//! folded-stack ("flamegraph") text and per-phase summary tables.
//!
//! Telemetry is **disabled by default**: every entry point first checks
//! one relaxed atomic and bails, so instrumented hot paths pay a single
//! predictable branch. Because the Janitizer cost model is deterministic
//! (cycles, not wall time), enabling collection never changes a result —
//! collection only *observes* counters the pipeline already computes.
//!
//! ```
//! janitizer_telemetry::set_enabled(true);
//! janitizer_telemetry::reset();
//! {
//!     let span = janitizer_telemetry::span!("static;liveness");
//!     span.add_cycles(128);
//!     janitizer_telemetry::counter_add("analysis.fixpoint_rounds", 3);
//! }
//! let profile = janitizer_telemetry::snapshot();
//! assert_eq!(profile.spans["static;liveness"].cycles, 128);
//! janitizer_telemetry::set_enabled(false);
//! ```

pub mod export;
pub mod flight;
pub mod json;
pub mod registry;

pub use registry::{EventRecord, Gauge, Histogram, Registry, SpanStat, Value, WindowedHistogram};

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A telemetry sink. The default collector aggregates into an in-memory
/// [`Registry`]; embedders can [`install`] their own (e.g. a streaming
/// writer) without touching instrumented code.
pub trait Collector: Send {
    /// A span at `path` (`;`-joined names, innermost last) completed.
    fn span_complete(&mut self, path: &str, wall_ns: u64, cycles: u64);
    /// `cycles` were attributed directly to `path` (no call recorded).
    fn cycles(&mut self, path: &str, cycles: u64);
    /// Counter `name` increased by `delta`.
    fn counter_add(&mut self, name: &str, delta: u64);
    /// Gauge `name` was set to an absolute level. Default no-op keeps
    /// pre-gauge collectors source-compatible.
    fn gauge_set(&mut self, _name: &str, _value: i64) {}
    /// Gauge `name` moved by `delta` relative to its current level.
    fn gauge_add(&mut self, _name: &str, _delta: i64) {}
    /// `value` was recorded into histogram `name`.
    fn histogram_record(&mut self, name: &str, value: u64);
    /// A structured event was emitted.
    fn event(&mut self, name: &str, fields: Vec<(String, Value)>);
    /// Current aggregated state (empty for streaming collectors).
    fn snapshot(&self) -> Registry {
        Registry::new()
    }
    /// Clears accumulated state.
    fn reset(&mut self) {}
}

/// The default collector: aggregates everything into a [`Registry`].
#[derive(Debug, Default)]
pub struct InMemoryCollector {
    registry: Registry,
}

impl Collector for InMemoryCollector {
    fn span_complete(&mut self, path: &str, wall_ns: u64, cycles: u64) {
        self.registry.span_complete(path, wall_ns, cycles);
    }
    fn cycles(&mut self, path: &str, cycles: u64) {
        self.registry.attribute_cycles(path, cycles);
    }
    fn counter_add(&mut self, name: &str, delta: u64) {
        self.registry.counter_add(name, delta);
    }
    fn gauge_set(&mut self, name: &str, value: i64) {
        self.registry.gauge_set(name, value);
    }
    fn gauge_add(&mut self, name: &str, delta: i64) {
        self.registry.gauge_add(name, delta);
    }
    fn histogram_record(&mut self, name: &str, value: u64) {
        self.registry.histogram_record(name, value);
    }
    fn event(&mut self, name: &str, fields: Vec<(String, Value)>) {
        self.registry.event(name, fields);
    }
    fn snapshot(&self) -> Registry {
        self.registry.clone()
    }
    fn reset(&mut self) {
        self.registry = Registry::new();
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: Mutex<Option<Box<dyn Collector>>> = Mutex::new(None);

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

fn with_collector<R>(f: impl FnOnce(&mut dyn Collector) -> R) -> R {
    let mut guard = COLLECTOR.lock().unwrap_or_else(|e| e.into_inner());
    let collector = guard.get_or_insert_with(|| Box::<InMemoryCollector>::default());
    f(collector.as_mut())
}

/// Whether telemetry collection is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on or off (off is the default).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Replaces the active collector.
pub fn install(collector: Box<dyn Collector>) {
    *COLLECTOR.lock().unwrap_or_else(|e| e.into_inner()) = Some(collector);
}

/// Clears the active collector's accumulated state.
pub fn reset() {
    with_collector(|c| c.reset());
}

/// Returns the active collector's aggregated state.
pub fn snapshot() -> Registry {
    with_collector(|c| c.snapshot())
}

/// An RAII scope timer. Created by [`span()`]/[`span!`]; on drop it
/// reports its wall time and explicitly attributed cycles under the
/// nesting path of all open spans on this thread.
pub struct Span {
    start: Option<Instant>,
    cycles: Cell<u64>,
}

impl Span {
    /// Attributes `n` deterministic model cycles to this span.
    pub fn add_cycles(&self, n: u64) {
        if self.start.is_some() {
            self.cycles.set(self.cycles.get() + n);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let wall_ns = start.elapsed().as_nanos() as u64;
        let path = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let path = s.join(";");
            s.pop();
            path
        });
        with_collector(|c| c.span_complete(&path, wall_ns, self.cycles.get()));
    }
}

/// Opens a span named `name`, nested under the spans already open on this
/// thread. Returns an inert guard when telemetry is disabled.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span {
            start: None,
            cycles: Cell::new(0),
        };
    }
    SPAN_STACK.with(|s| s.borrow_mut().push(name));
    Span {
        start: Some(Instant::now()),
        cycles: Cell::new(0),
    }
}

/// Attributes `n` cycles directly to the absolute span path `path`
/// (`;`-joined). Used by engines that account cycles in bulk at the end
/// of a run instead of opening a span per basic block.
pub fn cycles(path: &str, n: u64) {
    if enabled() && n > 0 {
        with_collector(|c| c.cycles(path, n));
    }
}

/// Adds `delta` to counter `name`.
pub fn counter_add(name: &str, delta: u64) {
    if enabled() && delta > 0 {
        with_collector(|c| c.counter_add(name, delta));
    }
}

/// Sets gauge `name` to an absolute level.
pub fn gauge_set(name: &str, value: i64) {
    if enabled() {
        with_collector(|c| c.gauge_set(name, value));
    }
}

/// Moves gauge `name` by `delta`.
pub fn gauge_add(name: &str, delta: i64) {
    if enabled() && delta != 0 {
        with_collector(|c| c.gauge_add(name, delta));
    }
}

/// Records `value` into histogram `name`.
pub fn histogram_record(name: &str, value: u64) {
    if enabled() {
        with_collector(|c| c.histogram_record(name, value));
    }
}

/// Emits a structured event. Prefer the [`event!`] macro, which skips
/// building the field vector when telemetry is off.
pub fn event(name: &str, fields: Vec<(String, Value)>) {
    if enabled() {
        with_collector(|c| c.event(name, fields));
    }
}

/// Opens a span: `let _s = span!("phase");` — see [`span()`].
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Emits a structured event with named fields:
/// `event!("vm.syscall", no = 3u64, pc = pc);`
/// Fields are only evaluated when telemetry is enabled.
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        if $crate::enabled() {
            $crate::event($name, ::std::vec::Vec::new());
        }
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::event(
                $name,
                vec![$((stringify!($key).to_string(), $crate::Value::from($val))),+],
            );
        }
    };
}
