//! A small JSON document builder and parser (the workspace has no
//! serde): exact integers, lossless escaping, stable field order,
//! pretty printing, and a recursive-descent reader for loading
//! artifacts back.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// An unsigned integer (rendered exactly).
    U64(u64),
    /// A signed integer (rendered exactly).
    I64(i64),
    /// A float (rendered via Rust's shortest round-trip formatting).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for an object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Renders compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Keep integral floats readable and JSON-valid.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{:.1}", v);
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl Json {
    /// Parses a JSON document. Integers that fit `u64`/`i64` parse
    /// exactly; everything else numeric becomes `F64`. Trailing
    /// whitespace is allowed, trailing garbage is an error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (accepts exact unsigned integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(v) => Some(*v),
            Json::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object fields.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("truncated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

impl From<Option<f64>> for Json {
    fn from(v: Option<f64>) -> Json {
        match v {
            Some(x) => Json::F64(x),
            None => Json::Null,
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_escaping() {
        assert_eq!(Json::U64(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::I64(-3).render(), "-3");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(2.0).render(), "2.0");
        assert_eq!(Json::str("a\"b\n\u{1}").render(), "\"a\\\"b\\n\\u0001\"");
        assert_eq!(Json::Null.render(), "null");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let doc = Json::obj([
            ("name", Json::str("x \"quoted\"\n")),
            ("big", Json::U64(u64::MAX)),
            ("neg", Json::I64(-42)),
            ("pi", Json::F64(3.25)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("vals", Json::Arr(vec![Json::U64(1), Json::str("two")])),
            ("nested", Json::obj([("k", Json::Arr(vec![]))])),
        ]);
        for rendered in [doc.render(), doc.render_pretty()] {
            assert_eq!(Json::parse(&rendered).unwrap(), doc);
        }
    }

    #[test]
    fn parse_accessors_and_errors() {
        let v = Json::parse(r#"{"a": {"b": [10, -2, 1.5, "s"]}}"#).unwrap();
        let arr = v.get("a").and_then(|a| a.get("b")).and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(10));
        assert_eq!(arr[1].as_i64(), Some(-2));
        assert_eq!(arr[2].as_f64(), Some(1.5));
        assert_eq!(arr[3].as_str(), Some("s"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(arr[3].as_u64(), None);

        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert_eq!(Json::parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn nested_pretty() {
        let doc = Json::obj([
            ("name", Json::str("x")),
            ("vals", Json::Arr(vec![Json::U64(1), Json::Null])),
        ]);
        assert_eq!(doc.render(), r#"{"name":"x","vals":[1,null]}"#);
        assert_eq!(
            doc.render_pretty(),
            "{\n  \"name\": \"x\",\n  \"vals\": [\n    1,\n    null\n  ]\n}"
        );
    }
}
