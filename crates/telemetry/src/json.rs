//! A small JSON document builder (the workspace has no serde): exact
//! integers, lossless escaping, stable field order, pretty printing.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// An unsigned integer (rendered exactly).
    U64(u64),
    /// A signed integer (rendered exactly).
    I64(i64),
    /// A float (rendered via Rust's shortest round-trip formatting).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for an object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Renders compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Keep integral floats readable and JSON-valid.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{:.1}", v);
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl From<Option<f64>> for Json {
    fn from(v: Option<f64>) -> Json {
        match v {
            Some(x) => Json::F64(x),
            None => Json::Null,
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_escaping() {
        assert_eq!(Json::U64(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::I64(-3).render(), "-3");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(2.0).render(), "2.0");
        assert_eq!(Json::str("a\"b\n\u{1}").render(), "\"a\\\"b\\n\\u0001\"");
        assert_eq!(Json::Null.render(), "null");
    }

    #[test]
    fn nested_pretty() {
        let doc = Json::obj([
            ("name", Json::str("x")),
            ("vals", Json::Arr(vec![Json::U64(1), Json::Null])),
        ]);
        assert_eq!(doc.render(), r#"{"name":"x","vals":[1,null]}"#);
        assert_eq!(
            doc.render_pretty(),
            "{\n  \"name\": \"x\",\n  \"vals\": [\n    1,\n    null\n  ]\n}"
        );
    }
}
