//! Profile exporters: JSON documents, OpenMetrics-style text,
//! folded-stack ("flamegraph") text, and a human-readable per-phase
//! summary table.

use crate::json::Json;
use crate::registry::{Histogram, Registry};
use std::fmt::Write as _;

/// Renders the full registry as a pretty-printed JSON profile document.
pub fn to_json(reg: &Registry) -> String {
    let counters = Json::Obj(
        reg.counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::U64(*v)))
            .collect(),
    );
    let gauges = Json::Obj(
        reg.gauges
            .iter()
            .map(|(k, g)| {
                (
                    k.clone(),
                    Json::obj([
                        ("value", Json::I64(g.value)),
                        ("min", Json::I64(g.min)),
                        ("max", Json::I64(g.max)),
                        ("updates", Json::U64(g.updates)),
                    ]),
                )
            })
            .collect(),
    );
    let histograms = Json::Obj(
        reg.histograms
            .iter()
            .map(|(k, h)| (k.clone(), histogram_json(h)))
            .collect(),
    );
    let spans = Json::Arr(
        reg.spans
            .iter()
            .map(|(path, s)| {
                Json::obj([
                    ("path", Json::str(path.clone())),
                    ("calls", Json::U64(s.calls)),
                    ("wall_ns", Json::U64(s.wall_ns)),
                    ("wall_ms", Json::F64(s.wall_ms())),
                    ("cycles", Json::U64(s.cycles)),
                ])
            })
            .collect(),
    );
    let event_counts = Json::Obj(
        reg.event_counts
            .iter()
            .map(|(k, v)| (k.clone(), Json::U64(*v)))
            .collect(),
    );
    let events = Json::Arr(
        reg.events
            .iter()
            .map(|e| {
                Json::obj([
                    ("seq", Json::U64(e.seq)),
                    ("name", Json::str(e.name.clone())),
                    (
                        "fields",
                        Json::Obj(
                            e.fields
                                .iter()
                                .map(|(k, v)| (k.clone(), value_json(v)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    Json::obj([
        ("total_span_cycles", Json::U64(reg.total_span_cycles())),
        ("spans", spans),
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
        ("event_counts", event_counts),
        ("events_dropped", Json::U64(reg.events_dropped)),
        ("events", events),
    ])
    .render_pretty()
}

fn value_json(v: &crate::registry::Value) -> Json {
    match v {
        crate::registry::Value::U64(x) => Json::U64(*x),
        crate::registry::Value::I64(x) => Json::I64(*x),
        crate::registry::Value::F64(x) => Json::F64(*x),
        crate::registry::Value::Str(s) => Json::str(s.clone()),
    }
}

/// Renders one histogram as a JSON object (count/sum/min/max/mean plus
/// the non-empty power-of-two buckets keyed by inclusive lower bound).
pub fn histogram_json(h: &Histogram) -> Json {
    // Only non-empty buckets, labelled by their inclusive lower bound.
    let buckets = Json::Obj(
        h.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| (format!("{}", Histogram::bucket_lo(i)), Json::U64(*n)))
            .collect(),
    );
    Json::obj([
        ("count", Json::U64(h.count)),
        ("sum", Json::U64(h.sum)),
        ("min", Json::U64(h.min)),
        ("max", Json::U64(h.max)),
        ("mean", Json::F64(h.mean())),
        ("buckets_pow2", buckets),
    ])
}

/// Rewrites a metric name into the OpenMetrics charset:
/// `[a-zA-Z0-9_:]`, with dots and every other foreign byte mapped to
/// underscores.
fn openmetrics_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Renders counters, gauges and histograms as a deterministic
/// OpenMetrics-style text exposition: counters become `<name>_total`,
/// gauges plain samples, and power-of-two histograms cumulative
/// `_bucket{le="..."}` series (each `le` is a bucket's inclusive upper
/// bound, `2^i - 1`) plus `_sum`/`_count` and a terminal `+Inf` bucket.
/// BTreeMap iteration keeps the output byte-stable for a given registry,
/// so snapshots can be diffed and golden-tested. Terminated by `# EOF`.
pub fn to_openmetrics(reg: &Registry) -> String {
    let mut out = String::new();
    for (name, v) in &reg.counters {
        let n = openmetrics_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n}_total {v}");
    }
    for (name, g) in &reg.gauges {
        let n = openmetrics_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", g.value);
        let _ = writeln!(out, "{n}_max {}", g.max);
    }
    for (name, h) in &reg.histograms {
        let n = openmetrics_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        let last = h
            .buckets
            .iter()
            .rposition(|&b| b > 0)
            .unwrap_or(0);
        for (i, b) in h.buckets.iter().enumerate().take(last + 1) {
            cumulative += b;
            // Inclusive upper bound of bucket i: 0 for the zero bucket,
            // 2^i - 1 otherwise.
            let le = if i == 0 { 0 } else { (1u128 << i) - 1 };
            let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    out.push_str("# EOF\n");
    out
}

/// Renders span cycles as folded stacks — one `path;to;frame N` line per
/// span path with attributed cycles, ready for `flamegraph.pl` or
/// speedscope. Wall time is deliberately excluded: cycles are the
/// deterministic unit of the cost model.
pub fn to_folded(reg: &Registry) -> String {
    let mut out = String::new();
    for (path, s) in &reg.spans {
        if s.cycles > 0 {
            let _ = writeln!(out, "{path} {}", s.cycles);
        }
    }
    out
}

/// Renders a per-phase summary table: calls, attributed cycles, share of
/// all attributed cycles, and wall time where measured.
pub fn to_summary(reg: &Registry) -> String {
    let total = reg.total_span_cycles().max(1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<40}{:>10}{:>16}{:>8}{:>12}",
        "phase", "calls", "cycles", "%", "wall ms"
    );
    for (path, s) in &reg.spans {
        let _ = writeln!(
            out,
            "{:<40}{:>10}{:>16}{:>8.2}{:>12.3}",
            path,
            s.calls,
            s.cycles,
            s.cycles as f64 * 100.0 / total as f64,
            s.wall_ms()
        );
    }
    let _ = writeln!(
        out,
        "{:<40}{:>10}{:>16}{:>8.2}",
        "total", "", reg.total_span_cycles(), 100.0
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Value;

    fn sample() -> Registry {
        let mut r = Registry::new();
        r.span_complete("run;dbt;translate", 1_500, 300);
        r.span_complete("run;guest", 9_000, 700);
        r.counter_add("dbt.blocks_translated", 4);
        r.histogram_record("dbt.block_insns", 12);
        r.event("vm.syscall", vec![("no".into(), Value::U64(3))]);
        r
    }

    /// Golden-file check: the folded exporter's exact output format is a
    /// public contract (flamegraph.pl consumes it).
    #[test]
    fn folded_golden() {
        let golden = "run;dbt;translate 300\nrun;guest 700\n";
        assert_eq!(to_folded(&sample()), golden);
    }

    #[test]
    fn json_profile_is_complete_and_stable() {
        let a = to_json(&sample());
        let b = to_json(&sample());
        assert_eq!(a, b, "export must be deterministic");
        for needle in [
            "\"total_span_cycles\": 1000",
            "\"run;dbt;translate\"",
            "\"wall_ms\": 0.0015",
            "\"dbt.blocks_translated\": 4",
            "\"vm.syscall\": 1",
            "\"buckets_pow2\"",
        ] {
            assert!(a.contains(needle), "missing {needle} in:\n{a}");
        }
    }

    /// Golden-file check: the OpenMetrics exposition format is a public
    /// contract (scrapers parse it line by line).
    #[test]
    fn openmetrics_golden() {
        let mut r = Registry::new();
        r.counter_add("serve.requests", 7);
        r.gauge_set("serve.queue-depth", 3);
        r.gauge_set("serve.queue-depth", 2);
        r.histogram_record("serve.analyze_units", 0);
        r.histogram_record("serve.analyze_units", 5);
        let golden = "\
# TYPE serve_requests counter
serve_requests_total 7
# TYPE serve_queue_depth gauge
serve_queue_depth 2
serve_queue_depth_max 3
# TYPE serve_analyze_units histogram
serve_analyze_units_bucket{le=\"0\"} 1
serve_analyze_units_bucket{le=\"1\"} 1
serve_analyze_units_bucket{le=\"3\"} 1
serve_analyze_units_bucket{le=\"7\"} 2
serve_analyze_units_bucket{le=\"+Inf\"} 2
serve_analyze_units_sum 5
serve_analyze_units_count 2
# EOF
";
        assert_eq!(to_openmetrics(&r), golden);
        // Deterministic on repeat.
        assert_eq!(to_openmetrics(&r), to_openmetrics(&r));
    }

    #[test]
    fn summary_shows_percentages() {
        let s = to_summary(&sample());
        assert!(s.contains("run;guest"));
        assert!(s.contains("70.00"), "guest is 70% of cycles:\n{s}");
    }
}
