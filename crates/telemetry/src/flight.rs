//! The flight recorder: a bounded, always-on black-box event ring.
//!
//! Unlike the [`crate::Registry`] (which aggregates, and is only active
//! when telemetry is enabled for a profiling run), the flight recorder
//! keeps the *last N raw lifecycle events* so that when something goes
//! wrong in production — a panic, a violation-report overflow, a module
//! degradation — the service can dump a schema-stable JSON black box
//! showing what led up to it.
//!
//! Design constraints:
//!
//! - **Zero allocation in steady state.** Events are fixed-size `Copy`
//!   records (`&'static str` kind + two `u64` payloads + an interned
//!   module id). The ring is preallocated at arming time; recording
//!   overwrites slots in place. Module names are interned once per
//!   module load — the only allocation after arming.
//! - **Observation-only.** Nothing in the pipeline reads the ring; the
//!   deterministic cycle model and all result bytes are identical with
//!   the recorder on or off (enforced by `crates/eval` parity tests).
//! - **Cheap when disarmed.** Every record call first checks one
//!   relaxed atomic.
//!
//! Dump triggers: an installed panic hook ([`arm_panic_dump`]), and
//! explicit calls at trip points (report overflow in the DBT, module
//! degradation in core, store quarantine). Dumps use the
//! `janitizer.flight/v1` schema.

use crate::json::Json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Default ring capacity: enough to cover the tail of a large figure
/// run while staying a few hundred KiB resident.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Module id meaning "no module context".
pub const NO_MODULE: u32 = u32::MAX;

/// One fixed-size black-box event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic sequence number (never resets while armed; the gap
    /// between the oldest retained seq and 0 is the drop count).
    pub seq: u64,
    /// Static event kind, e.g. `"module.load"`, `"serve.panic"`.
    pub kind: &'static str,
    /// Interned module id ([`NO_MODULE`] when not module-scoped).
    pub module: u32,
    /// First payload word (kind-specific).
    pub a: u64,
    /// Second payload word (kind-specific).
    pub b: u64,
}

struct Ring {
    slots: Vec<FlightEvent>,
    next: usize,
    len: usize,
    seq: u64,
    modules: Vec<String>,
    module_ids: BTreeMap<String, u32>,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        let capacity = capacity.max(16);
        Ring {
            slots: vec![
                FlightEvent {
                    seq: 0,
                    kind: "",
                    module: NO_MODULE,
                    a: 0,
                    b: 0,
                };
                capacity
            ],
            next: 0,
            len: 0,
            seq: 0,
            modules: Vec::new(),
            module_ids: BTreeMap::new(),
        }
    }

    fn record(&mut self, kind: &'static str, module: u32, a: u64, b: u64) {
        let seq = self.seq;
        self.seq += 1;
        self.slots[self.next] = FlightEvent {
            seq,
            kind,
            module,
            a,
            b,
        };
        self.next = (self.next + 1) % self.slots.len();
        self.len = (self.len + 1).min(self.slots.len());
    }

    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.module_ids.get(name) {
            return id;
        }
        let id = self.modules.len() as u32;
        self.modules.push(name.to_string());
        self.module_ids.insert(name.to_string(), id);
        id
    }

    /// Retained events, oldest first.
    fn ordered(&self) -> Vec<FlightEvent> {
        let cap = self.slots.len();
        let start = (self.next + cap - self.len) % cap;
        (0..self.len)
            .map(|i| self.slots[(start + i) % cap])
            .collect()
    }
}

static ARMED: AtomicBool = AtomicBool::new(false);
static RING: Mutex<Option<Ring>> = Mutex::new(None);
static PANIC_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
static HOOK_INSTALLED: AtomicBool = AtomicBool::new(false);

fn with_ring<R>(f: impl FnOnce(&mut Ring) -> R) -> R {
    let mut guard = RING.lock().unwrap_or_else(|e| e.into_inner());
    let ring = guard.get_or_insert_with(|| Ring::new(DEFAULT_CAPACITY));
    f(ring)
}

/// Whether the recorder is currently armed.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arms the recorder with a fresh ring of `capacity` slots (the one
/// allocation; recording is allocation-free afterwards).
pub fn arm(capacity: usize) {
    *RING.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ring::new(capacity));
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarms the recorder and drops the ring.
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
    *RING.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Interns a module name, returning the id to pass to [`record`].
/// Returns [`NO_MODULE`] when disarmed.
pub fn intern_module(name: &str) -> u32 {
    if !armed() {
        return NO_MODULE;
    }
    with_ring(|r| r.intern(name))
}

/// Records one event (no-op when disarmed).
#[inline]
pub fn record(kind: &'static str, module: u32, a: u64, b: u64) {
    if !armed() {
        return;
    }
    with_ring(|r| r.record(kind, module, a, b));
}

/// Records one event scoped to a module by name (interns on the fly;
/// prefer [`intern_module`] + [`record`] on hot paths).
pub fn record_for(kind: &'static str, module: &str, a: u64, b: u64) {
    if !armed() {
        return;
    }
    with_ring(|r| {
        let id = r.intern(module);
        r.record(kind, id, a, b);
    });
}

/// Renders the black box as a `janitizer.flight/v1` JSON document.
/// `reason` names the trip (`"panic"`, `"report-overflow"`,
/// `"module-degraded"`, `"snapshot"`).
pub fn dump_json(reason: &str) -> String {
    with_ring(|r| {
        let events = r.ordered();
        let dropped = events.first().map(|e| e.seq).unwrap_or(0);
        let modules = Json::Arr(r.modules.iter().map(|m| Json::str(m.clone())).collect());
        let rows = Json::Arr(
            events
                .iter()
                .map(|e| {
                    let mut fields = vec![
                        ("seq".to_string(), Json::U64(e.seq)),
                        ("kind".to_string(), Json::str(e.kind)),
                    ];
                    if e.module != NO_MODULE {
                        fields.push(("module".to_string(), Json::U64(e.module as u64)));
                    }
                    fields.push(("a".to_string(), Json::U64(e.a)));
                    fields.push(("b".to_string(), Json::U64(e.b)));
                    Json::Obj(fields)
                })
                .collect(),
        );
        Json::obj([
            ("schema", Json::str("janitizer.flight/v1")),
            ("reason", Json::str(reason)),
            ("capacity", Json::U64(r.slots.len() as u64)),
            ("total_events", Json::U64(r.seq)),
            ("dropped", Json::U64(dropped)),
            ("modules", modules),
            ("events", rows),
        ])
        .render_pretty()
    })
}

/// Writes a dump to `dir/flight-<reason>.json` (best-effort: failures
/// are swallowed — the black box must never take the service down).
/// Returns the path written, if any.
pub fn dump_to(dir: &Path, reason: &str) -> Option<PathBuf> {
    if !armed() {
        return None;
    }
    let path = dir.join(format!("flight-{reason}.json"));
    let doc = dump_json(reason);
    std::fs::create_dir_all(dir).ok()?;
    std::fs::write(&path, doc).ok()?;
    Some(path)
}

/// Configures (or clears) the directory that trip-point and panic
/// dumps are written to.
pub fn set_dump_dir(dir: Option<&Path>) {
    *PANIC_DIR.lock().unwrap_or_else(|e| e.into_inner()) = dir.map(Path::to_path_buf);
}

/// Records a trip event and, when a dump directory is configured,
/// writes the black box as `flight-<reason>.json`. This is the entry
/// point for non-panic triggers: violation-report overflow, module
/// degradation, store quarantine.
pub fn trip(reason: &'static str, module: u32, a: u64, b: u64) {
    if !armed() {
        return;
    }
    record(reason, module, a, b);
    let dir = PANIC_DIR.lock().unwrap_or_else(|e| e.into_inner()).clone();
    if let Some(dir) = dir {
        dump_to(&dir, reason);
    }
}

/// Arms panic dumps: on panic, the black box is written to
/// `dir/flight-panic.json` before the previous panic hook runs. The
/// hook is installed once per process; subsequent calls only update the
/// directory.
pub fn arm_panic_dump(dir: &Path) {
    *PANIC_DIR.lock().unwrap_or_else(|e| e.into_inner()) = Some(dir.to_path_buf());
    if HOOK_INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let dir = PANIC_DIR
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        if let Some(dir) = dir {
            record("panic", NO_MODULE, 0, 0);
            dump_to(&dir, "panic");
        }
        prev(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The recorder is process-global; serialize tests touching it.
    static SERIAL: StdMutex<()> = StdMutex::new(());

    #[test]
    fn disarmed_is_inert() {
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        disarm();
        record("x", NO_MODULE, 1, 2);
        assert_eq!(intern_module("m"), NO_MODULE);
        assert!(!armed());
    }

    #[test]
    fn ring_keeps_last_n_and_counts_drops() {
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        arm(16);
        let m = intern_module("libfoo.jof");
        assert_eq!(intern_module("libfoo.jof"), m, "interning is stable");
        for i in 0..40u64 {
            record("tick", m, i, i * 2);
        }
        let doc = dump_json("snapshot");
        assert!(doc.contains("\"schema\": \"janitizer.flight/v1\""));
        assert!(doc.contains("\"total_events\": 40"));
        assert!(doc.contains("\"dropped\": 24"));
        assert!(doc.contains("\"libfoo.jof\""));
        // Oldest retained event is seq 24, newest 39.
        assert!(doc.contains("\"seq\": 24"));
        assert!(doc.contains("\"seq\": 39"));
        assert!(!doc.contains("\"seq\": 23"));
        disarm();
    }

    #[test]
    fn dump_writes_file() {
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        arm(16);
        record_for("module.degraded", "bad.jof", 7, 0);
        let dir = std::env::temp_dir().join(format!("jz-flight-{}", std::process::id()));
        let path = dump_to(&dir, "module-degraded").expect("dump written");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"reason\": \"module-degraded\""));
        assert!(body.contains("bad.jof"));
        std::fs::remove_dir_all(&dir).ok();
        disarm();
    }
}
