//! # Static linker for JX-64
//!
//! Combines JOF relocatable [`Object`]s into a linked [`Image`]: either a
//! position-dependent executable laid out at [`IMAGE_BASE`], or a
//! position-independent shared object laid out at 0 and rebased by the
//! loader. The linker synthesizes the dynamic-linking machinery whose
//! behaviour Janitizer's mechanisms must handle:
//!
//! * a **PLT stub** per imported function (`lea r7, [pc+got_f]`;
//!   `ld8 r6, [r7]`; `jmp r6`), clobbering the `r6`/`r7` linker-scratch
//!   registers as real PLTs clobber `r11`;
//! * a **GOT** whose slot 0 holds the lazy resolver's address and whose
//!   per-function slots are bound either eagerly by the loader or lazily
//!   through the ld.so-style fixup path (including the
//!   push-resolved-pointer-then-`ret` idiom JCFI must special-case,
//!   paper §4.2.3);
//! * **dynamic relocations** for absolute pointers in PIC images (jump
//!   tables, function-pointer tables) and for cross-module data.
//!
//! ```
//! use janitizer_asm::{assemble, AsmOptions};
//! use janitizer_link::{link, LinkOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let obj = assemble(
//!     "tiny.s",
//!     ".section text\n.global _start\n_start:\n mov r0, 0\n mov r1, 0\n syscall\n",
//!     &AsmOptions::default(),
//! )?;
//! let image = link(&[obj], &LinkOptions::executable("tiny"))?;
//! assert!(!image.pic);
//! assert_eq!(image.entry, image.symbol("_start").unwrap().value);
//! # Ok(())
//! # }
//! ```

use janitizer_isa::{Instr, MemSize, Reg};
use janitizer_obj::{
    DynReloc, DynTarget, Image, Object, PltEntry, RelocKind, Section, SectionKind, SymBind,
    SymKind, Symbol, IMAGE_BASE, SECTION_ALIGN,
};
use std::collections::HashMap;
use std::fmt;

/// Symbol name of the run-time lazy resolver exported by the `ld.so`
/// module; GOT slot 0 of every image is bound to it.
pub const RESOLVER_SYMBOL: &str = "__dl_resolve";

/// Size reserved for each PLT stub (including `plt0`).
pub const PLT_STUB_SIZE: u64 = 16;

/// Linker configuration.
#[derive(Clone, Debug)]
pub struct LinkOptions {
    /// Output module name.
    pub name: String,
    /// Produce position-independent output.
    pub pic: bool,
    /// Produce a shared object (no entry point required).
    pub shared: bool,
    /// `DT_NEEDED`-style dependencies, in search order.
    pub needed: Vec<String>,
    /// Entry symbol for executables.
    pub entry: String,
    /// Drop local/function symbols from the output (like `strip`).
    pub strip: bool,
}

impl LinkOptions {
    /// Options for a conventional non-PIC executable.
    pub fn executable(name: impl Into<String>) -> LinkOptions {
        LinkOptions {
            name: name.into(),
            pic: false,
            shared: false,
            needed: Vec::new(),
            entry: "_start".into(),
            strip: false,
        }
    }

    /// Options for a position-independent executable.
    pub fn pie(name: impl Into<String>) -> LinkOptions {
        LinkOptions {
            pic: true,
            ..LinkOptions::executable(name)
        }
    }

    /// Options for a PIC shared object.
    pub fn shared_object(name: impl Into<String>) -> LinkOptions {
        LinkOptions {
            name: name.into(),
            pic: true,
            shared: true,
            needed: Vec::new(),
            entry: String::new(),
            strip: false,
        }
    }

    /// Adds a dependency on a shared object.
    pub fn needs(mut self, lib: impl Into<String>) -> LinkOptions {
        self.needed.push(lib.into());
        self
    }
}

/// Errors produced by [`link`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkError {
    /// The same global symbol is defined by two objects.
    DuplicateSymbol {
        /// Symbol name.
        symbol: String,
        /// Objects that both define it.
        objects: (String, String),
    },
    /// The entry symbol of an executable is missing.
    MissingEntry(String),
    /// A PC-relative displacement does not fit in 32 bits.
    RelocOutOfRange {
        /// Symbol the relocation refers to.
        symbol: String,
    },
    /// A structurally invalid relocation.
    BadReloc {
        /// Symbol the relocation refers to.
        symbol: String,
        /// Description of the problem.
        reason: String,
    },
    /// The merged layout overflows the address space. Only reachable
    /// with hostile section sizes; well-formed objects never get close.
    ImageTooLarge {
        /// Which quantity overflowed.
        what: &'static str,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::DuplicateSymbol { symbol, objects } => write!(
                f,
                "duplicate symbol `{symbol}` defined in `{}` and `{}`",
                objects.0, objects.1
            ),
            LinkError::MissingEntry(e) => write!(f, "undefined entry symbol `{e}`"),
            LinkError::RelocOutOfRange { symbol } => {
                write!(f, "relocation against `{symbol}` out of range")
            }
            LinkError::BadReloc { symbol, reason } => {
                write!(f, "bad relocation against `{symbol}`: {reason}")
            }
            LinkError::ImageTooLarge { what } => {
                write!(f, "image layout overflow: {what}")
            }
        }
    }
}

impl std::error::Error for LinkError {}

fn align_up(v: u64, a: u64) -> Result<u64, LinkError> {
    v.checked_next_multiple_of(a)
        .ok_or(LinkError::ImageTooLarge { what: "section alignment" })
}

/// Links `objects` into a single [`Image`].
///
/// # Errors
///
/// Returns a [`LinkError`] on duplicate global definitions, a missing
/// entry symbol (for executables), or out-of-range displacements.
pub fn link(objects: &[Object], opts: &LinkOptions) -> Result<Image, LinkError> {
    // ---- 1. merge section contents, remembering each object's chunk base.
    let mut merged: HashMap<SectionKind, Vec<u8>> = HashMap::new();
    let mut bss_total: u64 = 0;
    // (object index, section kind) -> offset of that object's chunk within
    // the merged section.
    let mut chunk_base: HashMap<(usize, SectionKind), u64> = HashMap::new();
    for (oi, obj) in objects.iter().enumerate() {
        for sec in &obj.sections {
            if sec.kind == SectionKind::Bss {
                bss_total = align_up(bss_total, 8)?;
                chunk_base.insert((oi, sec.kind), bss_total);
                bss_total = bss_total
                    .checked_add(sec.mem_size)
                    .ok_or(LinkError::ImageTooLarge { what: "bss size" })?;
            } else {
                let buf = merged.entry(sec.kind).or_default();
                // Pad to 8; zero bytes decode as `nop` so code stays sound.
                while !buf.len().is_multiple_of(8) {
                    buf.push(0);
                }
                chunk_base.insert((oi, sec.kind), buf.len() as u64);
                buf.extend_from_slice(&sec.data);
            }
        }
    }

    // ---- 2. global symbol resolution (merged-section-relative values).
    struct Def {
        section: SectionKind,
        value: u64, // offset within merged section
        size: u64,
        kind: SymKind,
        bind: SymBind,
        object: usize,
    }
    let mut defs: HashMap<String, Def> = HashMap::new();
    for (oi, obj) in objects.iter().enumerate() {
        for sym in &obj.symbols {
            let Some(sec) = sym.section else { continue };
            let base = chunk_base.get(&(oi, sec)).copied().unwrap_or(0);
            let global = sym.bind == SymBind::Global;
            // Local symbols get object-qualified names to avoid clashes.
            let key = if global {
                sym.name.clone()
            } else {
                format!("{}::{}", obj.name, sym.name)
            };
            if let Some(prev) = defs.get(&key) {
                if global {
                    return Err(LinkError::DuplicateSymbol {
                        symbol: sym.name.clone(),
                        objects: (objects[prev.object].name.clone(), obj.name.clone()),
                    });
                }
            }
            defs.insert(
                key,
                Def {
                    section: sec,
                    value: base + sym.value,
                    size: sym.size,
                    kind: sym.kind,
                    bind: sym.bind,
                    object: oi,
                },
            );
        }
    }
    // Resolution helper: relocations refer first to a local symbol of the
    // same object, then to a global.
    let resolve = |oi: usize, name: &str| -> Option<(SectionKind, u64)> {
        let local_key = format!("{}::{}", objects[oi].name, name);
        if let Some(d) = defs.get(&local_key) {
            return Some((d.section, d.value));
        }
        defs.get(name)
            .filter(|d| d.bind == SymBind::Global)
            .map(|d| (d.section, d.value))
    };

    // ---- 3. collect imports: PLT entries (function calls) & GOT symbols.
    let mut plt_syms: Vec<String> = Vec::new();
    let mut got_syms: Vec<String> = Vec::new(); // GotPc32 targets, defined or not
    for (oi, obj) in objects.iter().enumerate() {
        for rel in &obj.relocs {
            match rel.kind {
                RelocKind::Plt32 | RelocKind::Pc32 => {
                    if resolve(oi, &rel.symbol).is_none() && !plt_syms.contains(&rel.symbol) {
                        plt_syms.push(rel.symbol.clone());
                    }
                }
                RelocKind::GotPc32 => {
                    if !got_syms.contains(&rel.symbol) {
                        got_syms.push(rel.symbol.clone());
                    }
                }
                RelocKind::Abs64 => {}
            }
        }
    }

    // ---- 4. lay out sections within the image address space.
    let base = if opts.pic { 0 } else { IMAGE_BASE };
    let mut addr = base;
    let mut sec_addr: HashMap<SectionKind, u64> = HashMap::new();
    let mut out_sections: Vec<Section> = Vec::new();

    // GOT: slot 0 = resolver, slot 1 = reserved, then PLT slots, then data.
    let need_got = !plt_syms.is_empty() || !got_syms.is_empty();
    let got_len = if need_got {
        (2 + plt_syms.len() + got_syms.len()) as u64 * 8
    } else {
        0
    };
    // PLT: slot 0 is the lazy trampoline, then one stub per import.
    let plt_len = if plt_syms.is_empty() {
        0
    } else {
        (1 + plt_syms.len() as u64) * PLT_STUB_SIZE
    };

    let mut section_bytes: HashMap<SectionKind, Vec<u8>> = HashMap::new();
    for kind in SectionKind::LAYOUT_ORDER {
        let bytes = match kind {
            SectionKind::Plt => {
                if plt_len == 0 {
                    continue;
                }
                vec![0u8; plt_len as usize]
            }
            SectionKind::Got => {
                if got_len == 0 {
                    continue;
                }
                vec![0u8; got_len as usize]
            }
            SectionKind::Bss => {
                if bss_total == 0 {
                    continue;
                }
                addr = align_up(addr, SECTION_ALIGN)?;
                sec_addr.insert(kind, addr);
                let mut s = Section::zeroed(kind, bss_total);
                s.addr = addr;
                addr = addr
                    .checked_add(bss_total)
                    .ok_or(LinkError::ImageTooLarge { what: "bss placement" })?;
                out_sections.push(s);
                continue;
            }
            _ => match merged.remove(&kind) {
                Some(b) if !b.is_empty() => b,
                _ => continue,
            },
        };
        addr = align_up(addr, SECTION_ALIGN)?;
        sec_addr.insert(kind, addr);
        addr = addr
            .checked_add(bytes.len() as u64)
            .ok_or(LinkError::ImageTooLarge { what: "section placement" })?;
        section_bytes.insert(kind, bytes);
    }

    // `None` when the symbol's claimed section produced no output (a
    // hostile object can declare a symbol in a section it never defines)
    // or the address arithmetic would wrap.
    let sym_addr = |sec: SectionKind, value: u64| -> Option<u64> {
        sec_addr.get(&sec)?.checked_add(value)
    };

    // ---- 5. GOT layout & dynamic relocations.
    let got_base = sec_addr.get(&SectionKind::Got).copied();
    let mut dyn_relocs: Vec<DynReloc> = Vec::new();
    let mut got_slot_of: HashMap<String, u64> = HashMap::new(); // symbol -> got addr
    let mut plt_entries: Vec<PltEntry> = Vec::new();
    if let Some(got_base) = got_base {
        dyn_relocs.push(DynReloc {
            offset: got_base,
            target: DynTarget::Symbol(RESOLVER_SYMBOL.into()),
        });
        let mut slot = got_base + 16;
        let plt_base = sec_addr.get(&SectionKind::Plt).copied().unwrap_or(0);
        for (i, sym) in plt_syms.iter().enumerate() {
            let stub = plt_base + (1 + i as u64) * PLT_STUB_SIZE;
            plt_entries.push(PltEntry {
                symbol: sym.clone(),
                plt_offset: stub,
                got_offset: slot,
            });
            got_slot_of.insert(sym.clone(), slot);
            // The loader binds this slot eagerly, or points it at plt0 for
            // lazy binding.
            dyn_relocs.push(DynReloc {
                offset: slot,
                target: DynTarget::Symbol(sym.clone()),
            });
            slot += 8;
        }
        for sym in &got_syms {
            got_slot_of.insert(sym.clone(), slot);
            // GOT data slots: module-local symbols just need rebasing,
            // imports need a load-time symbol search.
            let target = if let Some(a) = resolve(0, sym)
                .or_else(|| (0..objects.len()).find_map(|oi| resolve(oi, sym)))
                .and_then(|(sec, v)| sym_addr(sec, v))
            {
                DynTarget::Base(a - base)
            } else {
                // Unresolvable here (import, or a symbol in an absent
                // section): defer to the loader's symbol search.
                DynTarget::Symbol(sym.clone())
            };
            dyn_relocs.push(DynReloc { offset: slot, target });
            slot += 8;
        }
    }

    // ---- 6. synthesize PLT stubs.
    if !plt_syms.is_empty() {
        let plt_base = sec_addr[&SectionKind::Plt];
        let got0 = got_base.expect("plt requires got");
        let plt = section_bytes.get_mut(&SectionKind::Plt).unwrap();
        // plt0: lazy trampoline. On entry r7 = &got[f] (set by the stub).
        {
            let mut code = Vec::new();
            Instr::Push { rs: Reg::R7 }.encode(&mut code); // resolver argument
            let lea_end = plt_base + code.len() as u64 + 6;
            Instr::LeaPc {
                rd: Reg::R6,
                disp: (got0 as i64 - lea_end as i64) as i32,
            }
            .encode(&mut code);
            Instr::Ld {
                size: MemSize::B8,
                rd: Reg::R6,
                base: Reg::R6,
                disp: 0,
            }
            .encode(&mut code);
            Instr::JmpInd { rs: Reg::R6 }.encode(&mut code);
            plt[..code.len()].copy_from_slice(&code);
        }
        for entry in &plt_entries {
            let stub_off = (entry.plt_offset - plt_base) as usize;
            let mut code = Vec::new();
            let lea_end = entry.plt_offset + 6;
            Instr::LeaPc {
                rd: Reg::R7,
                disp: (entry.got_offset as i64 - lea_end as i64) as i32,
            }
            .encode(&mut code);
            Instr::Ld {
                size: MemSize::B8,
                rd: Reg::R6,
                base: Reg::R7,
                disp: 0,
            }
            .encode(&mut code);
            Instr::JmpInd { rs: Reg::R6 }.encode(&mut code);
            plt[stub_off..stub_off + code.len()].copy_from_slice(&code);
        }
    }

    // ---- 7. apply relocations.
    for (oi, obj) in objects.iter().enumerate() {
        for rel in &obj.relocs {
            let Some(&cb) = chunk_base.get(&(oi, rel.section)) else {
                return Err(LinkError::BadReloc {
                    symbol: rel.symbol.clone(),
                    reason: format!("object has no {} section", rel.section.name()),
                });
            };
            let Some(&sec_base) = sec_addr.get(&rel.section) else {
                return Err(LinkError::BadReloc {
                    symbol: rel.symbol.clone(),
                    reason: format!("{} was empty after merging", rel.section.name()),
                });
            };
            let patch_addr = cb
                .checked_add(rel.offset)
                .and_then(|o| sec_base.checked_add(o))
                .ok_or_else(|| LinkError::BadReloc {
                    symbol: rel.symbol.clone(),
                    reason: "relocation offset overflows the address space".into(),
                })?;
            let patch_off = (patch_addr - sec_base) as usize;
            let Some(buf) = section_bytes.get_mut(&rel.section) else {
                return Err(LinkError::BadReloc {
                    symbol: rel.symbol.clone(),
                    reason: format!("{} has no contents to patch", rel.section.name()),
                });
            };
            if patch_off + 4 > buf.len() {
                return Err(LinkError::BadReloc {
                    symbol: rel.symbol.clone(),
                    reason: "relocation offset out of section bounds".into(),
                });
            }
            match rel.kind {
                RelocKind::Abs64 => {
                    if patch_off + 8 > buf.len() {
                        return Err(LinkError::BadReloc {
                            symbol: rel.symbol.clone(),
                            reason: "8-byte relocation offset out of section bounds".into(),
                        });
                    }
                    if let Some(a) = resolve(oi, &rel.symbol).and_then(|(sec, v)| sym_addr(sec, v))
                    {
                        // Addend arithmetic wraps by convention (as in ELF).
                        let target = a.wrapping_add(rel.addend as u64);
                        if opts.pic {
                            dyn_relocs.push(DynReloc {
                                offset: patch_addr,
                                target: DynTarget::Base(target),
                            });
                        } else {
                            buf[patch_off..patch_off + 8]
                                .copy_from_slice(&target.to_le_bytes());
                        }
                    } else {
                        dyn_relocs.push(DynReloc {
                            offset: patch_addr,
                            target: DynTarget::Symbol(rel.symbol.clone()),
                        });
                    }
                }
                RelocKind::Pc32 | RelocKind::Plt32 => {
                    let target = if let Some(a) =
                        resolve(oi, &rel.symbol).and_then(|(sec, v)| sym_addr(sec, v))
                    {
                        a
                    } else {
                        // Route through the PLT stub.
                        plt_entries
                            .iter()
                            .find(|p| p.symbol == rel.symbol)
                            .map(|p| p.plt_offset)
                            .ok_or_else(|| LinkError::BadReloc {
                                symbol: rel.symbol.clone(),
                                reason: "undefined symbol with no PLT entry".into(),
                            })?
                    };
                    let p = patch_addr + 4;
                    // i128 keeps hostile addends from overflowing the
                    // intermediate; the i32 range check rejects them.
                    let disp = target as i128 + rel.addend as i128 - p as i128;
                    let disp = i32::try_from(disp).map_err(|_| LinkError::RelocOutOfRange {
                        symbol: rel.symbol.clone(),
                    })?;
                    buf[patch_off..patch_off + 4].copy_from_slice(&disp.to_le_bytes());
                }
                RelocKind::GotPc32 => {
                    let slot = got_slot_of[&rel.symbol];
                    let p = patch_addr + 4;
                    let disp = slot as i128 + rel.addend as i128 - p as i128;
                    let disp = i32::try_from(disp).map_err(|_| LinkError::RelocOutOfRange {
                        symbol: rel.symbol.clone(),
                    })?;
                    buf[patch_off..patch_off + 4].copy_from_slice(&disp.to_le_bytes());
                }
            }
        }
    }

    // ---- 8. assemble the image.
    let mut img = Image::new(opts.name.clone(), opts.pic, opts.shared);
    for kind in SectionKind::LAYOUT_ORDER {
        if let Some(bytes) = section_bytes.remove(&kind) {
            let mut s = Section::new(kind, bytes);
            s.addr = sec_addr[&kind];
            img.sections.push(s);
        }
    }
    img.sections.extend(out_sections);
    img.sections.sort_by_key(|s| s.addr);

    for (key, d) in &defs {
        let name = key.rsplit("::").next().unwrap_or(key).to_string();
        // `.L`-style assembler-local labels participate in relocation but
        // are not real symbols; keeping them out preserves function sizes
        // derived from label spacing (as GNU as/ld do).
        if name.starts_with('.') {
            continue;
        }
        // A symbol in a section that produced no output (hostile objects
        // can claim one) has no address; drop it rather than fabricate one.
        let Some(value) = sym_addr(d.section, d.value) else { continue };
        img.symbols.push(Symbol {
            name,
            kind: d.kind,
            bind: d.bind,
            section: Some(d.section),
            value,
            size: d.size,
        });
    }
    img.symbols
        .sort_by(|a, b| a.value.cmp(&b.value).then(a.name.cmp(&b.name)));

    img.needed = opts.needed.clone();
    img.plt = plt_entries;
    img.dyn_relocs = dyn_relocs;
    img.init = sec_addr.get(&SectionKind::Init).copied();
    img.fini = sec_addr.get(&SectionKind::Fini).copied();

    if !opts.shared {
        let entry = img
            .symbol(&opts.entry)
            .ok_or_else(|| LinkError::MissingEntry(opts.entry.clone()))?;
        img.entry = entry.value;
    }
    if opts.strip {
        img = img.to_stripped();
    }
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use janitizer_asm::{assemble, AsmOptions};
    use janitizer_isa::decode;

    fn obj(name: &str, src: &str, pic: bool) -> Object {
        assemble(name, src, &AsmOptions { pic }).expect("asm")
    }

    #[test]
    fn single_object_executable() {
        let o = obj(
            "a.s",
            ".section text\n.global _start\n_start:\n mov r0, 0\n syscall\n",
            false,
        );
        let img = link(&[o], &LinkOptions::executable("a.out")).unwrap();
        assert!(!img.pic);
        assert_eq!(img.entry, IMAGE_BASE);
        assert!(img.plt.is_empty());
    }

    #[test]
    fn cross_object_call_resolves_directly() {
        let a = obj(
            "a.s",
            ".section text\n.global _start\n_start:\n call helper\n halt\n",
            false,
        );
        let b = obj("b.s", ".section text\n.global helper\nhelper:\n ret\n", false);
        let img = link(&[a, b], &LinkOptions::executable("a.out")).unwrap();
        assert!(img.plt.is_empty(), "locally-defined calls bypass the PLT");
        // Decode the call and check it lands on `helper`.
        let text = img.section(SectionKind::Text).unwrap();
        let (call, next) = decode(&text.data, 0).unwrap();
        let Instr::Call { rel } = call else { panic!("expected call") };
        let target = (text.addr + next as u64).wrapping_add(rel as i64 as u64);
        assert_eq!(target, img.symbol("helper").unwrap().value);
    }

    #[test]
    fn undefined_call_gets_plt_and_got() {
        let a = obj(
            "a.s",
            ".section text\n.global _start\n_start:\n call puts\n halt\n",
            false,
        );
        let img = link(&[a], &LinkOptions::executable("a.out").needs("libjc.so")).unwrap();
        assert_eq!(img.plt.len(), 1);
        assert_eq!(img.plt[0].symbol, "puts");
        assert_eq!(img.needed, vec!["libjc.so".to_string()]);
        // GOT slot 0 must be bound to the resolver.
        assert!(matches!(
            &img.dyn_relocs[0].target,
            DynTarget::Symbol(s) if s == RESOLVER_SYMBOL
        ));
        // The call must target the PLT stub.
        let text = img.section(SectionKind::Text).unwrap();
        let (call, next) = decode(&text.data, 0).unwrap();
        let Instr::Call { rel } = call else { panic!() };
        let target = (text.addr + next as u64).wrapping_add(rel as i64 as u64);
        assert_eq!(target, img.plt[0].plt_offset);
        // The stub decodes to lea/ld/jmp.
        let plt = img.section(SectionKind::Plt).unwrap();
        let off = (img.plt[0].plt_offset - plt.addr) as usize;
        let (i1, n1) = decode(&plt.data, off).unwrap();
        assert!(matches!(i1, Instr::LeaPc { rd: Reg::R7, .. }));
        let (i2, n2) = decode(&plt.data, n1).unwrap();
        assert!(matches!(i2, Instr::Ld { rd: Reg::R6, base: Reg::R7, .. }));
        let (i3, _) = decode(&plt.data, n2).unwrap();
        assert!(matches!(i3, Instr::JmpInd { rs: Reg::R6 }));
    }

    #[test]
    fn linked_image_supports_symbolizer_queries() {
        // The forensics symbolizer leans on two Image lookups; pin their
        // behaviour on a linked image with both local symbols and a PLT.
        let a = obj(
            "a.s",
            ".section text\n.global _start\n_start:\n call puts\n halt\n\
             .global helper\nhelper:\n ret\n",
            false,
        );
        let img = link(&[a], &LinkOptions::executable("a.out").needs("libjc.so")).unwrap();
        let start = img.symbol("_start").unwrap().value;
        let helper = img.symbol("helper").unwrap().value;
        // Nearest-preceding: between `_start` and `helper` the earlier
        // symbol wins, with the distance as offset.
        let (s, off) = img.nearest_symbol(helper - 1).unwrap();
        assert_eq!(s.name, "_start");
        assert_eq!(off, helper - 1 - start);
        let (s, off) = img.nearest_symbol(helper).unwrap();
        assert_eq!((s.name.as_str(), off), ("helper", 0));
        assert!(img.nearest_symbol(start.wrapping_sub(1)).is_none(), "before first symbol");
        // PLT stubs: every byte of the stub maps back to its entry.
        let e = img.plt[0].clone();
        let plt_sec = img.section(SectionKind::Plt).unwrap();
        assert_eq!(img.plt_entry_containing(e.plt_offset).unwrap().symbol, "puts");
        assert_eq!(
            img.plt_entry_containing(plt_sec.end() - 1).unwrap().symbol,
            "puts"
        );
        assert!(img.plt_entry_containing(e.plt_offset - 1).is_none(), "text is not PLT");
    }

    #[test]
    fn plt_stub_lea_points_at_got_slot() {
        let a = obj(
            "a.s",
            ".section text\n.global _start\n_start:\n call puts\n halt\n",
            false,
        );
        let img = link(&[a], &LinkOptions::executable("a.out")).unwrap();
        let e = &img.plt[0];
        let plt = img.section(SectionKind::Plt).unwrap();
        let off = (e.plt_offset - plt.addr) as usize;
        let (i1, n1) = decode(&plt.data, off).unwrap();
        let Instr::LeaPc { disp, .. } = i1 else { panic!() };
        let lea_end = plt.addr + n1 as u64;
        assert_eq!(lea_end.wrapping_add(disp as i64 as u64), e.got_offset);
    }

    #[test]
    fn duplicate_global_symbols_rejected() {
        let a = obj("a.s", ".section text\n.global f\nf:\n ret\n", false);
        let b = obj("b.s", ".section text\n.global f\nf:\n ret\n", false);
        let mut opts = LinkOptions::executable("a.out");
        opts.entry = "f".into();
        assert!(matches!(
            link(&[a, b], &opts),
            Err(LinkError::DuplicateSymbol { .. })
        ));
    }

    #[test]
    fn local_symbols_do_not_clash() {
        let a = obj(
            "a.s",
            ".section text\n.global _start\n_start:\n call helper_a\n halt\nhelper_a:\n ret\nlocal1:\n ret\n",
            false,
        );
        let b = obj(
            "b.s",
            ".section text\n.global helper_a2\nhelper_a2:\n ret\nlocal1:\n ret\n",
            false,
        );
        // Both objects define a local `local1`; this must not error.
        let img = link(&[a, b], &LinkOptions::executable("a.out")).unwrap();
        assert!(img.symbol("_start").is_some());
    }

    #[test]
    fn missing_entry_is_an_error() {
        let a = obj("a.s", ".section text\nf:\n ret\n", false);
        assert_eq!(
            link(&[a], &LinkOptions::executable("a.out")),
            Err(LinkError::MissingEntry("_start".into()))
        );
    }

    #[test]
    fn shared_object_is_pic_with_base_zero() {
        let a = obj(
            "lib.s",
            ".section text\n.global helper\nhelper:\n la r0, value\n ld8 r0, [r0]\n ret\n.section data\nvalue: .quad 7\n",
            true,
        );
        let img = link(&[a], &LinkOptions::shared_object("libdemo.so")).unwrap();
        assert!(img.pic && img.shared);
        let text = img.section(SectionKind::Text).unwrap();
        assert!(text.addr < IMAGE_BASE, "PIC images are linked at low addresses");
        // PIC `la` resolves to LeaPc patched at link time.
        let (i1, n1) = decode(&text.data, 0).unwrap();
        let Instr::LeaPc { disp, .. } = i1 else { panic!("got {i1}") };
        let target = (text.addr + n1 as u64).wrapping_add(disp as i64 as u64);
        assert_eq!(target, img.symbol("value").unwrap().value);
    }

    #[test]
    fn pic_jump_table_gets_dynamic_relocs() {
        let a = obj(
            "lib.s",
            ".section text\n.global f\nf:\n ret\ng:\n ret\n.section rodata\ntbl: .quad f, g\n",
            true,
        );
        let img = link(&[a], &LinkOptions::shared_object("libt.so")).unwrap();
        let base_relocs: Vec<_> = img
            .dyn_relocs
            .iter()
            .filter(|d| matches!(d.target, DynTarget::Base(_)))
            .collect();
        assert_eq!(base_relocs.len(), 2);
        let DynTarget::Base(off) = base_relocs[0].target else { unreachable!() };
        assert_eq!(off, img.symbol("f").unwrap().value);
    }

    #[test]
    fn nonpic_jump_table_is_patched_absolutely() {
        let a = obj(
            "a.s",
            ".section text\n.global _start\n_start:\n ret\n.section rodata\ntbl: .quad _start\n",
            false,
        );
        let img = link(&[a], &LinkOptions::executable("a.out")).unwrap();
        let ro = img.section(SectionKind::Rodata).unwrap();
        let ptr = u64::from_le_bytes(ro.data[..8].try_into().unwrap());
        assert_eq!(ptr, img.entry);
        assert!(img
            .dyn_relocs
            .iter()
            .all(|d| !matches!(d.target, DynTarget::Base(_))));
    }

    #[test]
    fn got_data_slot_for_lg() {
        let a = obj(
            "lib.s",
            ".section text\n.global get\nget:\n lg r0, counter\n ld8 r0, [r0]\n ret\n",
            true,
        );
        let img = link(&[a], &LinkOptions::shared_object("libg.so").needs("libjc.so")).unwrap();
        // `counter` is imported: its GOT slot needs a symbol search.
        assert!(img
            .dyn_relocs
            .iter()
            .any(|d| matches!(&d.target, DynTarget::Symbol(s) if s == "counter")));
    }

    #[test]
    fn init_fini_recorded() {
        let a = obj(
            "a.s",
            ".section init\ninit_code:\n nop\n ret\n.section text\n.global _start\n_start:\n halt\n.section fini\nfini_code:\n ret\n",
            false,
        );
        let img = link(&[a], &LinkOptions::executable("a.out")).unwrap();
        assert!(img.init.is_some());
        assert!(img.fini.is_some());
        assert_eq!(img.init, img.section(SectionKind::Init).map(|s| s.addr));
    }

    #[test]
    fn stripped_output_keeps_exports_only() {
        let a = obj(
            "lib.s",
            ".section text\n.global api\napi:\n ret\ninternal:\n ret\n",
            true,
        );
        let mut opts = LinkOptions::shared_object("libs.so");
        opts.strip = true;
        let img = link(&[a], &opts).unwrap();
        assert!(img.stripped);
        assert!(img.symbol("api").is_some());
        assert!(img.symbol("internal").is_none());
    }

    #[test]
    fn sections_are_aligned_and_disjoint() {
        let a = obj(
            "a.s",
            ".section text\n.global _start\n_start:\n call puts\n halt\n.section data\nd: .quad 1\n.section bss\nb: .space 100\n",
            false,
        );
        let img = link(&[a], &LinkOptions::executable("a.out")).unwrap();
        let mut prev_end = 0;
        for s in &img.sections {
            assert_eq!(s.addr % SECTION_ALIGN, 0);
            assert!(s.addr >= prev_end, "sections must not overlap");
            prev_end = s.end();
        }
    }

    #[test]
    fn image_serialization_roundtrip_after_link() {
        let a = obj(
            "a.s",
            ".section text\n.global _start\n_start:\n call puts\n halt\n",
            false,
        );
        let img = link(&[a], &LinkOptions::executable("a.out").needs("libjc.so")).unwrap();
        let back = Image::from_bytes(&img.to_bytes()).unwrap();
        assert_eq!(img, back);
    }
}

#[cfg(test)]
mod error_tests {
    use super::*;
    use janitizer_obj::{Reloc, RelocKind, Section, SymBind, SymKind, Symbol};

    #[test]
    fn reloc_into_missing_section_is_rejected() {
        let mut obj = Object::new("bad.o");
        obj.sections.push(Section::new(SectionKind::Text, vec![0x6c]));
        obj.symbols.push(Symbol {
            name: "_start".into(),
            kind: SymKind::Func,
            bind: SymBind::Global,
            section: Some(SectionKind::Text),
            value: 0,
            size: 1,
        });
        // Relocation claims to patch .data, which the object lacks.
        obj.relocs.push(Reloc {
            section: SectionKind::Data,
            offset: 0,
            kind: RelocKind::Abs64,
            symbol: "_start".into(),
            addend: 0,
        });
        let err = link(&[obj], &LinkOptions::executable("bad")).unwrap_err();
        assert!(matches!(err, LinkError::BadReloc { .. }), "{err}");
    }

    #[test]
    fn undefined_data_symbol_becomes_loader_responsibility() {
        // An Abs64 against an undefined symbol must not fail the link; it
        // becomes a dynamic relocation for the loader.
        let mut obj = Object::new("d.o");
        let mut data = Section::new(SectionKind::Data, vec![0u8; 8]);
        data.addr = 0;
        obj.sections.push(data);
        obj.sections.push(Section::new(SectionKind::Text, {
            let mut v = Vec::new();
            janitizer_isa::Instr::Ret.encode(&mut v);
            v
        }));
        obj.symbols.push(Symbol {
            name: "_start".into(),
            kind: SymKind::Func,
            bind: SymBind::Global,
            section: Some(SectionKind::Text),
            value: 0,
            size: 1,
        });
        obj.relocs.push(Reloc {
            section: SectionKind::Data,
            offset: 0,
            kind: RelocKind::Abs64,
            symbol: "external_thing".into(),
            addend: 0,
        });
        let img = link(&[obj], &LinkOptions::executable("d").needs("libx.so")).unwrap();
        assert!(img
            .dyn_relocs
            .iter()
            .any(|r| matches!(&r.target, DynTarget::Symbol(s) if s == "external_thing")));
    }

    #[test]
    fn symbol_in_absent_section_does_not_panic() {
        // A hostile object can declare a symbol in a section kind it never
        // defines; the linker must not index into the layout map for it.
        let mut obj = Object::new("ghost.o");
        obj.sections.push(Section::new(SectionKind::Text, {
            let mut v = Vec::new();
            janitizer_isa::Instr::Ret.encode(&mut v);
            v
        }));
        obj.symbols.push(Symbol {
            name: "_start".into(),
            kind: SymKind::Func,
            bind: SymBind::Global,
            section: Some(SectionKind::Text),
            value: 0,
            size: 1,
        });
        obj.symbols.push(Symbol {
            name: "ghost".into(),
            kind: SymKind::Object,
            bind: SymBind::Global,
            section: Some(SectionKind::Data), // no data section exists
            value: 0x10,
            size: 8,
        });
        let img = link(&[obj], &LinkOptions::executable("ghost")).unwrap();
        assert!(img.symbol("ghost").is_none(), "ghost symbol has no address");
        assert!(img.symbol("_start").is_some());
    }

    #[test]
    fn oversized_bss_is_a_typed_error() {
        let mut obj = Object::new("big.o");
        obj.sections.push(Section::new(SectionKind::Text, {
            let mut v = Vec::new();
            janitizer_isa::Instr::Ret.encode(&mut v);
            v
        }));
        let mut huge = Section::zeroed(SectionKind::Bss, u64::MAX - 4);
        huge.addr = 0;
        obj.sections.push(huge);
        let mut huge2 = Section::zeroed(SectionKind::Bss, u64::MAX - 4);
        huge2.addr = 0;
        let mut obj2 = Object::new("big2.o");
        obj2.sections.push(huge2);
        obj.symbols.push(Symbol {
            name: "_start".into(),
            kind: SymKind::Func,
            bind: SymBind::Global,
            section: Some(SectionKind::Text),
            value: 0,
            size: 1,
        });
        let err = link(&[obj, obj2], &LinkOptions::executable("big")).unwrap_err();
        assert!(matches!(err, LinkError::ImageTooLarge { .. }), "{err}");
    }

    #[test]
    fn error_display_is_informative() {
        let e = LinkError::DuplicateSymbol {
            symbol: "f".into(),
            objects: ("a.o".into(), "b.o".into()),
        };
        assert!(format!("{e}").contains("duplicate symbol `f`"));
        let e = LinkError::MissingEntry("_start".into());
        assert!(format!("{e}").contains("_start"));
        let e = LinkError::RelocOutOfRange { symbol: "g".into() };
        assert!(format!("{e}").contains("out of range"));
    }
}
