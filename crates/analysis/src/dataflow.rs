//! Def-use chain tracing (paper §3.3.3, "SSA-level diffuse-chain
//! tracing").
//!
//! A generic building block for security analyses: for each register use,
//! find the definitions that may reach it. JASan-style tools use this to
//! relate a memory operand's base register back to, say, the return value
//! of an allocation call; taint-style tools follow the chains forward.

use crate::cfg::ModuleCfg;
use janitizer_isa::{Instr, Reg};
use std::collections::{BTreeMap, HashMap, HashSet};

/// A definition site of a register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Def {
    /// Defined by the instruction at this address.
    Insn(u64),
    /// Live into the function/blocks from an unknown producer (argument,
    /// cross-call value, unrecovered block).
    Entry,
}

/// Reaching definitions per block and a queryable def-use map.
#[derive(Clone, Debug, Default)]
pub struct DefUse {
    /// For each `(instruction, register)` use: the definitions that may
    /// reach it.
    reaching: HashMap<(u64, Reg), HashSet<Def>>,
}

impl DefUse {
    /// Definitions reaching the use of `reg` at `addr` (empty when the
    /// instruction was not recovered or does not use the register).
    pub fn defs_of_use(&self, addr: u64, reg: Reg) -> Vec<Def> {
        let mut v: Vec<Def> = self
            .reaching
            .get(&(addr, reg))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        v.sort_by_key(|d| match d {
            Def::Entry => (0u8, 0u64),
            Def::Insn(a) => (1, *a),
        });
        v
    }

    /// Whether the value used by `addr` in `reg` may come from the single
    /// instruction `def_addr` (a may-reach query).
    pub fn may_reach(&self, def_addr: u64, use_addr: u64, reg: Reg) -> bool {
        self.reaching
            .get(&(use_addr, reg))
            .map(|s| s.contains(&Def::Insn(def_addr)))
            .unwrap_or(false)
    }
}

type RegDefs = BTreeMap<Reg, HashSet<Def>>;

fn kill_and_gen(state: &mut RegDefs, addr: u64, insn: &Instr) {
    let defs = insn.defs();
    for r in Reg::ALL {
        if defs & r.bit() != 0 {
            let mut s = HashSet::new();
            s.insert(Def::Insn(addr));
            state.insert(r, s);
        }
    }
    // Calls clobber the caller-saved registers with unknown values.
    if matches!(insn, Instr::Call { .. } | Instr::CallInd { .. }) {
        for r in janitizer_isa::ABI::CALLER_SAVED {
            let mut s = HashSet::new();
            s.insert(Def::Entry);
            state.insert(r, s);
        }
        let mut s = HashSet::new();
        s.insert(Def::Insn(addr));
        state.insert(Reg::R0, s); // the return value
    }
}

/// Computes reaching definitions for every recovered instruction.
pub fn compute_def_use(cfg: &ModuleCfg) -> DefUse {
    // Block-level fixpoint: in-state per block.
    let mut in_state: HashMap<u64, RegDefs> = HashMap::new();
    let entry_state = || -> RegDefs {
        let mut m = RegDefs::new();
        for r in Reg::ALL {
            let mut s = HashSet::new();
            s.insert(Def::Entry);
            m.insert(r, s);
        }
        m
    };

    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < 32 {
        changed = false;
        rounds += 1;
        for (&start, block) in &cfg.blocks {
            let mut state = in_state.get(&start).cloned().unwrap_or_else(entry_state);
            for (addr, insn) in &block.insns {
                kill_and_gen(&mut state, *addr, insn);
            }
            for succ in &block.succs {
                if !cfg.blocks.contains_key(succ) {
                    continue;
                }
                let dst = in_state.entry(*succ).or_insert_with(entry_state);
                for (r, defs) in &state {
                    let d = dst.entry(*r).or_default();
                    let before = d.len();
                    d.extend(defs.iter().copied());
                    if d.len() != before {
                        changed = true;
                    }
                }
            }
        }
    }

    // Record per-use reaching sets.
    let mut du = DefUse::default();
    for (&start, block) in &cfg.blocks {
        let mut state = in_state.get(&start).cloned().unwrap_or_else(entry_state);
        for (addr, insn) in &block.insns {
            let uses = insn.uses();
            for r in Reg::ALL {
                if uses & r.bit() != 0 {
                    let defs = state.get(&r).cloned().unwrap_or_default();
                    du.reaching.insert((*addr, r), defs);
                }
            }
            kill_and_gen(&mut state, *addr, insn);
        }
    }
    du
}
