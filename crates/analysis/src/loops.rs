//! SCEV-lite loop analysis (paper §3.3.2).
//!
//! Finds natural loops, counted-loop trip bounds (a register stepped by a
//! constant and compared against a bound), and memory operands whose
//! address is **loop-invariant** — neither the base register nor the
//! displacement changes inside the loop. JASan uses the invariant set to
//! demote per-iteration shadow checks to a cached check (one full check on
//! the first iteration, a two-instruction address-cache hit afterwards).

use crate::cfg::ModuleCfg;
use janitizer_isa::{Instr, Reg};
use std::collections::{BTreeSet, HashMap};

/// A natural loop.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Loop {
    /// Loop header block address.
    pub header: u64,
    /// Addresses of the blocks in the loop body (including the header).
    pub body: BTreeSet<u64>,
    /// The back-edge source block.
    pub latch: u64,
    /// Registers written anywhere in the loop body.
    pub clobbered: u16,
    /// A detected counted induction variable, if any.
    pub induction: Option<Induction>,
}

/// A counted induction variable `r += step` bounded by a comparison.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Induction {
    /// The induction register.
    pub reg: Reg,
    /// Per-iteration step.
    pub step: i64,
}

/// A memory operand with a loop-invariant address.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InvariantAccess {
    /// Instruction address.
    pub instr_addr: u64,
    /// Header of the loop it is invariant in.
    pub loop_header: u64,
    /// True when the enclosing loop is *counted* (a recognized induction
    /// variable, SCEV-lite §3.3.2): the trip pattern is regular enough
    /// that a checker may hoist the access's shadow check to the first
    /// iteration and reuse its verdict while the shadow state is
    /// untouched.
    pub counted: bool,
}

/// Work budget for loop discovery, in predecessor-scan block visits.
/// The body-collection walk is quadratic in pathological CFGs (every
/// popped block rescans all blocks for predecessors); hostile inputs
/// must not be able to spin the analyzer. On exhaustion the loops found
/// so far are returned — strictly conservative: undetected loops just
/// mean fewer cached-check optimizations, never wrong ones.
const LOOP_SCAN_FUEL: u64 = 20_000_000;

/// Finds natural loops via DFS back edges (an edge `a -> h` where `h`
/// dominates `a` is approximated here by reachability: `h` reaches `a`
/// through loop-body blocks only — adequate for compiler-shaped CFGs).
///
/// Bounded by [`LOOP_SCAN_FUEL`]; exhaustion is telemetry-visible
/// (`analysis.fuel_exhausted`) and yields the partial (conservative)
/// result.
pub fn find_loops(cfg: &ModuleCfg) -> Vec<Loop> {
    let mut loops = Vec::new();
    let mut fuel = LOOP_SCAN_FUEL;
    for (&latch, block) in &cfg.blocks {
        for &succ in &block.succs {
            if succ > latch || !cfg.blocks.contains_key(&succ) {
                continue; // back edges go backwards in address order here
            }
            let header = succ;
            // Collect the body: blocks on paths header ->* latch, found by
            // walking backwards from the latch until the header.
            let mut body: BTreeSet<u64> = BTreeSet::new();
            body.insert(header);
            let mut work = vec![latch];
            while let Some(b) = work.pop() {
                if !body.insert(b) {
                    continue;
                }
                match fuel.checked_sub(cfg.blocks.len() as u64) {
                    Some(left) if crate::budget::charge(cfg.blocks.len() as u64) => fuel = left,
                    _ => {
                        janitizer_telemetry::counter_add("analysis.fuel_exhausted", 1);
                        janitizer_telemetry::event!(
                            "analysis.fuel_exhausted",
                            analysis = "loops",
                            found = loops.len(),
                        );
                        return loops;
                    }
                }
                // predecessors of b
                for (&pa, pb) in &cfg.blocks {
                    if pb.succs.contains(&b) && pa >= header && pa <= latch && !body.contains(&pa)
                    {
                        work.push(pa);
                    }
                }
            }
            // Validate: every body block lies in [header, latch].
            if body.iter().any(|b| *b < header || *b > latch) {
                continue;
            }
            let mut clobbered = 0u16;
            for b in &body {
                for (_, insn) in &cfg.blocks[b].insns {
                    clobbered |= insn.defs();
                    if matches!(insn, Instr::Call { .. } | Instr::CallInd { .. } | Instr::Syscall)
                    {
                        clobbered = 0xffff; // calls may clobber anything
                    }
                }
            }
            // Induction variable: exactly one `add r, imm` / `sub r, imm`
            // of a register that is also compared in the loop.
            let mut steps: HashMap<Reg, (i64, u32)> = HashMap::new();
            let mut compared: BTreeSet<Reg> = BTreeSet::new();
            for b in &body {
                for (_, insn) in &cfg.blocks[b].insns {
                    match insn {
                        Instr::AluRi {
                            op: janitizer_isa::AluOp::Add,
                            rd,
                            imm,
                        } => {
                            let e = steps.entry(*rd).or_insert((0, 0));
                            e.0 = *imm as i64;
                            e.1 += 1;
                        }
                        Instr::AluRi {
                            op: janitizer_isa::AluOp::Sub,
                            rd,
                            imm,
                        } => {
                            let e = steps.entry(*rd).or_insert((0, 0));
                            e.0 = -(*imm as i64);
                            e.1 += 1;
                        }
                        Instr::AluRi {
                            op: janitizer_isa::AluOp::Cmp,
                            rd,
                            ..
                        } => {
                            compared.insert(*rd);
                        }
                        Instr::AluRr {
                            op: janitizer_isa::AluOp::Cmp,
                            rd,
                            rs,
                        } => {
                            compared.insert(*rd);
                            compared.insert(*rs);
                        }
                        _ => {}
                    }
                }
            }
            let induction = steps
                .iter()
                .find(|(r, (_, n))| *n == 1 && compared.contains(r))
                .map(|(r, (step, _))| Induction { reg: *r, step: *step });
            loops.push(Loop {
                header,
                body,
                latch,
                clobbered,
                induction,
            });
        }
    }
    loops
}

/// Finds loads/stores inside loops whose operand address is invariant:
/// the base (and index, if present) registers are not clobbered anywhere
/// in the loop.
pub fn loop_invariant_accesses(cfg: &ModuleCfg, loops: &[Loop]) -> Vec<InvariantAccess> {
    let mut out = Vec::new();
    for lp in loops {
        if lp.clobbered == 0xffff {
            continue; // a call inside the loop spoils everything
        }
        for b in &lp.body {
            let Some(block) = cfg.blocks.get(b) else { continue };
            for (addr, insn) in &block.insns {
                let Some(m) = insn.mem_access() else { continue };
                // Stack-relative operands are already cheap; skip them.
                if m.base == Reg::SP || m.base == Reg::FP {
                    continue;
                }
                let mut addr_regs = m.base.bit();
                if let Some(i) = m.idx {
                    addr_regs |= i.bit();
                }
                if lp.clobbered & addr_regs == 0 {
                    out.push(InvariantAccess {
                        instr_addr: *addr,
                        loop_header: lp.header,
                        counted: lp.induction.is_some(),
                    });
                }
            }
        }
    }
    // One record per instruction; when nested loops disagree, the
    // counted variant wins deterministically (it enables hoisting).
    out.sort_by_key(|a| (a.instr_addr, !a.counted, a.loop_header));
    out.dedup_by_key(|a| a.instr_addr);
    out
}

/// Stack-frame size analysis: the `sub sp, N` in a recognized prologue.
pub fn frame_sizes(cfg: &ModuleCfg) -> HashMap<u64, u64> {
    let mut out = HashMap::new();
    for f in &cfg.functions {
        let Some(block) = cfg.blocks.get(&f.entry) else { continue };
        // push fp; mov fp, sp; sub sp, N
        for (_, insn) in block.insns.iter().take(4) {
            if let Instr::AluRi {
                op: janitizer_isa::AluOp::Sub,
                rd: Reg::R15,
                imm,
            } = insn
            {
                out.insert(f.entry, *imm as u64);
                break;
            }
        }
    }
    out
}
