//! Stack-canary pattern analysis (paper §3.3.3, Figure 6).
//!
//! Detects the compiler's canary idiom so that (a) the canary machinery
//! itself is never instrumented as an ordinary memory access, and (b)
//! JASan can poison the canary slot after the prologue stores it and
//! unpoison it right before the epilogue re-checks it, turning the canary
//! word into a detection redzone for the whole stack frame.

use crate::cfg::ModuleCfg;
use janitizer_isa::{AluOp, Instr, MemSize, Reg, TLS_CANARY_OFFSET};

/// One detected canary site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CanarySite {
    /// Entry of the enclosing function, when known.
    pub function: u64,
    /// Address of the prologue store `st8 [fp-8], rX`.
    pub store_addr: u64,
    /// Address of the instruction *after* the store — where poisoning is
    /// injected (Figure 6 injects at the following instruction).
    pub poison_at: u64,
    /// Frame-pointer displacement of the canary slot (negative).
    pub slot_disp: i32,
    /// Address of the epilogue's canary re-load `ld8 rY, [fp-8]` — where
    /// unpoisoning is injected (just before) and which must itself be
    /// exempt from sanitizer checks.
    pub check_load_addr: u64,
}

/// Scans the module for canary prologue/epilogue patterns.
pub fn find_canary_sites(cfg: &ModuleCfg) -> Vec<CanarySite> {
    let mut sites = Vec::new();
    for block in cfg.blocks.values() {
        // Prologue pattern: rdtls rX, 0x28 ; st8 [fp+disp], rX
        for w in block.insns.windows(2) {
            let (_, a) = w[0];
            let (st_addr, b) = w[1];
            let Instr::RdTls { rd, off } = a else { continue };
            if off != TLS_CANARY_OFFSET {
                continue;
            }
            let Instr::St {
                size: MemSize::B8,
                rs,
                base: Reg::FP,
                disp,
            } = b
            else {
                continue;
            };
            if rs != rd || disp >= 0 {
                continue;
            }
            // Epilogue: find `rdtls rY, 0x28; ld8 rZ, [fp+disp]; cmp` in
            // the same function.
            let func = cfg
                .function_containing(st_addr)
                .map(|f| (f.entry, f.entry + f.size.max(1)))
                .unwrap_or((block.start, block.end));
            let mut check_load = None;
            'search: for cand in cfg.blocks.values() {
                if cand.start < func.0 || cand.start >= func.1 {
                    continue;
                }
                for w2 in cand.insns.windows(3) {
                    let (_, x) = w2[0];
                    let (ld_addr, y) = w2[1];
                    let (_, z) = w2[2];
                    let Instr::RdTls { off: o2, .. } = x else { continue };
                    if o2 != TLS_CANARY_OFFSET {
                        continue;
                    }
                    let Instr::Ld {
                        size: MemSize::B8,
                        base: Reg::FP,
                        disp: d2,
                        ..
                    } = y
                    else {
                        continue;
                    };
                    if d2 != disp {
                        continue;
                    }
                    if !matches!(z, Instr::AluRr { op: AluOp::Cmp, .. }) {
                        continue;
                    }
                    if ld_addr == st_addr {
                        continue;
                    }
                    check_load = Some(ld_addr);
                    break 'search;
                }
            }
            let Some(check_load_addr) = check_load else { continue };
            // Poison point: the instruction following the store.
            let poison_at = block
                .insns
                .iter()
                .skip_while(|(a2, _)| *a2 != st_addr)
                .nth(1)
                .map(|(a2, _)| *a2)
                .unwrap_or(block.end);
            sites.push(CanarySite {
                function: func.0,
                store_addr: st_addr,
                poison_at,
                slot_disp: disp,
                check_load_addr,
            });
        }
    }
    sites.sort_by_key(|s| s.store_addr);
    sites.dedup_by_key(|s| s.store_addr);
    sites
}

/// Addresses of loads/stores that belong to canary machinery and must be
/// exempt from memory-access instrumentation.
pub fn canary_exempt_addrs(sites: &[CanarySite]) -> Vec<u64> {
    let mut v: Vec<u64> = sites
        .iter()
        .flat_map(|s| [s.store_addr, s.check_load_addr])
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}
