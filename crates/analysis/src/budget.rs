//! Deterministic per-analysis work budget.
//!
//! The PR 5 fuel constants bound each individual analysis against
//! hostile CFGs; the *budget* is the supervision-layer generalization: a
//! thread-local deadline, denominated in units of analysis work rather
//! than wall-clock time, armed by the analysis service before it runs a
//! module and checked afterwards. Exhaustion makes every bounded
//! analysis take its existing conservative bail-out early, so an
//! over-budget module still terminates promptly with sound (if
//! pessimistic) facts — and the service can observe [`overrun`] and
//! degrade the module ([`AnalysisTimeout`]) instead of persisting rules
//! derived from a truncated analysis.
//!
//! Wall-clock-free by design: the same module and the same budget always
//! exhaust at exactly the same point, on any machine, which keeps the
//! byte-parity and crash-recovery tests deterministic.
//!
//! [`AnalysisTimeout`]: https://docs.rs/janitizer-core

use std::cell::Cell;

/// Sentinel meaning "no budget armed" (the default for every thread).
pub const UNLIMITED: u64 = u64::MAX;

thread_local! {
    static REMAINING: Cell<u64> = const { Cell::new(UNLIMITED) };
    static OVERRUN: Cell<bool> = const { Cell::new(false) };
    static SPENT: Cell<u64> = const { Cell::new(0) };
}

/// Arms the current thread's analysis budget with `units` of work and
/// clears any previous overrun and spend meter. Pass [`UNLIMITED`] to
/// disarm.
pub fn set_budget(units: u64) {
    REMAINING.with(|r| r.set(units));
    OVERRUN.with(|o| o.set(false));
    SPENT.with(|s| s.set(0));
}

/// Disarms the budget and clears the overrun flag.
pub fn clear_budget() {
    set_budget(UNLIMITED);
}

/// Charges `units` of work against the armed budget. Returns `false`
/// once the budget is exhausted — callers bail to their conservative
/// result, exactly as on fuel exhaustion. With no budget armed this
/// always returns `true` and costs a few thread-local reads.
pub fn charge(units: u64) -> bool {
    SPENT.with(|s| s.set(s.get().saturating_add(units)));
    REMAINING.with(|r| {
        let left = r.get();
        if left == UNLIMITED {
            return true;
        }
        if let Some(n) = left.checked_sub(units) {
            r.set(n);
            true
        } else {
            r.set(0);
            let first = OVERRUN.with(|o| !o.replace(true));
            if first {
                janitizer_telemetry::counter_add("analysis.budget_exhausted", 1);
                janitizer_telemetry::event!("analysis.budget_exhausted");
            }
            false
        }
    })
}

/// Whether the armed budget has been exhausted since [`set_budget`].
pub fn overrun() -> bool {
    OVERRUN.with(|o| o.get())
}

/// Work units charged on this thread since the last [`set_budget`].
/// Meters even with no budget armed — the analysis service uses this as
/// the deterministic per-request cost sample (units of analysis work,
/// never wall time, so the resulting histogram is byte-stable across
/// hosts and thread counts).
pub fn spent() -> u64 {
    SPENT.with(|s| s.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_budget_never_exhausts() {
        clear_budget();
        for _ in 0..1000 {
            assert!(charge(u64::MAX / 2));
        }
        assert!(!overrun());
    }

    #[test]
    fn armed_budget_exhausts_exactly() {
        set_budget(10);
        assert!(charge(4));
        assert!(charge(6));
        assert!(!overrun(), "spending to exactly zero is within budget");
        assert!(!charge(1), "the first unit past the budget fails");
        assert!(overrun());
        assert!(!charge(1), "and stays failed");
        clear_budget();
        assert!(!overrun(), "disarming clears the overrun");
        assert!(charge(u64::MAX / 2));
    }

    #[test]
    fn rearming_resets() {
        set_budget(1);
        assert!(!charge(5));
        assert!(overrun());
        set_budget(5);
        assert!(!overrun());
        assert!(charge(5));
    }

    #[test]
    fn spend_meter_counts_with_and_without_budget() {
        clear_budget();
        let base = spent();
        charge(3);
        charge(4);
        assert_eq!(spent() - base, 7, "unlimited mode still meters");
        set_budget(10);
        assert_eq!(spent(), 0, "rearming resets the meter");
        charge(6);
        assert_eq!(spent(), 6);
        clear_budget();
    }
}
