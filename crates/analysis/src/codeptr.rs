//! Raw-binary code-pointer scanning (paper §4.2.1).
//!
//! BinCFI-style discovery of address-taken code: slide a window over every
//! section's raw bytes and collect values that land inside code sections.
//! Two refinements are exposed, matching the paper's comparison:
//!
//! * **BinCFI policy**: any scanned constant at an *instruction boundary*;
//! * **JCFI policy**: only constants that match a *function entry*.
//!
//! For PIC modules, absolute addresses never appear in the raw bytes —
//! they live in dynamic relocations (the GOT-offset case of the paper) —
//! so the scan also walks `dyn_relocs`.

use crate::cfg::ModuleCfg;
use janitizer_obj::{DynTarget, Image};
use std::collections::BTreeSet;

/// Results of a code-pointer scan.
#[derive(Clone, Debug, Default)]
pub struct CodePtrScan {
    /// Every scanned constant that lands inside a code section (the
    /// weakest filter — what load-time analysis of stripped binaries can
    /// check, paper §4.2.2).
    pub in_code: BTreeSet<u64>,
    /// Scanned constants that fall on recovered instruction boundaries
    /// (BinCFI's allowed-target set).
    pub at_insn_boundary: BTreeSet<u64>,
    /// The subset that also matches a known function entry (JCFI's
    /// refined set).
    pub at_func_entry: BTreeSet<u64>,
}

/// Scans `image` for code pointers, sliding byte-by-byte over all section
/// contents and walking PIC dynamic relocations.
pub fn scan_code_pointers(image: &Image, cfg: &ModuleCfg) -> CodePtrScan {
    let mut candidates: BTreeSet<u64> = BTreeSet::new();

    let code_range = |v: u64| -> bool {
        image
            .section_containing(v)
            .map(|s| s.kind.is_code())
            .unwrap_or(false)
    };

    // Raw byte scan: 8-byte window advancing one byte at a time.
    for sec in &image.sections {
        if sec.data.len() < 8 {
            continue;
        }
        for off in 0..=sec.data.len() - 8 {
            let v = u64::from_le_bytes(sec.data[off..off + 8].try_into().unwrap());
            if v != 0 && code_range(v) {
                candidates.insert(v);
            }
        }
    }
    // PIC: pointers materialize through dynamic relocations.
    for rel in &image.dyn_relocs {
        if let DynTarget::Base(v) = rel.target {
            if code_range(v) {
                candidates.insert(v);
            }
        }
    }
    // PIC code takes addresses PC-relatively (`lea rd, [pc+off]`) — the
    // paper's "offsets with respect to the GOT instead of absolute
    // addresses" case: check whether the offset lands on valid code.
    for block in cfg.blocks.values() {
        let mut iter = block.insns.iter().peekable();
        while let Some((addr, insn)) = iter.next() {
            if let janitizer_isa::Instr::LeaPc { disp, .. } = insn {
                let next = iter
                    .peek()
                    .map(|(a, _)| *a)
                    .unwrap_or(block.end)
                    .max(addr + 1);
                let target = next.wrapping_add(*disp as i64 as u64);
                if code_range(target) {
                    candidates.insert(target);
                }
            }
        }
    }

    let func_entries: BTreeSet<u64> = cfg.functions.iter().map(|f| f.entry).collect();
    let at_insn_boundary: BTreeSet<u64> = candidates
        .iter()
        .copied()
        .filter(|v| cfg.insn_boundaries.contains(v))
        .collect();
    let at_func_entry = at_insn_boundary
        .iter()
        .copied()
        .filter(|v| func_entries.contains(v))
        .collect();
    CodePtrScan {
        in_code: candidates,
        at_insn_boundary,
        at_func_entry,
    }
}
