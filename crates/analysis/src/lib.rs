//! # Janitizer's static analyzer (core layer)
//!
//! The offline half of the hybrid framework (paper §3.3, Figure 2a):
//! whole-module disassembly and CFG recovery over **all** executable
//! sections ([`analyze_module`]), register and arithmetic-flag liveness
//! with the inter-procedural `ipa-ra` patch ([`compute_liveness`]),
//! SCEV-lite loop and invariant-address analysis ([`find_loops`],
//! [`loop_invariant_accesses`]), stack-canary pattern detection
//! ([`find_canary_sites`]), def-use chain tracing ([`compute_def_use`])
//! and BinCFI-style raw-binary code-pointer scanning
//! ([`scan_code_pointers`]).
//!
//! Security tools (JASan, JCFI) consume these results through their
//! static passes and encode decisions as rewrite rules
//! (`janitizer-rules`) for the dynamic modifier.
//!
//! ```
//! use janitizer_asm::{assemble, AsmOptions};
//! use janitizer_link::{link, LinkOptions};
//! use janitizer_analysis::analyze_module;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let obj = assemble(
//!     "f.s",
//!     ".section text\n.global _start\n_start:\n cmp r0, 0\n je done\n sub r0, 1\ndone:\n ret\n",
//!     &AsmOptions::default(),
//! )?;
//! let image = link(&[obj], &LinkOptions::executable("a.out"))?;
//! let cfg = analyze_module(&image);
//! assert!(cfg.blocks.len() >= 2);
//! # Ok(())
//! # }
//! ```

pub mod backend;
pub mod budget;
mod canary;
mod cfg;
mod codeptr;
mod dataflow;
mod disasm;
mod liveness;
mod loops;

pub use backend::{
    backend_by_name, backends, disasm_backend, disasm_backend_name, set_disasm_backend,
    ConfidenceTier, DegradedRegion, DisasmBackend, DisasmResult, RegionCause, DEFAULT_BACKEND,
};
pub use canary::{canary_exempt_addrs, find_canary_sites, CanarySite};
pub use cfg::{
    analyze_module, analyze_module_seeded, read_pointer, Block, FuncEntry, JumpTable, ModuleCfg,
    Term,
};
pub use codeptr::{scan_code_pointers, CodePtrScan};
pub use dataflow::{compute_def_use, Def, DefUse};
pub use disasm::disassemble;
pub use liveness::{compute_liveness, Liveness, ALL_REGS};
pub use loops::{find_loops, frame_sizes, loop_invariant_accesses, Induction, InvariantAccess, Loop};
