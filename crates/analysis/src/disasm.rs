//! objdump-style disassembly listings.

use crate::cfg::ModuleCfg;
use janitizer_obj::Image;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders an objdump-like listing of every recovered block in `image`,
/// with section headers, symbol labels, raw bytes and decoded mnemonics.
///
/// Blocks the static analyzer could not discover are absent — exactly the
/// coverage gap the dynamic modifier later fills, so diffing two listings
/// (static vs executed) visualizes Figure 14.
pub fn disassemble(image: &Image, cfg: &ModuleCfg) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} format, {} bytes of code\n",
        image.name,
        if image.pic { "pic" } else { "non-pic" },
        image.code_bytes()
    );

    // Symbol lookup by address.
    let mut sym_at: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
    for s in image.functions() {
        sym_at.entry(s.value).or_default().push(&s.name);
    }
    for p in &image.plt {
        sym_at
            .entry(p.plt_offset)
            .or_default()
            .push(&p.symbol); // stub label
    }

    let mut last_section = None;
    for block in cfg.blocks.values() {
        let section = image.section_containing(block.start);
        if let Some(sec) = section {
            if last_section != Some(sec.kind) {
                let _ = writeln!(out, "Disassembly of section {}:", sec.kind.name());
                last_section = Some(sec.kind);
            }
        }
        if let Some(names) = sym_at.get(&block.start) {
            for n in names {
                let _ = writeln!(out, "\n{:#010x} <{}>:", block.start, n);
            }
        }
        for (addr, insn) in &block.insns {
            // Raw bytes.
            let mut bytes = Vec::new();
            insn.encode(&mut bytes);
            let hex: String = bytes.iter().map(|b| format!("{b:02x} ")).collect();
            let _ = writeln!(out, "  {addr:#010x}:  {hex:<31} {insn}");
        }
        match block.term {
            crate::cfg::Term::IndirectJump { resolved: false } => {
                let _ = writeln!(out, "  ; unresolved indirect jump");
            }
            crate::cfg::Term::IndirectJump { resolved: true } => {
                if let Some(jt) = cfg
                    .jump_tables
                    .iter()
                    .find(|j| block.insns.last().map(|(a, _)| *a) == Some(j.jmp_addr))
                {
                    let _ = writeln!(
                        out,
                        "  ; jump table at {:#x} with {} targets",
                        jt.table_addr,
                        jt.targets.len()
                    );
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::analyze_module;

    #[test]
    fn listing_contains_symbols_sections_and_bytes() {
        let src = ".section text\n.global _start\n_start:\n mov r0, 7\n call helper\n ret\n\
                   helper:\n add r0, 1\n ret\n";
        let o = janitizer_asm::assemble("t.s", src, &janitizer_asm::AsmOptions::default()).unwrap();
        let img =
            janitizer_link::link(&[o], &janitizer_link::LinkOptions::executable("t")).unwrap();
        let cfg = analyze_module(&img);
        let text = disassemble(&img, &cfg);
        assert!(text.contains("Disassembly of section .text"), "{text}");
        assert!(text.contains("<_start>:"));
        assert!(text.contains("<helper>:"));
        assert!(text.contains("mov r0, 7"));
        assert!(text.contains("ret"));
        // Raw encoding of `ret` (0x6c) appears as hex.
        assert!(text.contains("6c "));
    }

    #[test]
    fn listing_annotates_jump_tables_and_unresolved_jumps() {
        let src = ".section text\n.global _start\n_start:\n\
             cmp r0, 4\n jae def\n la r7, tbl\n ld8 r7, [r7+r0*8]\n jmp r7\n\
             a:\n ret\n b:\n ret\n def:\n la r1, a\n add r1, 1\n jmp r1\n\
             .section rodata\ntbl: .quad a, b, a, b\n";
        let o = janitizer_asm::assemble("t.s", src, &janitizer_asm::AsmOptions::default()).unwrap();
        let img =
            janitizer_link::link(&[o], &janitizer_link::LinkOptions::executable("t")).unwrap();
        let cfg = analyze_module(&img);
        let text = disassemble(&img, &cfg);
        assert!(text.contains("jump table at"), "{text}");
        assert!(text.contains("unresolved indirect jump"), "{text}");
    }
}
