//! Register and arithmetic-flag liveness (paper §3.3.2).
//!
//! Backward dataflow over each function's blocks. The results drive the
//! instrumentation optimization in JASan: a shadow check needs scratch
//! registers and clobbers the flags, so knowing what is *dead* at each
//! instrumentation point lets the dynamic modifier skip spills and flag
//! preservation. Indirect control flow with unknown targets is treated
//! conservatively ("we assume that all arithmetic flags are live").
//!
//! The module also computes the **inter-procedural** patch for the
//! `ipa-ra` hazard of §4.1.2: registers held live across a call site in
//! the caller are reported as `inbound` for the callee, so instrumentation
//! inside the callee will not use them as scratch even though a purely
//! intra-procedural view says they are dead.

use crate::cfg::{ModuleCfg, Term};
use janitizer_isa::{Instr, Reg, ABI};
use std::collections::HashMap;

/// All sixteen registers.
pub const ALL_REGS: u16 = 0xffff;

/// Liveness facts for one module.
#[derive(Clone, Debug, Default)]
pub struct Liveness {
    /// Registers live immediately **before** each instruction.
    pub live_before: HashMap<u64, u16>,
    /// Whether the flags are live immediately before each instruction.
    pub flags_live_before: HashMap<u64, bool>,
    /// For each function entry: caller-saved registers observed live
    /// across a call to it from within this module (the ipa-ra hazard
    /// set). Instrumentation in the callee must treat these as live.
    pub inbound: HashMap<u64, u16>,
}

impl Liveness {
    /// Registers that are safe to clobber before the instruction at
    /// `addr`: neither live-before, nor read by the instruction itself,
    /// nor the stack pointer. Unknown instructions get an empty set
    /// (fully conservative).
    pub fn dead_regs_at(&self, addr: u64, insn: &Instr) -> u16 {
        match self.live_before.get(&addr) {
            Some(live) => !(live | insn.uses() | Reg::SP.bit() | Reg::FP.bit()),
            None => 0,
        }
    }

    /// Whether instrumentation before `addr` must preserve the flags.
    /// Unknown addresses are conservatively live.
    pub fn flags_live_at(&self, addr: u64) -> bool {
        self.flags_live_before.get(&addr).copied().unwrap_or(true)
    }
}

/// Per-block summary used during the fixpoint.
#[derive(Clone, Copy, Default)]
struct BlockFacts {
    live_in: u16,
    flags_in: bool,
}

/// The registers assumed live at a return: the return value and everything
/// the caller expects preserved.
fn ret_live() -> u16 {
    ABI::RET.bit() | ABI::callee_saved_mask() | Reg::SP.bit()
}

/// Transfer function for one instruction (backward).
fn step(insn: &Instr, live_out: u16, flags_out: bool) -> (u16, bool) {
    let mut live = live_out;
    let mut flags = flags_out;
    match insn {
        Instr::Call { .. } | Instr::CallInd { .. } => {
            // The callee may read the argument registers and clobbers the
            // caller-saved set; it preserves callee-saved and sp. Flags
            // are clobbered by calls (not preserved across them).
            live &= !ABI::caller_saved_mask();
            let arg_mask: u16 = ABI::ARGS.iter().map(|r| r.bit()).sum();
            live |= arg_mask | Reg::SP.bit();
            if let Instr::CallInd { rs } = insn {
                live |= rs.bit();
            }
            flags = false;
        }
        Instr::Syscall => {
            live &= !Reg::R0.bit();
            let arg_mask: u16 = ABI::ARGS.iter().map(|r| r.bit()).sum();
            live |= arg_mask;
        }
        Instr::Ret => {
            live = ret_live();
            flags = false;
        }
        _ => {
            live &= !insn.defs();
            live |= insn.uses();
            if insn.uses_sp() {
                live |= Reg::SP.bit();
            }
            if insn.sets_flags() {
                flags = false;
            }
            if insn.reads_flags() {
                flags = true;
            }
        }
    }
    (live, flags)
}

/// Iteration fuel for the fixpoint: rounds before the analysis gives up
/// and falls back to fully conservative facts. Compiler-shaped CFGs
/// converge in a handful of rounds; hostile or degenerate CFGs must not
/// be able to spin the analyzer (ISSUE: resource guards), and — more
/// importantly — facts from a *non-converged* fixpoint may still be
/// optimistic and therefore unsound to optimize on.
const FIXPOINT_FUEL: u64 = 64;

/// Computes liveness for every recovered instruction in the module.
///
/// If the fixpoint does not converge within [`FIXPOINT_FUEL`] rounds the
/// result is an *empty* fact set — which every consumer already treats
/// as fully conservative ([`Liveness::dead_regs_at`] reports nothing
/// dead, [`Liveness::flags_live_at`] reports flags live) — and the
/// exhaustion is telemetry-visible (`analysis.fuel_exhausted`).
pub fn compute_liveness(cfg: &ModuleCfg) -> Liveness {
    let mut facts: HashMap<u64, BlockFacts> = HashMap::new();

    // Fixpoint over blocks (module-wide; function boundaries are handled
    // by the call/ret transfer functions).
    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < FIXPOINT_FUEL {
        // Service-armed work budget: one charge per block visited this
        // round. Exhaustion takes the same conservative bail as fuel.
        if !crate::budget::charge(cfg.blocks.len() as u64) {
            break;
        }
        changed = false;
        rounds += 1;
        for (&start, block) in cfg.blocks.iter().rev() {
            // live-out = union of successor live-ins; unknown successors
            // (unresolved indirect jumps) are fully conservative.
            let (mut live_out, mut flags_out) = match block.term {
                Term::Ret => (ret_live(), false),
                Term::Stop => (0, false),
                Term::IndirectJump { resolved: false } => (ALL_REGS, true),
                _ => {
                    let mut l = 0u16;
                    let mut f = false;
                    for s in &block.succs {
                        if let Some(bf) = facts.get(s) {
                            l |= bf.live_in;
                            f |= bf.flags_in;
                        } else if !cfg.blocks.contains_key(s) {
                            // Successor outside recovered code.
                            l = ALL_REGS;
                            f = true;
                        }
                    }
                    (l, f)
                }
            };
            for (_, insn) in block.insns.iter().rev() {
                let (l, f) = step(insn, live_out, flags_out);
                live_out = l;
                flags_out = f;
            }
            let entry = facts.entry(start).or_default();
            if entry.live_in != live_out || entry.flags_in != flags_out {
                entry.live_in = live_out;
                entry.flags_in = flags_out;
                changed = true;
            }
        }
    }
    janitizer_telemetry::counter_add("analysis.liveness.fixpoint_rounds", rounds);
    janitizer_telemetry::histogram_record("analysis.liveness.rounds_per_module", rounds);
    if changed {
        // Fuel exhausted before convergence: the block facts may still be
        // optimistic, so optimizing on them would be unsound. Fall back
        // to the empty (all-live) fact set.
        janitizer_telemetry::counter_add("analysis.fuel_exhausted", 1);
        janitizer_telemetry::event!("analysis.fuel_exhausted", analysis = "liveness", rounds = rounds);
        return Liveness::default();
    }

    // Final pass: record per-instruction facts and call-site inbound sets.
    let mut live_before = HashMap::new();
    let mut flags_live_before = HashMap::new();
    let mut inbound: HashMap<u64, u16> = HashMap::new();
    for block in cfg.blocks.values() {
        let (mut live_out, mut flags_out) = match block.term {
            Term::Ret => (ret_live(), false),
            Term::Stop => (0, false),
            Term::IndirectJump { resolved: false } => (ALL_REGS, true),
            _ => {
                let mut l = 0u16;
                let mut f = false;
                for s in &block.succs {
                    if let Some(bf) = facts.get(s) {
                        l |= bf.live_in;
                        f |= bf.flags_in;
                    } else if !cfg.blocks.contains_key(s) {
                        l = ALL_REGS;
                        f = true;
                    }
                }
                (l, f)
            }
        };
        // Walk backwards, recording facts *before* each instruction.
        for (addr, insn) in block.insns.iter().rev() {
            // `live_out` here is the liveness *after* `insn`. A direct
            // call whose live-after set still contains caller-saved
            // registers is an ipa-ra-style convention break: record it
            // against the callee.
            if let (Instr::Call { .. }, Some(target)) = (insn, block.call_target) {
                // r0 is excluded: it is live-after as the call's *result*,
                // not as a value held across the call.
                let hazard = live_out & ABI::caller_saved_mask() & !ABI::RET.bit();
                if hazard != 0 {
                    *inbound.entry(target).or_default() |= hazard;
                }
            }
            let (l, f) = step(insn, live_out, flags_out);
            live_before.insert(*addr, l);
            flags_live_before.insert(*addr, f);
            live_out = l;
            flags_out = f;
        }
    }

    Liveness {
        live_before,
        flags_live_before,
        inbound,
    }
}
