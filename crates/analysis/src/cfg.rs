//! Whole-module disassembly and control-flow recovery.
//!
//! Unlike Janus, which only builds control flow for `.text`, Janitizer
//! extends recovery to **all** executable sections (`.init`, `.plt`,
//! `.text`, `.fini`) so that every statically-reachable block can be
//! analyzed and marked (paper §3.3.1).
//!
//! Recovery is recursive-traversal seeded from the entry point, init/fini
//! routines, function symbols and PLT stubs, iterated to a fixpoint with
//! jump-table discovery. Indirect control transfers whose targets cannot
//! be resolved statically are recorded as unresolved — the blocks they
//! reach may be *missed*, which is precisely the gap the dynamic
//! modifier's fallback covers (Figure 14).

use janitizer_isa::{decode, Instr};
use janitizer_obj::{DynTarget, Image, SectionKind};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// How a basic block ends.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Term {
    /// Falls through into the next block (block was split by an incoming
    /// edge).
    FallThrough,
    /// Unconditional direct jump.
    Jump,
    /// Conditional branch (target + fallthrough).
    CondJump,
    /// Indirect jump; `resolved` is true when a jump table bound its
    /// targets.
    IndirectJump {
        /// Whether targets were recovered from a jump table.
        resolved: bool,
    },
    /// Direct call (successor is the fallthrough; the callee is a separate
    /// function entry).
    Call,
    /// Indirect call.
    IndirectCall,
    /// Return.
    Ret,
    /// `halt`, `trap`, or undecodable tail.
    Stop,
}

/// A recovered basic block.
#[derive(Clone, Debug)]
pub struct Block {
    /// Start address (image address space: module-relative for PIC).
    pub start: u64,
    /// Instructions as `(address, instruction)` pairs.
    pub insns: Vec<(u64, Instr)>,
    /// Address one past the last instruction.
    pub end: u64,
    /// Intra-procedural successors (branch targets and fallthroughs;
    /// for calls, the fallthrough only).
    pub succs: Vec<u64>,
    /// Direct call target, if the terminator is a call.
    pub call_target: Option<u64>,
    /// Terminator kind.
    pub term: Term,
}

impl Block {
    /// The terminator instruction with its address.
    pub fn terminator(&self) -> Option<&(u64, Instr)> {
        self.insns.last()
    }
}

/// A function entry discovered from symbols or direct-call targets.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FuncEntry {
    /// Best-known name (symbol name, or a synthesized `fn_<addr>`).
    pub name: String,
    /// Entry address.
    pub entry: u64,
    /// Size in bytes (0 when unknown).
    pub size: u64,
}

impl FuncEntry {
    /// Whether `addr` falls in the function's known range.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.entry && addr < self.entry + self.size.max(1)
    }
}

/// A recovered jump table.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JumpTable {
    /// Address of the indirect jump it feeds.
    pub jmp_addr: u64,
    /// Address of the table data.
    pub table_addr: u64,
    /// Recovered target addresses.
    pub targets: Vec<u64>,
}

/// The result of whole-module control-flow recovery.
#[derive(Clone, Debug, Default)]
pub struct ModuleCfg {
    /// Basic blocks keyed by start address.
    pub blocks: BTreeMap<u64, Block>,
    /// Known function entries, sorted by address.
    pub functions: Vec<FuncEntry>,
    /// Every recovered instruction start address (the "instruction
    /// boundary" set used by code-pointer scanning).
    pub insn_boundaries: BTreeSet<u64>,
    /// Recovered jump tables.
    pub jump_tables: Vec<JumpTable>,
    /// Addresses of indirect CTIs whose targets remain unknown.
    pub unresolved_indirect: Vec<u64>,
}

impl ModuleCfg {
    /// The function whose range contains `addr`, if any.
    pub fn function_containing(&self, addr: u64) -> Option<&FuncEntry> {
        self.functions.iter().find(|f| f.contains(addr))
    }

    /// The block containing the instruction at `addr`, if recovered.
    pub fn block_containing(&self, addr: u64) -> Option<&Block> {
        self.blocks
            .range(..=addr)
            .next_back()
            .map(|(_, b)| b)
            .filter(|b| addr < b.end)
    }

    /// Total number of recovered instructions.
    pub fn insn_count(&self) -> usize {
        self.blocks.values().map(|b| b.insns.len()).sum()
    }
}

/// Reads an 8-byte pointer from the image, honouring dynamic relocations
/// (PIC jump tables store their targets as `Base` relocations, not bytes).
pub fn read_pointer(image: &Image, addr: u64) -> Option<u64> {
    if let Some(rel) = image.dyn_relocs.iter().find(|r| r.offset == addr) {
        return match &rel.target {
            DynTarget::Base(off) => Some(*off),
            DynTarget::Symbol(_) => None,
        };
    }
    let sec = image.section_containing(addr)?;
    let off = (addr - sec.addr) as usize;
    let bytes = sec.data.get(off..off + 8)?;
    Some(u64::from_le_bytes(bytes.try_into().unwrap()))
}

fn fetch(image: &Image, addr: u64) -> Option<(Instr, u64)> {
    let sec = image.section_containing(addr)?;
    if !sec.kind.is_code() {
        return None;
    }
    let off = (addr - sec.addr) as usize;
    let (insn, next) = decode(&sec.data, off).ok()?;
    Some((insn, addr + (next - off) as u64))
}

/// Recovers control flow for all executable sections of `image`.
pub fn analyze_module(image: &Image) -> ModuleCfg {
    analyze_module_seeded(image, &[])
}

/// Like [`analyze_module`], but with `extra_seeds` added to the
/// traversal roots. Disassembly backends that recover entry points the
/// symbol/entry seeding cannot see (data-section code pointers, anchor
/// markers) re-run recovery through this entry; with no extra seeds the
/// result is identical to [`analyze_module`].
pub fn analyze_module_seeded(image: &Image, extra_seeds: &[u64]) -> ModuleCfg {
    // ---- seeds: entry, init, fini, function symbols, PLT stubs.
    let mut seeds: BTreeSet<u64> = BTreeSet::new();
    seeds.extend(extra_seeds.iter().copied());
    if !image.shared && image.entry != 0 {
        seeds.insert(image.entry);
    }
    if let Some(i) = image.init {
        seeds.insert(i);
    }
    if let Some(f) = image.fini {
        seeds.insert(f);
    }
    for s in image.functions() {
        seeds.insert(s.value);
    }
    if let Some(plt) = image.section(SectionKind::Plt) {
        // plt0 and each stub.
        let mut a = plt.addr;
        while a < plt.end() {
            seeds.insert(a);
            a += 16;
        }
    }

    // ---- pass 1 (iterated): discover reachable instructions.
    let mut insn_at: HashMap<u64, (Instr, u64)> = HashMap::new();
    let mut leaders: BTreeSet<u64> = seeds.clone();
    let mut call_targets: BTreeSet<u64> = BTreeSet::new();
    let mut jump_tables: Vec<JumpTable> = Vec::new();
    let mut resolved_ind: HashMap<u64, Vec<u64>> = HashMap::new();

    let mut frontier: Vec<u64> = seeds.iter().copied().collect();
    let mut seen: HashSet<u64> = HashSet::new();
    for _round in 0..8 {
        while let Some(start) = frontier.pop() {
            let mut pc = start;
            loop {
                if seen.contains(&pc) {
                    break;
                }
                let Some((insn, next)) = fetch(image, pc) else {
                    break;
                };
                seen.insert(pc);
                insn_at.insert(pc, (insn, next));
                match insn {
                    Instr::Jmp { rel } => {
                        let t = next.wrapping_add(rel as i64 as u64);
                        leaders.insert(t);
                        frontier.push(t);
                        break;
                    }
                    Instr::Jcc { rel, .. } => {
                        let t = next.wrapping_add(rel as i64 as u64);
                        leaders.insert(t);
                        leaders.insert(next);
                        frontier.push(t);
                        pc = next;
                    }
                    Instr::Call { rel } => {
                        let t = next.wrapping_add(rel as i64 as u64);
                        call_targets.insert(t);
                        leaders.insert(t);
                        leaders.insert(next);
                        frontier.push(t);
                        pc = next;
                    }
                    Instr::CallInd { .. } => {
                        leaders.insert(next);
                        pc = next;
                    }
                    Instr::JmpInd { .. } | Instr::Ret | Instr::Halt | Instr::Trap => break,
                    // The dynamic modifier ends blocks at syscalls, so the
                    // static analyzer must mark the continuation as a
                    // block of its own or it would misclassify as
                    // dynamically-discovered code.
                    Instr::Syscall => {
                        leaders.insert(next);
                        pc = next;
                    }
                    _ => pc = next,
                }
            }
        }

        // Jump-table discovery over the instructions found so far: look
        // for `cmp rI, N` ... `jae _` ... `la rT, TBL` ... `ld8 rT,
        // [rT + rI*8]` ... `jmp rT` within a window.
        let mut new_targets = Vec::new();
        let addrs: Vec<u64> = insn_at.keys().copied().collect();
        for &a in &addrs {
            let Some(&(Instr::JmpInd { rs }, _)) = insn_at.get(&a) else {
                continue;
            };
            if resolved_ind.contains_key(&a) {
                continue;
            }
            // Walk backwards up to 8 instructions collecting the pattern.
            let mut window = Vec::new();
            let mut cur = a;
            for _ in 0..8 {
                let Some((&prev, _)) = insn_at.iter().find(|(_, (_, next))| *next == cur) else {
                    break;
                };
                window.push(prev);
                cur = prev;
            }
            let mut table_addr: Option<u64> = None;
            let mut idx_reg = None;
            let mut bound: Option<u64> = None;
            for &w in &window {
                match insn_at[&w].0 {
                    Instr::LdIdx {
                        rd,
                        base,
                        idx,
                        scale: 3,
                        disp: 0,
                        ..
                    } if rd == rs && base == rs => idx_reg = Some(idx),
                    Instr::MovI64 { rd, imm } if rd == rs => table_addr = Some(imm),
                    Instr::LeaPc { rd, disp } if rd == rs => {
                        let (_, next) = insn_at[&w];
                        table_addr = Some(next.wrapping_add(disp as i64 as u64));
                    }
                    Instr::AluRi {
                        op: janitizer_isa::AluOp::Cmp,
                        rd,
                        imm,
                    } if Some(rd) == idx_reg && imm > 0 => bound = Some(imm as u64),
                    _ => {}
                }
            }
            if let (Some(tbl), Some(n)) = (table_addr, bound) {
                let n = n.min(4096);
                let mut targets = Vec::new();
                for i in 0..n {
                    match read_pointer(image, tbl + i * 8) {
                        Some(t) if image
                            .section_containing(t)
                            .map(|s| s.kind.is_code())
                            .unwrap_or(false) =>
                        {
                            targets.push(t)
                        }
                        _ => break,
                    }
                }
                if !targets.is_empty() {
                    for &t in &targets {
                        leaders.insert(t);
                        new_targets.push(t);
                    }
                    resolved_ind.insert(a, targets.clone());
                    jump_tables.push(JumpTable {
                        jmp_addr: a,
                        table_addr: tbl,
                        targets,
                    });
                }
            }
        }
        if new_targets.is_empty() {
            break;
        }
        frontier = new_targets;
    }

    // ---- pass 2: group instructions into blocks at leaders.
    let mut blocks: BTreeMap<u64, Block> = BTreeMap::new();
    let mut unresolved = Vec::new();
    let leader_list: Vec<u64> = leaders
        .iter()
        .copied()
        .filter(|l| insn_at.contains_key(l))
        .collect();
    for &start in &leader_list {
        if blocks.contains_key(&start) {
            continue;
        }
        let mut insns = Vec::new();
        let mut pc = start;
        let (term, succs, call_target, end) = loop {
            let Some(&(insn, next)) = insn_at.get(&pc) else {
                break (Term::Stop, Vec::new(), None, pc);
            };
            insns.push((pc, insn));
            match insn {
                Instr::Jmp { rel } => {
                    let t = next.wrapping_add(rel as i64 as u64);
                    break (Term::Jump, vec![t], None, next);
                }
                Instr::Jcc { rel, .. } => {
                    let t = next.wrapping_add(rel as i64 as u64);
                    break (Term::CondJump, vec![t, next], None, next);
                }
                Instr::Call { rel } => {
                    let t = next.wrapping_add(rel as i64 as u64);
                    break (Term::Call, vec![next], Some(t), next);
                }
                Instr::CallInd { .. } => break (Term::IndirectCall, vec![next], None, next),
                Instr::JmpInd { .. } => {
                    if let Some(ts) = resolved_ind.get(&pc) {
                        break (Term::IndirectJump { resolved: true }, ts.clone(), None, next);
                    }
                    unresolved.push(pc);
                    break (Term::IndirectJump { resolved: false }, Vec::new(), None, next);
                }
                Instr::Ret => break (Term::Ret, Vec::new(), None, next),
                Instr::Halt | Instr::Trap => break (Term::Stop, Vec::new(), None, next),
                Instr::Syscall => break (Term::FallThrough, vec![next], None, next),
                _ => {
                    if leaders.contains(&next) {
                        break (Term::FallThrough, vec![next], None, next);
                    }
                    pc = next;
                }
            }
        };
        blocks.insert(
            start,
            Block {
                start,
                insns,
                end,
                succs,
                call_target,
                term,
            },
        );
    }

    // ---- functions: symbols (authoritative) + direct-call targets.
    let mut functions: Vec<FuncEntry> = image
        .functions()
        .map(|s| FuncEntry {
            name: s.name.clone(),
            entry: s.value,
            size: s.size,
        })
        .collect();
    let known: HashSet<u64> = functions.iter().map(|f| f.entry).collect();
    for &t in &call_targets {
        if !known.contains(&t) {
            functions.push(FuncEntry {
                name: format!("fn_{t:x}"),
                entry: t,
                size: 0,
            });
        }
    }
    functions.sort_by_key(|f| f.entry);
    // Infer missing sizes from the next function entry.
    for i in 0..functions.len() {
        if functions[i].size == 0 {
            let next = functions.get(i + 1).map(|f| f.entry).unwrap_or(u64::MAX);
            functions[i].size = next.saturating_sub(functions[i].entry);
        }
    }

    let cfg = ModuleCfg {
        insn_boundaries: insn_at.keys().copied().collect(),
        blocks,
        functions,
        jump_tables,
        unresolved_indirect: unresolved,
    };
    if janitizer_telemetry::enabled() {
        janitizer_telemetry::counter_add("analysis.cfg.jump_tables", cfg.jump_tables.len() as u64);
        janitizer_telemetry::counter_add(
            "analysis.cfg.unresolved_indirect",
            cfg.unresolved_indirect.len() as u64,
        );
        // Per-function size distribution: instructions whose address falls
        // in each recovered function's range.
        for f in &cfg.functions {
            let insns = cfg
                .insn_boundaries
                .range(f.entry..f.entry.saturating_add(f.size))
                .count() as u64;
            janitizer_telemetry::histogram_record("analysis.func_insns", insns);
        }
    }
    cfg
}
