//! Soundness-tiered disassembly backends.
//!
//! The recursive/linear hybrid of [`analyze_module`] trusts every decode
//! chain it reaches; on hostile modules (stripped symbols, data-in-code
//! islands, overlapping sequences, obfuscated jump tables) that trust is
//! misplaced in both directions — code is missed and data is decoded.
//! This module puts the disassembly strategy behind a [`DisasmBackend`]
//! trait with a registry, and grades every recovered block with a
//! [`ConfidenceTier`] so downstream rule emission can degrade *per
//! region* instead of per module:
//!
//! * `hybrid` — the existing recovery, unchanged, everything `Proven`.
//!   The default; benign modules produce byte-identical rules.
//! * `evidence` — Datalog-Disassembly-style weighted facts (valid decode
//!   chains, data-pointer corroboration, data-access overlap, alignment,
//!   padding penalties) propagated to a fixpoint. Corroborated chains
//!   the hybrid cannot reach are promoted to `Likely` code; blocks whose
//!   bytes are demonstrably read as data are demoted to `Unknown`;
//!   overlapping candidate sequences are resolved by aggregate weight
//!   and the losers recorded as conflicts.
//! * `cet-anchor` — the evidence backend plus CET-style landing-pad
//!   anchors ([`janitizer_obj::ANCHOR_SEQ`]) treated as sound indirect
//!   entry ground truth (`Proven` seeds).
//!
//! Tiers flow into rule emission: `Proven`/`Likely` blocks receive full
//! static instrumentation, `Unknown` blocks get *no* rules (not even the
//! no-op marker), so the run-time classifier misses them and the dynamic
//! fallback conservatively instruments exactly those regions.

use crate::cfg::{analyze_module, analyze_module_seeded, read_pointer, ModuleCfg};
use janitizer_isa::{decode, Instr, Reg};
use janitizer_obj::{Image, SectionKind};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};

/// How sure the backend is that a recovered block really is code.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ConfidenceTier {
    /// Sound by construction: reached from symbols/entry seeds (or a
    /// landing-pad anchor) through direct control flow.
    Proven,
    /// Recovered from corroborated evidence (weighted-fact fixpoint);
    /// instrumented statically, but not ground truth.
    Likely,
    /// Contradictory evidence — the bytes may not be code. Degraded to
    /// the dynamic fallback per region.
    Unknown,
    /// Demonstrably accessed as data.
    Data,
}

impl ConfidenceTier {
    /// Stable label for telemetry and summaries.
    pub fn as_str(&self) -> &'static str {
        match self {
            ConfidenceTier::Proven => "proven",
            ConfidenceTier::Likely => "likely",
            ConfidenceTier::Unknown => "unknown",
            ConfidenceTier::Data => "data",
        }
    }
}

/// Why a byte region was degraded below static instrumentation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegionCause {
    /// The region's bytes carry contradictory code/data evidence.
    LowConfidence,
    /// Two overlapping candidate decode sequences claimed the region and
    /// weight resolution rejected this one.
    Conflict,
}

impl RegionCause {
    /// Stable label for telemetry and summaries.
    pub fn as_str(&self) -> &'static str {
        match self {
            RegionCause::LowConfidence => "low-confidence",
            RegionCause::Conflict => "conflict",
        }
    }
}

/// A byte region (image address space) the backend degraded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DegradedRegion {
    /// First byte of the region.
    pub start: u64,
    /// Region length in bytes.
    pub len: u64,
    /// Why it was degraded.
    pub cause: RegionCause,
}

/// The output of one backend's whole-module recovery.
#[derive(Clone, Debug)]
pub struct DisasmResult {
    /// Recovered control flow (superset of the hybrid's for promoting
    /// backends).
    pub cfg: ModuleCfg,
    /// Per-block confidence, keyed by block start. Blocks absent from
    /// the map are `Proven` — the hybrid backend stores nothing.
    pub tiers: BTreeMap<u64, ConfidenceTier>,
    /// Regions degraded to the dynamic fallback, sorted by start.
    pub degraded: Vec<DegradedRegion>,
    /// `(addr, len)` byte ranges proven to be accessed as data.
    pub data_regions: Vec<(u64, u64)>,
    /// Name of the backend that produced this result.
    pub backend: &'static str,
}

impl DisasmResult {
    /// The confidence tier of the byte at `addr`.
    pub fn tier_at(&self, addr: u64) -> ConfidenceTier {
        if self
            .data_regions
            .iter()
            .any(|&(s, l)| addr >= s && addr < s + l)
        {
            return ConfidenceTier::Data;
        }
        match self.cfg.block_containing(addr) {
            Some(b) => self
                .tiers
                .get(&b.start)
                .copied()
                .unwrap_or(ConfidenceTier::Proven),
            None => ConfidenceTier::Unknown,
        }
    }

    /// Block starts carrying the given tier (for `Proven`, only blocks
    /// explicitly stored — callers treat absent blocks as proven).
    pub fn blocks_with_tier(&self, tier: ConfidenceTier) -> impl Iterator<Item = u64> + '_ {
        self.tiers
            .iter()
            .filter(move |(_, t)| **t == tier)
            .map(|(s, _)| *s)
    }
}

/// A pluggable whole-module disassembly strategy.
pub trait DisasmBackend: Sync {
    /// Registry name (`--disasm-backend <name>`).
    fn name(&self) -> &'static str;
    /// One-line description for listings.
    fn describe(&self) -> &'static str;
    /// Recovers control flow and confidence tiers for `image`.
    fn analyze(&self, image: &Image) -> DisasmResult;
}

// ---------------------------------------------------------------------
// hybrid — the existing recovery behind the trait, byte-for-byte.
// ---------------------------------------------------------------------

/// The pre-existing recursive/linear hybrid recovery. Everything it
/// finds is reported `Proven` and nothing is degraded, so rule emission
/// is byte-identical to the era before backends existed.
pub struct HybridBackend;

impl DisasmBackend for HybridBackend {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn describe(&self) -> &'static str {
        "recursive/linear hybrid seeded from symbols and entry points (default)"
    }

    fn analyze(&self, image: &Image) -> DisasmResult {
        DisasmResult {
            cfg: analyze_module(image),
            tiers: BTreeMap::new(),
            degraded: Vec::new(),
            data_regions: Vec::new(),
            backend: "hybrid",
        }
    }
}

// ---------------------------------------------------------------------
// evidence — weighted boundary facts to a fixpoint.
// ---------------------------------------------------------------------

/// Fact weights (Datalog-Disassembly-style, scaled to small integers).
/// A candidate chain is promoted when its aggregate weight reaches
/// [`W_PROMOTE`].
mod weight {
    /// Every structurally valid decode chain earns this.
    pub const VALID_CHAIN: i32 = 1;
    /// Per referencing pointer found in `.rodata`.
    pub const RODATA_PTR: i32 = 3;
    /// Per referencing pointer found in writable `.data`.
    pub const DATA_PTR: i32 = 2;
    /// Target address is 8-byte aligned (function-entry convention).
    pub const ALIGNED: i32 = 1;
    /// A defined symbol names the target.
    pub const SYMBOL_HINT: i32 = 4;
    /// Chain decodes exclusively to `nop` — zero padding, not code.
    pub const ALL_NOP: i32 = -4;
    /// Degenerate chain (fewer than two instructions).
    pub const SHORT_CHAIN: i32 = -2;
    /// Promotion threshold.
    pub const W_PROMOTE: i32 = 4;
}

/// The weighted-evidence backend: hybrid recovery, then a fact pass that
/// promotes corroborated unreachable code and demotes contradicted
/// blocks.
pub struct EvidenceBackend;

impl DisasmBackend for EvidenceBackend {
    fn name(&self) -> &'static str {
        "evidence"
    }

    fn describe(&self) -> &'static str {
        "weighted boundary evidence (pointer corroboration, data-overlap demotion, conflict resolution)"
    }

    fn analyze(&self, image: &Image) -> DisasmResult {
        evidence_analyze(image, &[], "evidence")
    }
}

/// CET-style anchor backend: the evidence pipeline with landing-pad
/// markers ([`janitizer_obj::ANCHOR_SEQ`]) taken as sound indirect-entry
/// ground truth — anchored blocks seed recovery and stay `Proven`.
pub struct AnchorBackend;

impl DisasmBackend for AnchorBackend {
    fn name(&self) -> &'static str {
        "cet-anchor"
    }

    fn describe(&self) -> &'static str {
        "evidence backend plus landing-pad anchors as sound indirect-target ground truth"
    }

    fn analyze(&self, image: &Image) -> DisasmResult {
        let anchors = image.anchor_addrs();
        evidence_analyze(image, &anchors, "cet-anchor")
    }
}

/// A linearly decoded candidate instruction sequence.
struct Chain {
    start: u64,
    end: u64,
    /// Instruction start addresses, in order.
    starts: Vec<u64>,
    all_nop: bool,
}

/// Decodes a candidate chain at `start`: every instruction must decode,
/// every direct branch target must land in a code section, and the chain
/// must end at a terminator or merge into a known instruction boundary.
/// Chains that run misaligned into already-recovered code are rejected —
/// that disagreement is exactly the overlap the weights must not trust.
fn decode_chain(image: &Image, base: &ModuleCfg, start: u64) -> Option<Chain> {
    let spans: Vec<(u64, u64)> = base.blocks.values().map(|b| (b.start, b.end)).collect();
    let in_recovered = |a: u64| spans.iter().any(|&(s, e)| a >= s && a < e);
    let sec = image.section_containing(start)?;
    if !sec.kind.is_code() {
        return None;
    }
    let mut starts = Vec::new();
    let mut all_nop = true;
    let mut pc = start;
    for _ in 0..96 {
        if base.insn_boundaries.contains(&pc) {
            // Merges consistently into known code.
            return Some(Chain { start, end: pc, starts, all_nop });
        }
        if in_recovered(pc) {
            // Misaligned overlap with recovered code: contradictory.
            return None;
        }
        let sec = image.section_containing(pc)?;
        if !sec.kind.is_code() {
            return None;
        }
        let off = (pc - sec.addr) as usize;
        let (insn, next_off) = decode(&sec.data, off).ok()?;
        let next = pc + (next_off - off) as u64;
        starts.push(pc);
        if !matches!(insn, Instr::Nop) {
            all_nop = false;
        }
        // Direct targets must themselves be plausible code.
        let direct_target = match insn {
            Instr::Jmp { rel } | Instr::Jcc { rel, .. } | Instr::Call { rel } => {
                Some(next.wrapping_add(rel as i64 as u64))
            }
            _ => None,
        };
        if let Some(t) = direct_target {
            let ok = image
                .section_containing(t)
                .map(|s| s.kind.is_code())
                .unwrap_or(false);
            if !ok {
                return None;
            }
        }
        match insn {
            Instr::Jmp { .. }
            | Instr::JmpInd { .. }
            | Instr::Ret
            | Instr::Halt
            | Instr::Trap => {
                return Some(Chain { start, end: next, starts, all_nop });
            }
            _ => pc = next,
        }
    }
    // Ran past the window without terminating: not a credible function.
    None
}

/// Collects `data-access` facts: addresses inside code sections that the
/// recovered code demonstrably reads or writes *as data* (a constant
/// address materialized into a register and then used as a load/store
/// base within the same block).
fn collect_data_facts(image: &Image, cfg: &ModuleCfg) -> BTreeSet<u64> {
    fn dest_reg(i: &Instr) -> Option<Reg> {
        match *i {
            Instr::MovRr { rd, .. }
            | Instr::MovI64 { rd, .. }
            | Instr::MovI32 { rd, .. }
            | Instr::LeaPc { rd, .. }
            | Instr::Lea { rd, .. }
            | Instr::Ld { rd, .. }
            | Instr::LdIdx { rd, .. }
            | Instr::Neg { rd }
            | Instr::Not { rd }
            | Instr::Pop { rd }
            | Instr::RdTls { rd, .. } => Some(rd),
            Instr::AluRr { op, rd, .. } | Instr::AluRi { op, rd, .. } => {
                op.writes_dest().then_some(rd)
            }
            _ => None,
        }
    }
    let mut facts = BTreeSet::new();
    let in_code = |a: u64| {
        image
            .section_containing(a)
            .map(|s| s.kind.is_code())
            .unwrap_or(false)
    };
    for block in cfg.blocks.values() {
        let mut consts: HashMap<Reg, u64> = HashMap::new();
        for (idx, (_, insn)) in block.insns.iter().enumerate() {
            let base_reg = match *insn {
                Instr::Ld { base, .. }
                | Instr::St { base, .. }
                | Instr::LdIdx { base, .. }
                | Instr::StIdx { base, .. } => Some(base),
                _ => None,
            };
            if let Some(b) = base_reg {
                if let Some(&addr) = consts.get(&b) {
                    let disp = match *insn {
                        Instr::Ld { disp, .. }
                        | Instr::St { disp, .. }
                        | Instr::LdIdx { disp, .. }
                        | Instr::StIdx { disp, .. } => disp,
                        _ => 0,
                    };
                    let a = addr.wrapping_add(disp as i64 as u64);
                    if in_code(a) {
                        facts.insert(a);
                    }
                }
            }
            match *insn {
                Instr::MovI64 { rd, imm } => {
                    consts.insert(rd, imm);
                }
                Instr::MovI32 { rd, imm } => {
                    consts.insert(rd, imm as i64 as u64);
                }
                Instr::LeaPc { rd, disp } => {
                    // disp is relative to the next instruction.
                    let next = block
                        .insns
                        .get(idx + 1)
                        .map(|(a, _)| *a)
                        .unwrap_or(block.end);
                    consts.insert(rd, next.wrapping_add(disp as i64 as u64));
                }
                _ => {
                    if let Some(rd) = dest_reg(insn) {
                        consts.remove(&rd);
                    }
                }
            }
        }
    }
    facts
}

/// Scans non-code sections for 8-byte-aligned words that point into a
/// code section at an address the base recovery never decoded — the
/// corroboration facts for candidate chains. Returns
/// `target -> aggregate pointer weight`.
fn scan_pointer_facts(image: &Image, base: &ModuleCfg) -> BTreeMap<u64, i32> {
    let mut refs: BTreeMap<u64, i32> = BTreeMap::new();
    for sec in &image.sections {
        let w = match sec.kind {
            SectionKind::Rodata => weight::RODATA_PTR,
            SectionKind::Data => weight::DATA_PTR,
            _ => continue,
        };
        let mut a = sec.addr.next_multiple_of(8);
        while a + 8 <= sec.end() {
            if let Some(v) = read_pointer(image, a) {
                let is_code = image
                    .section_containing(v)
                    .map(|s| s.kind.is_code())
                    .unwrap_or(false);
                if is_code && !base.insn_boundaries.contains(&v) {
                    *refs.entry(v).or_insert(0) += w;
                }
            }
            a += 8;
        }
    }
    refs
}

/// The evidence pipeline shared by the `evidence` and `cet-anchor`
/// backends: base recovery, fact collection, weighted promotion with
/// overlap resolution, seeded re-recovery, and data-overlap demotion.
fn evidence_analyze(image: &Image, anchors: &[u64], backend: &'static str) -> DisasmResult {
    let base = analyze_module(image);
    let data_facts = collect_data_facts(image, &base);
    let ptr_facts = scan_pointer_facts(image, &base);
    let symbol_addrs: BTreeSet<u64> = image.symbols.iter().map(|s| s.value).collect();

    // Weigh candidate chains at every corroborated target.
    let mut candidates: Vec<(i32, Chain)> = Vec::new();
    for (&target, &ptr_w) in &ptr_facts {
        let Some(chain) = decode_chain(image, &base, target) else {
            continue;
        };
        let mut w = weight::VALID_CHAIN + ptr_w;
        if target % 8 == 0 {
            w += weight::ALIGNED;
        }
        if symbol_addrs.contains(&target) {
            w += weight::SYMBOL_HINT;
        }
        if chain.all_nop {
            w += weight::ALL_NOP;
        }
        if chain.starts.len() < 2 {
            w += weight::SHORT_CHAIN;
        }
        if w >= weight::W_PROMOTE {
            candidates.push((w, chain));
        }
    }

    // Resolve overlapping candidate sequences by aggregate weight:
    // heaviest first; a candidate whose bytes intersect an accepted
    // chain with disagreeing instruction starts is a conflict.
    candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.start.cmp(&b.1.start)));
    let mut accepted: Vec<Chain> = Vec::new();
    let mut degraded: Vec<DegradedRegion> = Vec::new();
    for (_, cand) in candidates {
        let overlap = accepted
            .iter()
            .find(|c| cand.start < c.end && c.start < cand.end);
        match overlap {
            None => accepted.push(cand),
            Some(winner) => {
                // Boundary agreement over the contested bytes: both chains
                // must place exactly the same instruction starts inside the
                // overlap. A chain that swallows the other's code as
                // immediate payload has no boundaries there at all — that
                // absence is itself the disagreement.
                let lo = cand.start.max(winner.start);
                let hi = cand.end.min(winner.end);
                let in_overlap = |a: &&u64| **a >= lo && **a < hi;
                let consistent = cand
                    .starts
                    .iter()
                    .filter(in_overlap)
                    .eq(winner.starts.iter().filter(in_overlap));
                if consistent {
                    accepted.push(cand);
                } else {
                    degraded.push(DegradedRegion {
                        start: cand.start,
                        len: cand.end - cand.start,
                        cause: RegionCause::Conflict,
                    });
                }
            }
        }
    }

    // Seeded re-recovery over the promoted entries (and anchors), run to
    // the same fixpoint as the base pass.
    let mut seeds: Vec<u64> = accepted.iter().map(|c| c.start).collect();
    seeds.extend(anchors.iter().copied());
    seeds.sort_unstable();
    seeds.dedup();
    let cfg = if seeds.is_empty() {
        base.clone()
    } else {
        analyze_module_seeded(image, &seeds)
    };

    // Tier assignment: base blocks stay Proven (absent from the map),
    // anchored entries are Proven ground truth, everything newly
    // recovered is Likely.
    let anchor_set: BTreeSet<u64> = anchors.iter().copied().collect();
    let mut tiers: BTreeMap<u64, ConfidenceTier> = BTreeMap::new();
    for &start in cfg.blocks.keys() {
        if !base.blocks.contains_key(&start) && !anchor_set.contains(&start) {
            tiers.insert(start, ConfidenceTier::Likely);
        }
    }

    // Demotion: a block whose bytes are demonstrably read as data mixes
    // code and data — degrade it (anchored entries stay sound).
    let mut data_regions: Vec<(u64, u64)> = Vec::new();
    for &fact in &data_facts {
        data_regions.push((fact, 1));
        let Some(b) = cfg.block_containing(fact) else {
            continue;
        };
        if anchor_set.contains(&b.start) {
            continue;
        }
        if tiers.insert(b.start, ConfidenceTier::Unknown) != Some(ConfidenceTier::Unknown) {
            degraded.push(DegradedRegion {
                start: b.start,
                len: b.end - b.start,
                cause: RegionCause::LowConfidence,
            });
        }
    }
    degraded.sort_by_key(|r| (r.start, r.len));
    degraded.dedup();

    if janitizer_telemetry::enabled() {
        janitizer_telemetry::counter_add("analysis.evidence.promoted", accepted.len() as u64);
        let conflicts = degraded
            .iter()
            .filter(|r| r.cause == RegionCause::Conflict)
            .count() as u64;
        janitizer_telemetry::counter_add("analysis.evidence.conflicts", conflicts);
        janitizer_telemetry::counter_add(
            "analysis.evidence.demoted",
            (degraded.len() as u64).saturating_sub(conflicts),
        );
        janitizer_telemetry::counter_add("analysis.anchor.seeds", anchors.len() as u64);
    }

    DisasmResult {
        cfg,
        tiers,
        degraded,
        data_regions,
        backend,
    }
}

// ---------------------------------------------------------------------
// Registry and process-global selection.
// ---------------------------------------------------------------------

static HYBRID: HybridBackend = HybridBackend;
static EVIDENCE: EvidenceBackend = EvidenceBackend;
static ANCHOR: AnchorBackend = AnchorBackend;

/// All registered backends; index 0 is the default.
pub fn backends() -> [&'static dyn DisasmBackend; 3] {
    [&HYBRID, &EVIDENCE, &ANCHOR]
}

/// Looks a backend up by registry name.
pub fn backend_by_name(name: &str) -> Option<&'static dyn DisasmBackend> {
    backends().into_iter().find(|b| b.name() == name)
}

/// The default backend's name.
pub const DEFAULT_BACKEND: &str = "hybrid";

static SELECTED: AtomicUsize = AtomicUsize::new(0);

/// Selects the process-global disassembly backend (the
/// `--disasm-backend` knob). Returns `false` (and leaves the selection
/// unchanged) when no backend has that name.
pub fn set_disasm_backend(name: &str) -> bool {
    let Some(i) = backends().iter().position(|b| b.name() == name) else {
        return false;
    };
    SELECTED.store(i, Ordering::Relaxed);
    true
}

/// The currently selected backend (default: `hybrid`).
pub fn disasm_backend() -> &'static dyn DisasmBackend {
    backends()[SELECTED.load(Ordering::Relaxed)]
}

/// Name of the currently selected backend.
pub fn disasm_backend_name() -> &'static str {
    disasm_backend().name()
}
