//! Static-analyzer tests over real toolchain output.

use janitizer_analysis::*;
use janitizer_asm::{assemble, AsmOptions};
use janitizer_isa::{Instr, Reg};
use janitizer_link::{link, LinkOptions};
use janitizer_minic::{compile, CanaryMode, CompileOptions};
use janitizer_obj::{Image, SectionKind};

fn image_from_asm(src: &str) -> Image {
    let o = assemble("t.s", src, &AsmOptions::default()).expect("asm");
    link(&[o], &LinkOptions::executable("t")).expect("link")
}

fn image_from_c(src: &str, opts: &CompileOptions) -> Image {
    let asm = compile(src, opts).expect("compile");
    let crt = ".section text\n.global __stack_chk_fail\n__stack_chk_fail:\n trap\n";
    let o1 = assemble("t.s", &asm, &AsmOptions::default()).expect("asm");
    let o2 = assemble("crt.s", crt, &AsmOptions::default()).expect("crt");
    link(&[o1, o2], &LinkOptions::executable("t")).expect("link")
}

#[test]
fn straightline_single_block() {
    let img = image_from_asm(".section text\n.global _start\n_start:\n mov r0, 1\n add r0, 2\n ret\n");
    let cfg = analyze_module(&img);
    assert_eq!(cfg.blocks.len(), 1);
    let b = cfg.blocks.values().next().unwrap();
    assert_eq!(b.insns.len(), 3);
    assert_eq!(b.term, Term::Ret);
    assert_eq!(cfg.insn_count(), 3);
}

#[test]
fn diamond_cfg() {
    let img = image_from_asm(
        ".section text\n.global _start\n_start:\n cmp r0, 0\n je iszero\n mov r1, 1\n jmp done\n\
         iszero:\n mov r1, 2\ndone:\n ret\n",
    );
    let cfg = analyze_module(&img);
    assert_eq!(cfg.blocks.len(), 4);
    let entry = cfg.blocks.values().next().unwrap();
    assert_eq!(entry.term, Term::CondJump);
    assert_eq!(entry.succs.len(), 2);
    // Both paths converge on the `done` block.
    let done = cfg
        .blocks
        .values()
        .find(|b| b.term == Term::Ret)
        .expect("ret block");
    let preds: usize = cfg
        .blocks
        .values()
        .filter(|b| b.succs.contains(&done.start))
        .count();
    assert_eq!(preds, 2);
}

#[test]
fn calls_create_function_entries() {
    let img = image_from_asm(
        ".section text\n.global _start\n_start:\n call worker\n ret\nworker:\n ret\n",
    );
    let cfg = analyze_module(&img);
    assert!(cfg.functions.iter().any(|f| f.name == "worker"));
    let entry_block = cfg.blocks.values().next().unwrap();
    assert_eq!(entry_block.term, Term::Call);
    assert!(entry_block.call_target.is_some());
}

#[test]
fn all_code_sections_are_analyzed() {
    // Unlike Janus, .init/.fini/.plt must be covered (paper §3.3.1).
    let img = image_from_asm(
        ".section init\nsetup:\n nop\n ret\n\
         .section text\n.global _start\n_start:\n call puts\n ret\n\
         .section fini\nteardown:\n ret\n",
    );
    let cfg = analyze_module(&img);
    let init = img.section(SectionKind::Init).unwrap().addr;
    let fini = img.section(SectionKind::Fini).unwrap().addr;
    let plt = img.section(SectionKind::Plt).unwrap().addr;
    assert!(cfg.blocks.contains_key(&init), ".init recovered");
    assert!(cfg.blocks.contains_key(&fini), ".fini recovered");
    assert!(
        cfg.blocks.keys().any(|&a| a >= plt && a < plt + 32),
        "PLT stubs recovered"
    );
}

#[test]
fn jump_table_recovered_in_nonpic() {
    let src = "long f(long x) { switch (x) {\
                 case 0: return 5; case 1: return 6; case 2: return 7;\
                 case 3: return 8; case 4: return 9; default: return 1; } }\
               long main() { return f(3); }";
    let img = image_from_c(
        src,
        &CompileOptions {
            emit_start: true,
            ..CompileOptions::default()
        },
    );
    let cfg = analyze_module(&img);
    assert_eq!(cfg.jump_tables.len(), 1, "one dense switch, one table");
    let jt = &cfg.jump_tables[0];
    assert_eq!(jt.targets.len(), 5);
    // All targets must be recovered blocks.
    for t in &jt.targets {
        assert!(cfg.blocks.contains_key(t), "table target {t:#x} is a block");
    }
    // And the indirect jump is resolved, not left unknown.
    assert!(cfg.unresolved_indirect.is_empty());
}

#[test]
fn jump_table_recovered_in_pic() {
    let src = "long f(long x) { switch (x) {\
                 case 0: return 5; case 1: return 6; case 2: return 7;\
                 case 3: return 8; case 4: return 9; default: return 1; } }";
    let asm = compile(src, &CompileOptions::default()).unwrap();
    let o = assemble("t.s", &asm, &AsmOptions { pic: true }).unwrap();
    let img = link(&[o], &LinkOptions::shared_object("libt.so")).unwrap();
    let cfg = analyze_module(&img);
    assert_eq!(
        cfg.jump_tables.len(),
        1,
        "PIC jump tables are found through dynamic relocations"
    );
    assert_eq!(cfg.jump_tables[0].targets.len(), 5);
}

#[test]
fn computed_goto_stays_unresolved() {
    // An indirect jump with no recognizable table: static analysis cannot
    // resolve it; the block it reaches is missed.
    let img = image_from_asm(
        ".section text\n.global _start\n_start:\n la r1, hidden\n jmp r1\n\
         hidden_unref:\n nop\nhidden:\n ret\n",
    );
    let cfg = analyze_module(&img);
    assert_eq!(cfg.unresolved_indirect.len(), 1);
}

#[test]
fn liveness_dead_scratch_registers() {
    // After `mov r1, r0`, r2..r13 are dead in this tiny function.
    let img = image_from_asm(
        ".section text\n.global _start\n_start:\n mov r1, r0\n add r1, 1\n st8 [r1], r0\n mov r0, r1\n ret\n",
    );
    let cfg = analyze_module(&img);
    let lv = compute_liveness(&cfg);
    let block = cfg.blocks.values().next().unwrap();
    let (st_addr, st) = block.insns[2];
    assert!(matches!(st, Instr::St { .. }));
    let dead = lv.dead_regs_at(st_addr, &st);
    // r0 and r1 are used by the store; r2 must be free.
    assert_eq!(dead & Reg::R0.bit(), 0);
    assert_eq!(dead & Reg::R1.bit(), 0);
    assert_ne!(dead & Reg::R2.bit(), 0, "r2 is dead scratch");
    assert_eq!(dead & Reg::SP.bit(), 0, "sp is never scratch");
}

#[test]
fn liveness_flags() {
    let img = image_from_asm(
        ".section text\n.global _start\n_start:\n cmp r0, 5\n st8 [r1], r0\n je yes\n ret\nyes:\n ret\n",
    );
    let cfg = analyze_module(&img);
    let lv = compute_liveness(&cfg);
    let block = cfg.blocks.values().next().unwrap();
    let (st_addr, _) = block.insns[1];
    assert!(
        lv.flags_live_at(st_addr),
        "flags live across the store (consumed by je)"
    );
    let (cmp_addr, _) = block.insns[0];
    assert!(
        !lv.flags_live_at(cmp_addr),
        "flags dead before the cmp that defines them"
    );
}

#[test]
fn liveness_conservative_at_unresolved_indirect() {
    let img = image_from_asm(
        ".section text\n.global _start\n_start:\n st8 [r1], r0\n jmp r2\n",
    );
    let cfg = analyze_module(&img);
    let lv = compute_liveness(&cfg);
    let block = cfg.blocks.values().next().unwrap();
    let (st_addr, st) = block.insns[0];
    assert_eq!(
        lv.dead_regs_at(st_addr, &st),
        0,
        "everything live before an unresolved indirect jump"
    );
    assert!(lv.flags_live_at(st_addr));
}

#[test]
fn ipa_ra_inbound_detection() {
    // With ipa_ra, `main` holds a value in a caller-saved register across
    // the call to `leaf`; liveness must report it as inbound for `leaf`.
    let src = "long leaf(long x) { return x + 1; }\
               long main() { long acc = 40; return acc + leaf(1); }";
    let img = image_from_c(
        src,
        &CompileOptions {
            ipa_ra: true,
            emit_start: true,
            ..CompileOptions::default()
        },
    );
    let cfg = analyze_module(&img);
    let lv = compute_liveness(&cfg);
    let leaf = cfg.functions.iter().find(|f| f.name == "leaf").unwrap();
    let inbound = lv.inbound.get(&leaf.entry).copied().unwrap_or(0);
    assert_ne!(
        inbound & 0b111100,
        0,
        "a hold register (r2-r5) must be reported inbound for leaf, got {inbound:#x}"
    );

    // Without ipa_ra there is no hazard.
    let img2 = image_from_c(
        src,
        &CompileOptions {
            emit_start: true,
            ..CompileOptions::default()
        },
    );
    let cfg2 = analyze_module(&img2);
    let lv2 = compute_liveness(&cfg2);
    let leaf2 = cfg2.functions.iter().find(|f| f.name == "leaf").unwrap();
    assert_eq!(lv2.inbound.get(&leaf2.entry).copied().unwrap_or(0) & 0b111100, 0);
}

#[test]
fn canary_sites_detected() {
    let src = "long main() { char buf[16]; buf[0] = 1; return buf[0]; }";
    let img = image_from_c(
        src,
        &CompileOptions {
            emit_start: true,
            canary: CanaryMode::Arrays,
            ..CompileOptions::default()
        },
    );
    let cfg = analyze_module(&img);
    let sites = find_canary_sites(&cfg);
    assert_eq!(sites.len(), 1, "one protected frame");
    let s = &sites[0];
    assert_eq!(s.slot_disp, -8);
    assert!(s.poison_at > s.store_addr);
    assert_ne!(s.check_load_addr, 0);
    let exempt = canary_exempt_addrs(&sites);
    assert!(exempt.contains(&s.store_addr));
    assert!(exempt.contains(&s.check_load_addr));
}

#[test]
fn no_canary_sites_without_protection() {
    let src = "long main() { return 7; }";
    let img = image_from_c(
        src,
        &CompileOptions {
            emit_start: true,
            canary: CanaryMode::Off,
            ..CompileOptions::default()
        },
    );
    let cfg = analyze_module(&img);
    assert!(find_canary_sites(&cfg).is_empty());
}

#[test]
fn loops_and_invariants() {
    // for-loop writing through an invariant pointer (r8-like base held in
    // a register the loop never writes).
    let img = image_from_asm(
        ".section text\n.global _start\n_start:\n\
         la r8, buf\n mov r2, 0\n\
         loop:\n ld8 r3, [r8]\n add r3, r2\n st8 [r8], r3\n add r2, 1\n cmp r2, 100\n jne loop\n\
         ret\n\
         .section data\nbuf: .quad 0\n",
    );
    let cfg = analyze_module(&img);
    let loops = find_loops(&cfg);
    assert_eq!(loops.len(), 1);
    let lp = &loops[0];
    assert!(lp.induction.is_some(), "counted loop detected");
    assert_eq!(lp.induction.unwrap().step, 1);
    let inv = loop_invariant_accesses(&cfg, &loops);
    assert_eq!(inv.len(), 2, "both [r8] accesses are invariant: {inv:?}");
}

#[test]
fn loop_with_call_has_no_invariants() {
    let img = image_from_asm(
        ".section text\n.global _start\n_start:\n\
         mov r2, 0\n\
         loop:\n ld8 r3, [r8]\n call helper\n add r2, 1\n cmp r2, 10\n jne loop\n ret\n\
         helper:\n ret\n",
    );
    let cfg = analyze_module(&img);
    let loops = find_loops(&cfg);
    let inv = loop_invariant_accesses(&cfg, &loops);
    assert!(inv.is_empty(), "calls clobber everything");
}

#[test]
fn frame_size_analysis() {
    let src = "long main() { long a[8]; a[0] = 1; return a[0]; }";
    let img = image_from_c(
        src,
        &CompileOptions {
            emit_start: true,
            ..CompileOptions::default()
        },
    );
    let cfg = analyze_module(&img);
    let frames = frame_sizes(&cfg);
    let main = cfg.functions.iter().find(|f| f.name == "main").unwrap();
    assert!(frames[&main.entry] >= 64, "frame holds the 64-byte array");
}

#[test]
fn code_pointer_scan_nonpic() {
    let img = image_from_asm(
        ".section text\n.global _start\n_start:\n ret\nhelper:\n ret\n\
         .section data\nfnptr: .quad helper\nnotptr: .quad 0x1234\n",
    );
    let cfg = analyze_module(&img);
    let scan = scan_code_pointers(&img, &cfg);
    let helper = img.symbol("helper").unwrap().value;
    assert!(scan.at_insn_boundary.contains(&helper));
    assert!(scan.at_func_entry.contains(&helper));
    assert!(!scan.at_insn_boundary.contains(&0x1234));
}

#[test]
fn code_pointer_scan_pic_via_relocs() {
    let o = assemble(
        "lib.s",
        ".section text\n.global api\napi:\n ret\n.section data\ncb: .quad api\n",
        &AsmOptions { pic: true },
    )
    .unwrap();
    let img = link(&[o], &LinkOptions::shared_object("libcb.so")).unwrap();
    let cfg = analyze_module(&img);
    let scan = scan_code_pointers(&img, &cfg);
    let api = img.symbol("api").unwrap().value;
    assert!(
        scan.at_func_entry.contains(&api),
        "PIC address-taken functions found through dyn relocs"
    );
}

#[test]
fn mid_instruction_constant_rejected() {
    // A constant that points into the middle of an instruction is not at
    // an instruction boundary and must be rejected (BinCFI's filter).
    let img = image_from_asm(
        ".section text\n.global _start\n_start:\n mov r0, 0x12345\n ret\n\
         .section data\nmid: .quad _start\n",
    );
    let cfg = analyze_module(&img);
    let scan = scan_code_pointers(&img, &cfg);
    let start = img.symbol("_start").unwrap().value;
    assert!(scan.at_insn_boundary.contains(&start));
    // Fabricate a mid-instruction pointer and verify the boundary filter
    // would reject it.
    assert!(!cfg.insn_boundaries.contains(&(start + 1)));
}

#[test]
fn def_use_chains() {
    let img = image_from_asm(
        ".section text\n.global _start\n_start:\n mov r1, 5\n mov r2, r1\n add r2, r1\n ret\n",
    );
    let cfg = analyze_module(&img);
    let du = compute_def_use(&cfg);
    let block = cfg.blocks.values().next().unwrap();
    let (mov_addr, _) = block.insns[0];
    let (use1_addr, _) = block.insns[1];
    let (use2_addr, _) = block.insns[2];
    assert!(du.may_reach(mov_addr, use1_addr, Reg::R1));
    assert!(du.may_reach(mov_addr, use2_addr, Reg::R1));
    assert_eq!(du.defs_of_use(use1_addr, Reg::R1), vec![Def::Insn(mov_addr)]);
}

#[test]
fn def_use_across_blocks_and_calls() {
    let img = image_from_asm(
        ".section text\n.global _start\n_start:\n mov r8, 7\n cmp r0, 0\n je skip\n call helper\n\
         skip:\n mov r1, r8\n mov r2, r0\n ret\nhelper:\n ret\n",
    );
    let cfg = analyze_module(&img);
    let du = compute_def_use(&cfg);
    // Find `mov r1, r8` and `mov r2, r0`.
    let all: Vec<(u64, Instr)> = cfg
        .blocks
        .values()
        .flat_map(|b| b.insns.iter().copied())
        .collect();
    let (def_addr, _) = all
        .iter()
        .find(|(_, i)| matches!(i, Instr::MovI32 { rd: Reg::R8, .. }))
        .unwrap();
    let (use_addr, _) = all
        .iter()
        .find(|(_, i)| matches!(i, Instr::MovRr { rs: Reg::R8, .. }))
        .unwrap();
    assert!(
        du.may_reach(*def_addr, *use_addr, Reg::R8),
        "callee-saved value survives the call path"
    );
    // r0 after the call path may come from the call (clobber), so the use
    // of r0 must have multiple reaching defs (entry/call and entry-only
    // path).
    let (use_r0, _) = all
        .iter()
        .find(|(_, i)| matches!(i, Instr::MovRr { rd: Reg::R2, rs: Reg::R0 }))
        .unwrap();
    assert!(!du.defs_of_use(*use_r0, Reg::R0).is_empty());
}

#[test]
fn block_and_function_queries() {
    let img = image_from_asm(
        ".section text\n.global _start\n_start:\n nop\n nop\n ret\nother:\n ret\n",
    );
    let cfg = analyze_module(&img);
    let start = img.symbol("_start").unwrap().value;
    assert_eq!(cfg.function_containing(start + 1).unwrap().name, "_start");
    let b = cfg.block_containing(start + 1).unwrap();
    assert_eq!(b.start, start);
    assert!(cfg.block_containing(0xdead_beef).is_none());
}
