//! Engine behaviour tests: caching, cost accounting, block shapes.

use janitizer_asm::{assemble, AsmOptions};
use janitizer_dbt::*;
use janitizer_link::{link, LinkOptions};
use janitizer_vm::{load_process, LoadOptions, ModuleStore, Process};

fn proc_from(src: &str) -> Process {
    let o = assemble("t.s", src, &AsmOptions::default()).unwrap();
    let img = link(&[o], &LinkOptions::executable("t")).unwrap();
    let mut store = ModuleStore::new();
    store.add(img);
    load_process(&store, "t", &LoadOptions::default()).unwrap()
}

#[test]
fn code_cache_reuses_blocks_across_iterations() {
    let src = ".section text\n.global _start\n_start:\n\
        mov r2, 1000\n\
        loop:\n sub r2, 1\n cmp r2, 0\n jne loop\n ret\n";
    let mut p = proc_from(src);
    let mut engine = Engine::new(EngineOptions::default());
    let out = engine.run(&mut p, &mut NullTool, 100_000_000);
    assert!(matches!(out, RunOutcome::Exited(_)));
    // 1000 iterations but only a handful of blocks translated.
    assert!(engine.stats.blocks_translated < 12, "{}", engine.stats.blocks_translated);
    assert!(engine.cached_blocks() > 0);
    engine.flush_cache();
    assert_eq!(engine.cached_blocks(), 0);
}

#[test]
fn translation_cost_is_paid_once_per_block() {
    let src = ".section text\n.global _start\n_start:\n\
        mov r2, 500\n\
        loop:\n sub r2, 1\n cmp r2, 0\n jne loop\n ret\n";
    let mut p1 = proc_from(src);
    let mut e1 = Engine::new(EngineOptions::default());
    e1.run(&mut p1, &mut NullTool, 100_000_000);

    // Double the iterations: translation cycles stay identical.
    let src2 = src.replace("500", "1000");
    let mut p2 = proc_from(&src2);
    let mut e2 = Engine::new(EngineOptions::default());
    e2.run(&mut p2, &mut NullTool, 100_000_000);
    assert_eq!(
        e1.stats.translation_cycles, e2.stats.translation_cycles,
        "translation is amortized"
    );
    assert!(p2.cycles > p1.cycles);
}

#[test]
fn indirect_transfers_pay_dispatch_every_time() {
    let src = ".section text\n.global _start\n_start:\n\
        mov r2, 100\n\
        loop:\n call leaf\n sub r2, 1\n cmp r2, 0\n jne loop\n ret\n\
        leaf:\n ret\n";
    let mut p = proc_from(src);
    let mut engine = Engine::new(EngineOptions::default());
    engine.run(&mut p, &mut NullTool, 100_000_000);
    // 100 leaf returns + the final return(s): every one is counted and
    // charged. Repeat targets hit the block's inlined target cache and
    // pay the cheaper chain_hit; new targets pay the full lookup.
    assert!(engine.stats.indirect_transfers >= 100);
    let s = &engine.stats;
    let c = EngineOptions::default().costs;
    assert!(s.indirect_chain_hits > 0, "repeat ret targets hit the inlined target cache");
    assert!(s.indirect_chain_hits < s.indirect_transfers, "first sighting always misses");
    assert_eq!(
        s.dispatch_cycles,
        (s.indirect_transfers - s.indirect_chain_hits) * c.indirect_lookup
            + s.indirect_chain_hits * c.chain_hit
    );
}

#[test]
fn max_block_splits_long_runs() {
    // 300 straight-line instructions with a tiny max_block.
    let mut src = String::from(".section text\n.global _start\n_start:\n");
    for _ in 0..300 {
        src.push_str(" nop\n");
    }
    src.push_str(" mov r0, 3\n ret\n");
    let mut p = proc_from(&src);
    let mut engine = Engine::new(EngineOptions {
        max_block: 16,
        ..EngineOptions::default()
    });
    let out = engine.run(&mut p, &mut NullTool, 100_000_000);
    assert_eq!(out.code(), Some(3));
    assert!(
        engine.stats.blocks_translated >= 300 / 16,
        "{} blocks",
        engine.stats.blocks_translated
    );
}

#[test]
fn zero_cost_model_adds_nothing() {
    let src = ".section text\n.global _start\n_start:\n\
        mov r2, 200\n\
        loop:\n sub r2, 1\n cmp r2, 0\n jne loop\n ret\n";
    let mut native = proc_from(src);
    native.run_native(100_000_000);

    let mut p = proc_from(src);
    let mut engine = Engine::new(EngineOptions {
        costs: CostModel {
            translate_per_insn: 0,
            block_build: 0,
            indirect_lookup: 0,
            chain_hit: 0,
            clean_call: 0,
        },
        ..EngineOptions::default()
    });
    engine.run(&mut p, &mut NullTool, 100_000_000);
    assert_eq!(
        p.cycles, native.cycles,
        "null tool + zero engine cost == native cycles"
    );
}

#[test]
fn indexed_cache_is_equivalent_across_engines_and_reruns() {
    // The indexed code cache (pc -> slot) must behave exactly like a
    // plain map: fresh engines agree bit-for-bit, a warm rerun reaches
    // the same outcome and guest-instruction count (minus retranslation),
    // and flushing forces a retranslation identical to the first run.
    let src = ".section text\n.global _start\n_start:\n\
        mov r2, 400\n\
        loop:\n call leaf\n sub r2, 1\n cmp r2, 0\n jne loop\n\
        mov r0, 42\n ret\n\
        leaf:\n ret\n";

    let mut p1 = proc_from(src);
    let mut e1 = Engine::new(EngineOptions::default());
    let o1 = e1.run(&mut p1, &mut NullTool, 100_000_000);

    let mut p2 = proc_from(src);
    let mut e2 = Engine::new(EngineOptions::default());
    let o2 = e2.run(&mut p2, &mut NullTool, 100_000_000);
    assert_eq!(o1.code(), o2.code());
    assert_eq!(p1.cycles, p2.cycles, "fresh engines are deterministic");
    assert_eq!(e1.stats.blocks_translated, e2.stats.blocks_translated);
    assert_eq!(e1.stats.guest_insns, e2.stats.guest_insns);
    assert_eq!(e1.stats.translation_cycles, e2.stats.translation_cycles);
    assert_eq!(e1.stats.dispatch_cycles, e2.stats.dispatch_cycles);

    // Warm rerun on the same engine: identical outcome and guest work,
    // zero additional translation (every dispatch is a cache hit).
    let translated_cold = e1.stats.blocks_translated;
    let cached = e1.cached_blocks();
    let dispatch_cold = e1.stats.dispatch_cycles;
    let hits_cold = e1.stats.indirect_chain_hits;
    assert!(cached > 0);
    let mut p3 = proc_from(src);
    let o3 = e1.run(&mut p3, &mut NullTool, 100_000_000);
    assert_eq!(o3.code(), o1.code());
    assert_eq!(e1.stats.blocks_translated, translated_cold, "warm cache retranslates nothing");
    assert_eq!(e1.cached_blocks(), cached);
    // Warm blocks keep their inlined indirect-target caches, so the warm
    // run saves exactly the translation cycles plus the dispatch delta
    // from first-sighting lookups that are now chain hits.
    let dispatch_warm = e1.stats.dispatch_cycles - dispatch_cold;
    assert!(e1.stats.indirect_chain_hits - hits_cold >= hits_cold, "warm targets only add hits");
    assert_eq!(
        p3.cycles,
        p1.cycles - e2.stats.translation_cycles - (dispatch_cold - dispatch_warm),
        "warm run saves translation plus warmed indirect-target lookups"
    );

    // Flush and rerun: retranslation repeats the cold run exactly.
    e1.flush_cache();
    assert_eq!(e1.cached_blocks(), 0);
    let mut p4 = proc_from(src);
    let o4 = e1.run(&mut p4, &mut NullTool, 100_000_000);
    assert_eq!(o4.code(), o1.code());
    assert_eq!(p4.cycles, p1.cycles);
    assert_eq!(e1.cached_blocks(), cached);
}

#[test]
fn stats_reset_between_engines_not_runs() {
    let src = ".section text\n.global _start\n_start:\n mov r0, 1\n ret\n";
    let mut engine = Engine::new(EngineOptions::default());
    let mut p1 = proc_from(src);
    engine.run(&mut p1, &mut NullTool, 1_000_000);
    let after_first = engine.stats.guest_insns;
    let mut p2 = proc_from(src);
    engine.run(&mut p2, &mut NullTool, 1_000_000);
    assert!(engine.stats.guest_insns > after_first, "stats accumulate");
}
