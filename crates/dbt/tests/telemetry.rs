//! Telemetry wiring of the DBT engine. These tests flip the process-wide
//! telemetry switch, so they live in their own binary (own process) and
//! serialize on a mutex.

use janitizer_asm::{assemble, AsmOptions};
use janitizer_dbt::{Engine, EngineOptions, NullTool};
use janitizer_link::{link, LinkOptions};
use janitizer_telemetry as telemetry;
use janitizer_vm::{load_process, LoadOptions, ModuleStore, Process};
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

const LOOP_SUM: &str = ".section text\n.global _start\n_start:\n\
    mov r0, 0\n mov r2, 10\n\
    loop:\n add r0, r2\n sub r2, 1\n cmp r2, 0\n jne loop\n ret\n";

fn proc_from(src: &str) -> Process {
    let o = assemble("t.s", src, &AsmOptions::default()).unwrap();
    let img = link(&[o], &LinkOptions::executable("t")).unwrap();
    let mut store = ModuleStore::new();
    store.add(img);
    load_process(&store, "t", &LoadOptions::default()).unwrap()
}

#[test]
fn telemetry_attributes_all_cycles() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Baseline with telemetry off.
    let mut base = proc_from(LOOP_SUM);
    let base_out = Engine::new(EngineOptions::default()).run(&mut base, &mut NullTool, 1_000_000);

    telemetry::install(Box::<telemetry::InMemoryCollector>::default());
    telemetry::set_enabled(true);
    let mut p = proc_from(LOOP_SUM);
    let mut engine = Engine::new(EngineOptions::default());
    let out = engine.run(&mut p, &mut NullTool, 1_000_000);
    telemetry::set_enabled(false);
    let reg = telemetry::snapshot();

    assert_eq!(out.code(), base_out.code());
    assert_eq!(
        p.cycles, base.cycles,
        "telemetry must not change the cost model"
    );
    assert_eq!(
        reg.total_span_cycles(),
        p.cycles,
        "span paths must attribute 100% of cycles"
    );
    assert_eq!(
        reg.spans["run;dbt;translate"].cycles,
        engine.stats.translation_cycles
    );
    assert_eq!(
        reg.spans["run;dbt;dispatch"].cycles,
        engine.stats.dispatch_cycles
    );
    assert_eq!(
        reg.counter("dbt.blocks_translated"),
        engine.stats.blocks_translated
    );
    assert_eq!(reg.counter("dbt.guest_insns"), engine.stats.guest_insns);
    assert_eq!(
        reg.histograms["dbt.block_insns"].count,
        engine.stats.blocks_translated
    );
    assert!(reg.event_counts["dbt.block_translated"] >= 2);
}

#[test]
fn disabled_telemetry_is_inert() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::install(Box::<telemetry::InMemoryCollector>::default());
    telemetry::set_enabled(false);
    let mut p = proc_from(LOOP_SUM);
    let mut engine = Engine::new(EngineOptions::default());
    engine.run(&mut p, &mut NullTool, 1_000_000);
    let reg = telemetry::snapshot();
    assert!(reg.spans.is_empty());
    assert!(reg.counters.is_empty());
    assert!(reg.events.is_empty());
    assert!(engine.stats.blocks_translated > 0, "stats still maintained");
}
