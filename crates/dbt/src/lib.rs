//! # The dynamic binary modifier engine
//!
//! A DynamoRIO-style dynamic binary translation core (paper Figure 2b,
//! "basic-block builder and dispatcher"): guest code is discovered one
//! basic block at a time as it becomes the target of a control transfer,
//! handed to a [`Tool`] for instrumentation, placed in a code cache, and
//! executed. The engine reproduces the *cost structure* of a real DBT
//! through a deterministic [`CostModel`]:
//!
//! * each block is translated once (per-instruction translation cost);
//! * direct transitions between cached blocks are linked and free;
//! * every executed **indirect** control transfer (`ret`, `call r`,
//!   `jmp r`) pays a hash-lookup penalty — the dominant source of
//!   null-client overhead;
//! * instrumentation pays per-probe costs that the tool computes (inline
//!   sequences are cheap, clean-call-style hooks expensive).
//!
//! Instrumentation is expressed as [`Probe`]s interleaved with guest
//! instructions. Probes run host-side but operate on **real guest state**:
//! a probe that claims scratch registers genuinely writes its
//! intermediate values into them (restoring them only if it also claims
//! to spill), so unsound scratch selection — the `ipa-ra` hazard of paper
//! §4.1.2 — breaks guest programs here exactly as it would on hardware.

use janitizer_isa::{Instr, Reg};
use janitizer_vm::{execute, Fault, PcMap, Process, ProcessEvent, Step};
use std::collections::BTreeMap;
use std::fmt;

/// A sorted set of non-overlapping byte intervals in a module's image
/// address space. The hybrid driver hands one per degraded module to its
/// block classifier so a cache miss inside a backend-degraded region is
/// attributed to the *region-scoped* dynamic fallback (as opposed to
/// code the static tier simply never saw).
#[derive(Clone, Debug, Default)]
pub struct RegionSet {
    /// `(start, end)` half-open intervals, sorted and merged.
    spans: Vec<(u64, u64)>,
}

impl RegionSet {
    /// Builds the set from `(start, len)` ranges, merging overlaps.
    pub fn from_ranges<I: IntoIterator<Item = (u64, u64)>>(ranges: I) -> RegionSet {
        let mut spans: Vec<(u64, u64)> = ranges
            .into_iter()
            .filter(|&(_, len)| len > 0)
            .map(|(s, len)| (s, s.saturating_add(len)))
            .collect();
        spans.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(spans.len());
        for (s, e) in spans {
            match merged.last_mut() {
                Some((_, pe)) if s <= *pe => *pe = (*pe).max(e),
                _ => merged.push((s, e)),
            }
        }
        RegionSet { spans: merged }
    }

    /// Whether `addr` falls inside any region.
    pub fn contains(&self, addr: u64) -> bool {
        match self.spans.partition_point(|&(s, _)| s <= addr) {
            0 => false,
            i => addr < self.spans[i - 1].1,
        }
    }

    /// Number of (merged) regions.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the set holds no regions.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

/// Deterministic cycle costs of the translation engine.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Per-guest-instruction translation cost, paid once per block build.
    pub translate_per_insn: u64,
    /// Fixed per-block build cost (allocation, linking).
    pub block_build: u64,
    /// Per-execution penalty of an indirect control transfer whose target
    /// misses the block's inlined target cache (full code-cache hash
    /// lookup; direct branches are linked and free).
    pub indirect_lookup: u64,
    /// Per-execution cost of an indirect transfer whose target *hits* the
    /// block's inlined single-entry target cache (the compare-and-branch
    /// in the exit stub, as in DynamoRIO's inlined indirect-branch
    /// lookup). Misses pay [`CostModel::indirect_lookup`] and install the
    /// new target.
    pub chain_hit: u64,
    /// Cost of a clean-call-style hook (full context switch), for tools
    /// that do not inline their instrumentation.
    pub clean_call: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            translate_per_insn: 50,
            block_build: 300,
            indirect_lookup: 22,
            chain_hit: 4,
            clean_call: 120,
        }
    }
}

/// The category of a security violation, shared by every tool so reports
/// and result files use one canonical vocabulary. `Display` (and
/// [`ViolationKind::as_str`]) produce the exact strings the tools
/// historically emitted, keeping `results/` output unchanged.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ViolationKind {
    /// JASan/Memcheck: access into a heap redzone or past an object.
    HeapBufferOverflow,
    /// JASan/Memcheck: access to freed (quarantined) heap memory.
    HeapUseAfterFree,
    /// JASan: access into a poisoned stack-canary slot.
    StackBufferOverflow,
    /// JASan: access to otherwise-poisoned memory.
    InvalidAccess,
    /// JCFI/CFI baselines: `ret` disagreed with the shadow stack.
    CfiReturn,
    /// JCFI/CFI baselines: indirect call to a disallowed target.
    CfiIcall,
    /// JCFI/CFI baselines: indirect jump to a disallowed target.
    CfiIjmp,
    /// JTaint: control transfer through tainted data.
    TaintedControlTransfer,
    /// Anything else (tests, experimental tools).
    Custom(&'static str),
}

impl ViolationKind {
    /// Canonical string form (the historical `kind` literal).
    pub fn as_str(&self) -> &'static str {
        match self {
            ViolationKind::HeapBufferOverflow => "heap-buffer-overflow",
            ViolationKind::HeapUseAfterFree => "heap-use-after-free",
            ViolationKind::StackBufferOverflow => "stack-buffer-overflow",
            ViolationKind::InvalidAccess => "invalid-access",
            ViolationKind::CfiReturn => "cfi-return-violation",
            ViolationKind::CfiIcall => "cfi-icall-violation",
            ViolationKind::CfiIjmp => "cfi-ijmp-violation",
            ViolationKind::TaintedControlTransfer => "tainted-control-transfer",
            ViolationKind::Custom(s) => s,
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&'static str> for ViolationKind {
    fn from(s: &'static str) -> ViolationKind {
        match s {
            "heap-buffer-overflow" => ViolationKind::HeapBufferOverflow,
            "heap-use-after-free" => ViolationKind::HeapUseAfterFree,
            "stack-buffer-overflow" => ViolationKind::StackBufferOverflow,
            "invalid-access" => ViolationKind::InvalidAccess,
            "cfi-return-violation" => ViolationKind::CfiReturn,
            "cfi-icall-violation" => ViolationKind::CfiIcall,
            "cfi-ijmp-violation" => ViolationKind::CfiIjmp,
            "tainted-control-transfer" => ViolationKind::TaintedControlTransfer,
            other => ViolationKind::Custom(other),
        }
    }
}

/// A security report raised by a probe (e.g. a JASan redzone hit or a JCFI
/// target violation).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Report {
    /// Guest PC of the instruction being guarded.
    pub pc: u64,
    /// Violation category.
    pub kind: ViolationKind,
    /// Human-readable details.
    pub details: String,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {:#x}: {}", self.kind, self.pc, self.details)
    }
}

/// Default bound on collected reports (and tool-side violation
/// contexts) for non-halting runs — generous, but finite.
pub const DEFAULT_MAX_REPORTS: usize = 10_000;

/// One row of an ASan-style shadow region map: eight shadow bytes
/// (guarding 64 application bytes) starting at application address
/// `base`. `None` marks an unmapped shadow granule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShadowRow {
    /// Application address of the row's first granule (64-byte aligned).
    pub base: u64,
    /// The eight shadow bytes.
    pub shadow: Vec<Option<u8>>,
}

/// JASan-specific context captured at the instant a shadow check fired.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JasanContext {
    /// Faulting application address.
    pub access_addr: u64,
    /// Access width in bytes.
    pub access_size: u64,
    /// Whether the access was a store.
    pub is_write: bool,
    /// Shadow byte guarding the faulting granule.
    pub shadow_byte: u8,
    /// Shadow region map rows around the faulting address.
    pub rows: Vec<ShadowRow>,
}

/// JCFI-specific context captured at the instant a CFI check fired.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JcfiContext {
    /// Kind of control transfer: `return`, `indirect-call` or
    /// `indirect-jump`.
    pub cti: &'static str,
    /// The target the guest actually attempted.
    pub actual: u64,
    /// The single expected target, when the policy has one (shadow-stack
    /// returns).
    pub expected: Option<u64>,
    /// Size of the allowed-target set at this site.
    pub allowed_count: u64,
    /// A deterministic sample of allowed targets (sorted, truncated).
    pub allowed_sample: Vec<u64>,
    /// Top of the shadow stack at violation time (most recent first).
    pub shadow_stack: Vec<u64>,
}

/// Tool-specific violation context, recorded by the plugin that raised
/// the report and rendered by the forensics layer (`janitizer-diag`).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum ToolContext {
    /// No tool-specific context was captured.
    #[default]
    None,
    /// JASan shadow-memory context.
    Jasan(JasanContext),
    /// JCFI expected-vs-actual target sets.
    Jcfi(JcfiContext),
}

/// Engine-side execution context captured when a probe reported a
/// violation: a register snapshot plus the trailing window of executed
/// blocks. Indexed in parallel with [`Stats::reports`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ViolationContext {
    /// Guest PC of the guarded instruction (same as the report's).
    pub pc: u64,
    /// All sixteen general-purpose registers at violation time.
    pub regs: [u64; 16],
    /// Packed condition flags ([`janitizer_isa::Flags::to_byte`]).
    pub flags: u8,
    /// Start addresses of the last executed blocks, oldest first; the
    /// final entry is the block containing the faulting pc.
    pub trail: Vec<u64>,
}

/// Result of running one probe.
#[derive(Debug)]
pub enum ProbeResult {
    /// Fast path: only the probe's base cost is charged.
    Ok,
    /// Slow path: charge additional cycles.
    Extra(u64),
    /// Fast path of a *fused lead* check: like [`ProbeResult::Ok`], but
    /// the probe additionally pre-served `n` follower checks in the same
    /// block (counted in [`Stats::checks_fused`]). Never changes charges.
    Fused(u32),
    /// A *hoisted* loop-invariant check whose cached verdict is still
    /// valid: the modeled check lives in the loop preheader, so this
    /// execution runs no check code at all — no cycles, no register or
    /// flag effects, not a probe run. Only valid from probes with
    /// `cost == 0`; counted in [`Stats::checks_hoisted`] and as a
    /// dynamically elided execution in the site profile.
    Hoisted,
    /// A security violation.
    Violation(Report),
}

/// The modeled instrumentation style of a probe: inline sequences are
/// cheap, clean-call hooks pay a full context switch. Used by the
/// profiler to attribute probe cycles by class; the probe's `cost`
/// already reflects the style, so this never changes execution.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ProbeClass {
    /// Inlined instruction sequence (JASan shadow checks, JCFI checks).
    Inline,
    /// Clean-call-style hook with a full context switch (Memcheck).
    CleanCall,
}

impl ProbeClass {
    /// Canonical string form for artifacts.
    pub fn as_str(&self) -> &'static str {
        match self {
            ProbeClass::Inline => "inline",
            ProbeClass::CleanCall => "clean-call",
        }
    }
}

/// Whether an instrumentation site was placed by a static rewrite rule
/// or by the dynamic fallback path (statically-unseen code).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SiteOrigin {
    /// Placed from a rule the static analyzer emitted.
    Static,
    /// Placed by the conservative dynamic fallback.
    Dynamic,
}

impl SiteOrigin {
    /// Canonical string form for artifacts.
    pub fn as_str(&self) -> &'static str {
        match self {
            SiteOrigin::Static => "static",
            SiteOrigin::Dynamic => "dynamic",
        }
    }
}

/// Identity of one instrumentation site: which tool placed what kind of
/// probe at which guest pc. The ordering (tool, kind, pc, …) makes
/// profile maps deterministic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProbeSite {
    /// Owning tool (`"jasan"`, `"jcfi"`, …).
    pub tool: &'static str,
    /// Probe kind within the tool (`"shadow-check"`, `"ret-check"`, …).
    pub kind: &'static str,
    /// Guest pc of the guarded instruction.
    pub pc: u64,
    /// Instrumentation style, for per-class attribution.
    pub class: ProbeClass,
    /// Static rule vs. dynamic fallback.
    pub origin: SiteOrigin,
}

/// A host-side instrumentation callback operating on guest state.
pub struct Probe {
    /// Cycles charged on every execution (the inline fast-path cost).
    pub cost: u64,
    /// The callback.
    pub run: Box<dyn FnMut(&mut Process) -> ProbeResult>,
    /// Site identity for profiling attribution. `None` (anonymous
    /// probes: tests, experiments) is attributed as an inline probe
    /// without a per-site row.
    pub site: Option<ProbeSite>,
}

impl Probe {
    /// An anonymous probe (no site attribution).
    pub fn new(cost: u64, run: Box<dyn FnMut(&mut Process) -> ProbeResult>) -> Probe {
        Probe { cost, run, site: None }
    }
}

impl fmt::Debug for Probe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Probe")
            .field("cost", &self.cost)
            .field("site", &self.site)
            .finish()
    }
}

/// One element of a translated block.
#[derive(Debug)]
pub enum TbItem {
    /// An original guest instruction `(pc, instr, next_pc)`.
    Guest(u64, Instr, u64),
    /// Injected instrumentation.
    Probe(Probe),
    /// Observation-only marker: a check site the static rules proved
    /// safe, so no probe was emitted. Stripped at translation time —
    /// before the `max_tb_items` size guard, so block classification is
    /// identical with profiling on or off — and recorded (when
    /// profiling) so elided work is attributable per site.
    Note(ProbeSite),
}

/// A guest basic block as discovered by the block builder, before
/// instrumentation: `(pc, instr, next_pc)` triples ending at the first
/// control-transfer instruction.
#[derive(Clone, Debug)]
pub struct DecodedBlock {
    /// Block start address.
    pub start: u64,
    /// The instructions.
    pub insns: Vec<(u64, Instr, u64)>,
}

impl DecodedBlock {
    /// Address one past the end of the block.
    pub fn end(&self) -> u64 {
        self.insns.last().map(|(_, _, n)| *n).unwrap_or(self.start)
    }
}

/// An instrumentation client (the paper's "custom security technique").
pub trait Tool {
    /// Tool name (for reports and logs).
    fn name(&self) -> &str;

    /// Called once before guest execution starts, after all statically
    /// loadable modules are mapped (map shadow regions, seed tables).
    fn on_start(&mut self, _proc: &mut Process) {}

    /// Called when a module is mapped — at process setup for static
    /// modules, or during execution for `dlopen`ed ones. This is where
    /// rewrite-rule files are loaded into per-module hash tables.
    fn on_module_load(&mut self, _proc: &mut Process, _module_id: usize) {}

    /// Instruments one newly discovered basic block.
    fn instrument_block(&mut self, proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem>;

    /// Called after the guest exits (flush statistics).
    fn on_exit(&mut self, _proc: &mut Process) {}
}

/// The null client: translation without modification, measuring pure
/// engine overhead (paper §6.1.1 "Null client").
#[derive(Debug, Default)]
pub struct NullTool;

impl Tool for NullTool {
    fn name(&self) -> &str {
        "null"
    }

    fn instrument_block(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
        block
            .insns
            .iter()
            .map(|&(pc, insn, next)| TbItem::Guest(pc, insn, next))
            .collect()
    }
}

/// Why the engine stopped.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// Guest exited normally.
    Exited(i64),
    /// Guest faulted.
    Fault(Fault),
    /// Fuel exhausted.
    OutOfFuel,
    /// A probe reported a violation and the engine halts on violations.
    Violation(Report),
}

impl RunOutcome {
    /// Exit code for normal termination.
    pub fn code(&self) -> Option<i64> {
        match self {
            RunOutcome::Exited(c) => Some(*c),
            _ => None,
        }
    }
}

/// Execution statistics of one engine run.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Basic blocks translated (code-cache misses).
    pub blocks_translated: u64,
    /// Guest instructions executed.
    pub guest_insns: u64,
    /// Cycles spent translating.
    pub translation_cycles: u64,
    /// Cycles spent on indirect-transfer lookups.
    pub dispatch_cycles: u64,
    /// Cycles spent in probes.
    pub probe_cycles: u64,
    /// Probe executions. Hoisted check hits ([`ProbeResult::Hoisted`])
    /// execute no check code and are *not* probe runs.
    pub probe_runs: u64,
    /// Dynamic count of executed indirect control transfers — every
    /// `ret`/`call r`/`jmp r`, whether it paid the full
    /// [`CostModel::indirect_lookup`] or the cheap
    /// [`CostModel::chain_hit`]. Chaining changes the *cost* of an
    /// indirect transfer, never whether it is counted here.
    pub indirect_transfers: u64,
    /// Indirect transfers that hit the block's inlined target cache and
    /// paid [`CostModel::chain_hit`] instead of the full lookup. Always
    /// `<= indirect_transfers`.
    pub indirect_chain_hits: u64,
    /// Control transfers that bypassed the dispatcher entirely: direct
    /// transfers that followed a chain link, plus superblock-internal
    /// segment transitions and loop-back laps. These are *not* indirect
    /// transfers and cost zero modeled cycles — the counter records how
    /// much real dispatcher work (hash lookups, loop-top checks) the
    /// trace layer removed.
    pub chained_transfers: u64,
    /// Superblocks stitched by the hot-trace builder.
    pub superblocks_formed: u64,
    /// Superblock executions that left the trace before its planned end
    /// (a side exit: a conditional went the other way, or a stale segment
    /// tore the trace down). Planned completions are not exits.
    pub trace_exits: u64,
    /// Follower checks served by a fused lead check's precomputation
    /// ([`ProbeResult::Fused`]), cumulative over executions.
    pub checks_fused: u64,
    /// Hoisted loop-invariant check executions elided at run time
    /// ([`ProbeResult::Hoisted`]).
    pub checks_hoisted: u64,
    /// All violation reports (in order), capped at
    /// [`EngineOptions::max_reports`].
    pub reports: Vec<Report>,
    /// Engine-side execution contexts, one per entry in `reports`
    /// (same order).
    pub contexts: Vec<ViolationContext>,
    /// Violations observed after `reports` reached the cap.
    pub reports_dropped: u64,
    /// Translations that exceeded [`EngineOptions::max_tb_items`] and
    /// were executed without being cached (the translation-size resource
    /// guard: hostile block shapes cannot balloon the code cache).
    pub oversized_blocks: u64,
}

impl Stats {
    /// Cycles the engine added on top of pure guest execution:
    /// translation + dispatch + probes. `dispatch_cycles` covers both
    /// full indirect lookups and the cheap [`CostModel::chain_hit`]
    /// charges of target-cache hits; chained *direct* transfers and
    /// superblock-internal transitions cost zero and therefore appear in
    /// no cycle term (only in [`Stats::chained_transfers`]). Always at
    /// most the process's total cycle count for the same run.
    pub fn total_overhead_cycles(&self) -> u64 {
        self.translation_cycles + self.dispatch_cycles + self.probe_cycles
    }
}

/// How one block transferred control to its successor, classified by
/// the block's final executed guest instruction: `ret` → [`EdgeKind::Return`],
/// any other indirect CTI → [`EdgeKind::Indirect`], everything else
/// (direct branches, fall-through, syscall-ended blocks) →
/// [`EdgeKind::Direct`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EdgeKind {
    /// Direct branch or fall-through (linked, free under the cost model).
    Direct,
    /// Indirect call/jump (pays the dispatch lookup).
    Indirect,
    /// Return (pays the dispatch lookup).
    Return,
}

impl EdgeKind {
    /// Canonical string form for artifacts.
    pub fn as_str(&self) -> &'static str {
        match self {
            EdgeKind::Direct => "direct",
            EdgeKind::Indirect => "indirect",
            EdgeKind::Return => "return",
        }
    }
}

/// Per-code-cache-slot profile counters for one block, keyed by the
/// block's start pc. Every cycle the engine or the guest spends while
/// the block is current lands in exactly one class, so the per-class
/// sums over all blocks reproduce the engine totals exactly
/// (conservation; see `EngineProfile`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BlockProfile {
    /// Block executions.
    pub execs: u64,
    /// Times the block was (re)translated (cache misses, oversized
    /// rebuilds, post-invalidation rebuilds).
    pub translations: u64,
    /// Guest instructions executed inside the block, cumulative.
    pub guest_insns: u64,
    /// Engine translation cost (block build + per-insn translate).
    pub translate_cycles: u64,
    /// Translation-time cycles the *tool* charged while instrumenting
    /// (the dynamic fallback's per-block analysis cost).
    pub tool_translate_cycles: u64,
    /// Indirect-lookup cycles paid when this block ended in an indirect
    /// transfer.
    pub dispatch_cycles: u64,
    /// Cycles in inline-class probes (cost + slow-path extras).
    pub inline_probe_cycles: u64,
    /// Cycles in clean-call-class probes.
    pub clean_call_cycles: u64,
    /// Pure guest cycles (instruction costs, incl. syscall charges).
    pub guest_cycles: u64,
}

impl BlockProfile {
    /// All attributed cycles of this block, across every class.
    pub fn total_cycles(&self) -> u64 {
        self.translate_cycles
            + self.tool_translate_cycles
            + self.dispatch_cycles
            + self.inline_probe_cycles
            + self.clean_call_cycles
            + self.guest_cycles
    }
}

/// Per-probe-site accounting: executions, modeled cycles, violations,
/// and executions where the check was *elided* by a static rule (the
/// site appeared as a [`TbItem::Note`] in a block that then executed).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SiteProfile {
    /// Probe executions at this site.
    pub execs: u64,
    /// Cycles attributed to this site (cost + slow-path extras).
    pub cycles: u64,
    /// Violations this site reported.
    pub violations: u64,
    /// Dynamic executions where the check was statically elided.
    pub elided: u64,
}

/// The engine-side profile: deterministic, cycle-model-exact counters
/// accumulated while [`EngineOptions::profile`] is on. Observation
/// only — guest results, figure bytes and cycle totals are identical
/// with profiling on or off. Conservation invariants (enforced by
/// tests): per-class sums over `blocks` equal the corresponding
/// [`Stats`] totals, and the sum of *all* classes equals the process's
/// cycle delta for the profiled runs.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct EngineProfile {
    /// Per-block counters keyed by block start pc.
    pub blocks: BTreeMap<u64, BlockProfile>,
    /// Per-site counters keyed by the full site identity.
    pub sites: BTreeMap<ProbeSite, SiteProfile>,
    /// Block→successor transfer counts: `(from_pc, to_pc, kind) → n`.
    pub edges: BTreeMap<(u64, u64, EdgeKind), u64>,
    /// Elided sites per block, captured at translation time; each block
    /// execution counts one avoided check per listed site.
    elided: BTreeMap<u64, Vec<ProbeSite>>,
}

/// Counter-field snapshot of [`Stats`], used to compute per-run deltas
/// when a single engine serves several consecutive runs.
#[derive(Clone, Copy, Default)]
struct StatsMark {
    blocks_translated: u64,
    guest_insns: u64,
    translation_cycles: u64,
    dispatch_cycles: u64,
    probe_cycles: u64,
    probe_runs: u64,
    indirect_transfers: u64,
    indirect_chain_hits: u64,
    chained_transfers: u64,
    superblocks_formed: u64,
    trace_exits: u64,
    checks_fused: u64,
    checks_hoisted: u64,
    oversized_blocks: u64,
}

impl StatsMark {
    fn of(s: &Stats) -> StatsMark {
        StatsMark {
            blocks_translated: s.blocks_translated,
            guest_insns: s.guest_insns,
            translation_cycles: s.translation_cycles,
            dispatch_cycles: s.dispatch_cycles,
            probe_cycles: s.probe_cycles,
            probe_runs: s.probe_runs,
            indirect_transfers: s.indirect_transfers,
            indirect_chain_hits: s.indirect_chain_hits,
            chained_transfers: s.chained_transfers,
            superblocks_formed: s.superblocks_formed,
            trace_exits: s.trace_exits,
            checks_fused: s.checks_fused,
            checks_hoisted: s.checks_hoisted,
            oversized_blocks: s.oversized_blocks,
        }
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// Cost model.
    pub costs: CostModel,
    /// Stop at the first violation (ASan-style) or keep going (collecting
    /// reports).
    pub halt_on_violation: bool,
    /// Maximum guest instructions per block.
    pub max_block: usize,
    /// Upper bound on collected reports (and contexts). Non-halting runs
    /// over pathological inputs cannot grow the report vector without
    /// limit; overflow is counted in [`Stats::reports_dropped`].
    pub max_reports: usize,
    /// Length of the executed-block ring buffer snapshotted into each
    /// violation context as the execution trail.
    pub trail_len: usize,
    /// Upper bound on the number of translation items (guest instructions
    /// plus probes) a block may carry and still be *cached*. Oversized
    /// translations execute normally but are rebuilt on every visit, so a
    /// hostile tool/input combination cannot grow the code cache without
    /// limit through pathologically instrumented blocks. Counted in
    /// [`Stats::oversized_blocks`] and the `dbt.oversized_blocks`
    /// telemetry counter. The default is far above anything the bundled
    /// tools emit for a [`EngineOptions::max_block`]-sized block, so the
    /// happy path never hits it.
    pub max_tb_items: usize,
    /// Collect the deterministic per-block/per-site/per-edge profile
    /// ([`Engine::profile`]). Observation only: results and cycle
    /// totals are byte-identical with it on or off.
    pub profile: bool,
    /// Enable the trace layer: direct-branch chaining between cached
    /// blocks and NET-style superblock formation. Host-mechanism only —
    /// modeled cycles, stats cycle terms and guest results are
    /// byte-identical with traces on or off; the layer removes *real*
    /// dispatcher work (hash lookups, loop-top re-entry) and reports it
    /// in [`Stats::chained_transfers`] / [`Stats::superblocks_formed`].
    pub traces: bool,
    /// Block executions before the trace builder considers a block hot
    /// and tries to stitch a superblock from its dominant successor
    /// chain. Retried every further `trace_hot_threshold` executions
    /// while the block stays unstitched.
    pub trace_hot_threshold: u32,
    /// Maximum blocks per superblock.
    pub trace_max_blocks: usize,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            costs: CostModel::default(),
            halt_on_violation: true,
            max_block: 128,
            max_reports: DEFAULT_MAX_REPORTS,
            trail_len: 16,
            max_tb_items: 1 << 16,
            profile: false,
            traces: true,
            trace_hot_threshold: 64,
            trace_max_blocks: 16,
        }
    }
}

/// A direct-branch chain link: "when this block's successor is `target`,
/// it lives in `slot` (valid while the slot's generation is `gen`)".
/// Followed without touching the code-cache index; invalidated lazily by
/// the generation check when the target is evicted or retranslated.
#[derive(Clone, Copy, Debug)]
struct ChainLink {
    target: u64,
    slot: u32,
    gen: u32,
}

/// One segment of a superblock: a cached block, pinned by slot and
/// generation. The segment *references* the block's existing translation
/// (no retranslation, no new charges); a generation mismatch at entry
/// tears the superblock down.
#[derive(Clone, Copy, Debug)]
struct SbSeg {
    pc: u64,
    slot: u32,
    gen: u32,
}

/// A NET-style superblock: the dominant successor chain of a hot block,
/// executed as one unit without re-entering the dispatcher between
/// segments. `loop_back` traces (tail branches to head) lap in place.
#[derive(Clone, Debug)]
struct Superblock {
    segs: Vec<SbSeg>,
    loop_back: bool,
}

/// How a superblock execution handed control back.
enum SbExit {
    /// The run is over (exit, fault, violation, out of fuel).
    Outcome(RunOutcome),
    /// Fall back to the dispatcher at the current `proc.cpu.pc`.
    Dispatch,
}

/// Sentinel for "no target seen yet" in per-block successor caches
/// (guest pcs never reach it).
const NO_TARGET: u64 = u64::MAX;

struct CachedBlock {
    items: Vec<TbItem>,
    /// Statically, does the block end in an indirect CTI? (Trace chains
    /// terminate at indirect-ending blocks.)
    ends_indirect: bool,
    /// Statically, is the block's final instruction `ret`? (Edge-kind
    /// classification, precomputed so the per-instruction loop does not
    /// re-match it.)
    ends_ret: bool,
    /// Inlined single-entry indirect-target cache (the modeled exit-stub
    /// comparison). Part of the *cost model*, so it is maintained
    /// identically with traces on or off.
    itarget: u64,
    /// Most-recently-seen successor and its run length — the cheap
    /// always-on stand-in for full edge profiling that trace formation
    /// follows as the dominant successor.
    last_next: u64,
    streak: u32,
    /// Executions left until the next hot-trace formation attempt.
    hot_countdown: u32,
    /// Chain link to the successor block for one direct-branch target.
    link: Option<ChainLink>,
    /// Superblock headed by this block, if one was formed.
    sb: Option<u32>,
}

impl CachedBlock {
    fn new(items: Vec<TbItem>, hot_countdown: u32) -> CachedBlock {
        let (ends_indirect, ends_ret) = items
            .iter()
            .rev()
            .find_map(|i| match i {
                TbItem::Guest(_, insn, _) => {
                    Some((insn.is_indirect_cti(), matches!(insn, Instr::Ret)))
                }
                _ => None,
            })
            .unwrap_or((false, false));
        CachedBlock {
            items,
            ends_indirect,
            ends_ret,
            itarget: NO_TARGET,
            last_next: NO_TARGET,
            streak: 0,
            hot_countdown,
            link: None,
            sb: None,
        }
    }

    /// Updates the MRU successor after an execution that transferred to
    /// `next_pc`.
    fn note_successor(&mut self, next_pc: u64) {
        if self.last_next == next_pc {
            self.streak = self.streak.saturating_add(1);
        } else {
            self.last_next = next_pc;
            self.streak = 1;
        }
    }
}

/// The dynamic binary modifier: owns the code cache and drives execution
/// of a [`Process`] under a [`Tool`].
///
/// The code cache is index-based: `index` maps a block's start pc to a
/// slot in `slots`, and the hot dispatch loop does a single hash lookup
/// followed by a slot `take`/put-back — instead of the remove/reinsert
/// pair on a `HashMap<u64, CachedBlock>` that re-hashed the pc and moved
/// the block's item vector through the table twice per execution.
pub struct Engine {
    opts: EngineOptions,
    index: PcMap<u32>,
    slots: Vec<Option<CachedBlock>>,
    free: Vec<u32>,
    /// Per-slot generation counters, bumped whenever a slot is freed so
    /// chain links and superblock segments referencing the old occupant
    /// invalidate themselves lazily.
    slot_gens: Vec<u32>,
    /// Formed superblocks, referenced from head blocks' `sb` fields.
    sbs: Vec<Option<Superblock>>,
    sb_free: Vec<u32>,
    cache_gen: u64,
    /// Ring buffer of the start pcs of the last executed blocks (flat
    /// array + wrap position; [`Engine::trail_vec`] restores oldest-first
    /// order). Observation only — never charged to the guest.
    trail: Vec<u64>,
    /// Next overwrite index once the trail ring is full.
    trail_pos: usize,
    /// Accumulated profile when [`EngineOptions::profile`] is on.
    profile: Option<EngineProfile>,
    /// Statistics for the current/last run.
    pub stats: Stats,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("cached_blocks", &self.index.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Engine {
    /// Creates an engine with the given options.
    pub fn new(opts: EngineOptions) -> Engine {
        let profile = opts.profile.then(EngineProfile::default);
        Engine {
            opts,
            index: PcMap::default(),
            slots: Vec::new(),
            free: Vec::new(),
            slot_gens: Vec::new(),
            sbs: Vec::new(),
            sb_free: Vec::new(),
            cache_gen: 0,
            trail: Vec::new(),
            trail_pos: 0,
            profile,
            stats: Stats::default(),
        }
    }

    /// The accumulated profile, when [`EngineOptions::profile`] is on.
    pub fn profile(&self) -> Option<&EngineProfile> {
        self.profile.as_ref()
    }

    /// Takes the accumulated profile (resetting collection), when
    /// profiling is on.
    pub fn take_profile(&mut self) -> Option<EngineProfile> {
        self.profile.as_mut().map(std::mem::take)
    }

    /// Snapshots CPU state and the executed-block trail for a violation
    /// at `pc`. Pure observation: charges nothing to the guest.
    fn capture_context(&self, proc: &Process, pc: u64) -> ViolationContext {
        let mut regs = [0u64; 16];
        for r in Reg::ALL {
            regs[r.index()] = proc.cpu.reg(r);
        }
        ViolationContext {
            pc,
            regs,
            flags: proc.cpu.flags.to_byte(),
            trail: self.trail_vec(),
        }
    }

    /// Appends a block pc to the execution-trail ring.
    #[inline]
    fn push_trail(&mut self, pc: u64) {
        if self.trail.len() < self.opts.trail_len {
            self.trail.push(pc);
        } else {
            self.trail[self.trail_pos] = pc;
            self.trail_pos += 1;
            if self.trail_pos == self.trail.len() {
                self.trail_pos = 0;
            }
        }
    }

    /// The trail in oldest-first order (unwinds the ring).
    fn trail_vec(&self) -> Vec<u64> {
        let mut v = Vec::with_capacity(self.trail.len());
        v.extend_from_slice(&self.trail[self.trail_pos..]);
        v.extend_from_slice(&self.trail[..self.trail_pos]);
        v
    }

    /// Places a freshly translated block into a (possibly recycled) slot.
    fn alloc_slot(&mut self, block: CachedBlock) -> u32 {
        match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(block);
                s
            }
            None => {
                self.slots.push(Some(block));
                self.slot_gens.push(0);
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Empties a slot after its occupant was invalidated (mid-block JIT
    /// write) and bumps its generation so chain links and superblock
    /// segments that referenced it stop matching.
    fn evict_slot(&mut self, pc: u64, slot: u32) {
        self.index.remove(&pc);
        self.slot_gens[slot as usize] += 1;
        self.free.push(slot);
    }

    /// Drops every cached translation, chain link and superblock (cache
    /// generation change or an explicit flush).
    fn clear_cache_state(&mut self) {
        self.index.clear();
        self.slots.clear();
        self.free.clear();
        self.slot_gens.clear();
        self.sbs.clear();
        self.sb_free.clear();
    }

    /// Builds (but does not cache) the decoded block starting at `pc`.
    fn build_block(
        &self,
        proc: &mut Process,
        pc: u64,
    ) -> Result<DecodedBlock, Fault> {
        let mut insns = Vec::new();
        let mut cur = pc;
        loop {
            let (insn, next) = match proc.fetch_decode(cur) {
                Ok(v) => v,
                // A decode failure *after* the first instruction ends the
                // block; the fault surfaces naturally if execution ever
                // falls through to the bad bytes.
                Err(f) if insns.is_empty() => return Err(f),
                Err(_) => break,
            };
            insns.push((cur, insn, next));
            // Blocks end at CTIs and (as in DynamoRIO) at syscalls.
            if insn.is_cti() || insn == Instr::Syscall || insns.len() >= self.opts.max_block {
                break;
            }
            cur = next;
        }
        Ok(DecodedBlock { start: pc, insns })
    }

    /// Runs `proc` under `tool` until exit, fault, violation (if halting)
    /// or `fuel` cycles.
    ///
    /// Module-load events (including `dlopen` during execution) are
    /// forwarded to the tool before the next block executes.
    pub fn run(&mut self, proc: &mut Process, tool: &mut dyn Tool, fuel: u64) -> RunOutcome {
        let mark = StatsMark::of(&self.stats);
        let cycles_at_entry = proc.cycles;
        // A fresh trail per run: blocks from a previous run served by the
        // same engine must not appear in this run's violation contexts.
        self.trail.clear();
        self.trail_pos = 0;
        // Deliver already-pending module loads, then start the tool.
        let pending: Vec<ProcessEvent> = proc.events.drain(..).collect();
        for ev in pending {
            let ProcessEvent::ModuleLoaded { id } = ev;
            janitizer_telemetry::event!("dbt.module_load", id = id);
            janitizer_telemetry::flight::record(
                "dbt.module_load",
                janitizer_telemetry::flight::NO_MODULE,
                id as u64,
                0,
            );
            tool.on_module_load(proc, id);
        }
        tool.on_start(proc);

        let outcome = self.run_inner(proc, tool, fuel);
        tool.on_exit(proc);
        self.flush_telemetry(mark, cycles_at_entry, proc.cycles);
        outcome
    }

    /// Attributes this run's cycle deltas to the telemetry registry.
    /// Overhead cycles go to `run;dbt;{translate,dispatch,probes}` and
    /// the remainder — pure guest execution — to `run;guest`, so the sum
    /// of span cycles always equals the process's cycle delta.
    fn flush_telemetry(&self, mark: StatsMark, cycles_at_entry: u64, cycles_at_exit: u64) {
        if !janitizer_telemetry::enabled() {
            return;
        }
        let s = &self.stats;
        let translate = s.translation_cycles - mark.translation_cycles;
        let dispatch = s.dispatch_cycles - mark.dispatch_cycles;
        let probes = s.probe_cycles - mark.probe_cycles;
        let total = cycles_at_exit.saturating_sub(cycles_at_entry);
        janitizer_telemetry::cycles("run;dbt;translate", translate);
        janitizer_telemetry::cycles("run;dbt;dispatch", dispatch);
        janitizer_telemetry::cycles("run;dbt;probes", probes);
        janitizer_telemetry::cycles(
            "run;guest",
            total.saturating_sub(translate + dispatch + probes),
        );
        janitizer_telemetry::counter_add(
            "dbt.blocks_translated",
            s.blocks_translated - mark.blocks_translated,
        );
        janitizer_telemetry::counter_add("dbt.guest_insns", s.guest_insns - mark.guest_insns);
        janitizer_telemetry::counter_add("dbt.probe_runs", s.probe_runs - mark.probe_runs);
        janitizer_telemetry::counter_add(
            "dbt.indirect_transfers",
            s.indirect_transfers - mark.indirect_transfers,
        );
        janitizer_telemetry::counter_add(
            "dbt.indirect_chain_hits",
            s.indirect_chain_hits - mark.indirect_chain_hits,
        );
        janitizer_telemetry::counter_add(
            "dbt.chained_transfers",
            s.chained_transfers - mark.chained_transfers,
        );
        janitizer_telemetry::counter_add(
            "dbt.superblocks_formed",
            s.superblocks_formed - mark.superblocks_formed,
        );
        janitizer_telemetry::counter_add("dbt.trace_exits", s.trace_exits - mark.trace_exits);
        janitizer_telemetry::counter_add("dbt.checks_fused", s.checks_fused - mark.checks_fused);
        janitizer_telemetry::counter_add(
            "dbt.checks_hoisted",
            s.checks_hoisted - mark.checks_hoisted,
        );
        janitizer_telemetry::counter_add(
            "dbt.oversized_blocks",
            s.oversized_blocks - mark.oversized_blocks,
        );
    }

    fn run_inner(&mut self, proc: &mut Process, tool: &mut dyn Tool, fuel: u64) -> RunOutcome {
        // A direct-ending block that just executed without a usable chain
        // link, waiting for its successor's slot to resolve: (slot, gen).
        let mut want_link: Option<(u32, u32)> = None;
        loop {
            if proc.cycles >= fuel {
                return RunOutcome::OutOfFuel;
            }
            // JIT writes invalidate the cache — links and traces included.
            if proc.mem.code_generation() != self.cache_gen {
                self.clear_cache_state();
                self.cache_gen = proc.mem.code_generation();
                want_link = None;
            }
            // Deliver dlopen events raised by the previous block.
            if !proc.events.is_empty() {
                let pending: Vec<ProcessEvent> = proc.events.drain(..).collect();
                for ev in pending {
                    let ProcessEvent::ModuleLoaded { id } = ev;
                    janitizer_telemetry::event!("dbt.module_load", id = id);
                    janitizer_telemetry::flight::record(
                        "dbt.module_load",
                        janitizer_telemetry::flight::NO_MODULE,
                        id as u64,
                        0,
                    );
                    tool.on_module_load(proc, id);
                }
            }

            let pc = proc.cpu.pc;
            // `slot` is `None` for an oversized translation: it executes
            // from the local `uncached` binding and is never cached.
            let mut uncached: Option<CachedBlock> = None;
            let slot = if let Some(&s) = self.index.get(&pc) {
                Some(s)
            } else {
                let block = match self.build_block(proc, pc) {
                    Ok(b) => b,
                    Err(f) => return RunOutcome::Fault(f),
                };
                let build_cost = self.opts.costs.block_build
                    + self.opts.costs.translate_per_insn * block.insns.len() as u64;
                proc.cycles += build_cost;
                self.stats.translation_cycles += build_cost;
                self.stats.blocks_translated += 1;
                janitizer_telemetry::histogram_record(
                    "dbt.block_insns",
                    block.insns.len() as u64,
                );
                janitizer_telemetry::event!(
                    "dbt.block_translated",
                    pc = pc,
                    insns = block.insns.len(),
                    cost = build_cost,
                );
                let cycles_before_instrument = proc.cycles;
                let mut items = tool.instrument_block(proc, &block);
                let tool_translate = proc.cycles - cycles_before_instrument;
                // Elision notes are observation-only markers. They are
                // stripped *before* the size guard below so oversized
                // classification is byte-identical whether or not a tool
                // emits them, and recorded (when profiling) so each
                // execution of the block can count its avoided checks.
                if items.iter().any(|i| matches!(i, TbItem::Note(_))) {
                    let mut notes: Vec<ProbeSite> = Vec::new();
                    items.retain(|i| match i {
                        TbItem::Note(s) => {
                            notes.push(*s);
                            false
                        }
                        _ => true,
                    });
                    if let Some(prof) = &mut self.profile {
                        prof.elided.insert(pc, notes);
                    }
                }
                if let Some(prof) = &mut self.profile {
                    let bp = prof.blocks.entry(pc).or_default();
                    bp.translations += 1;
                    bp.translate_cycles += build_cost;
                    bp.tool_translate_cycles += tool_translate;
                }
                if items.len() > self.opts.max_tb_items {
                    // Translation-size guard: run it, don't cache it.
                    self.stats.oversized_blocks += 1;
                    janitizer_telemetry::event!(
                        "dbt.oversized_block",
                        pc = pc,
                        items = items.len(),
                    );
                    janitizer_telemetry::flight::record(
                        "dbt.oversized_block",
                        janitizer_telemetry::flight::NO_MODULE,
                        pc,
                        items.len() as u64,
                    );
                    uncached = Some(CachedBlock::new(items, u32::MAX));
                    None
                } else {
                    let hot = self.opts.trace_hot_threshold.max(1);
                    let s = self.alloc_slot(CachedBlock::new(items, hot));
                    self.index.insert(pc, s);
                    // The tool may have been the one to notice a module load
                    // (rule-file loading) — but cache generation may also have
                    // changed; re-check on the next loop iteration.
                    Some(s)
                }
            };

            // Resolve the pending chain link now that the successor's
            // slot is known. The first installed link wins; an oversized
            // successor or an evicted source simply leaves it unlinked.
            if let Some((ls, lgen)) = want_link.take() {
                if let Some(ts) = slot {
                    if self.slot_gens.get(ls as usize) == Some(&lgen) {
                        let tgen = self.slot_gens[ts as usize];
                        if let Some(Some(src)) = self.slots.get_mut(ls as usize) {
                            if src.link.is_none() {
                                src.link = Some(ChainLink { target: pc, slot: ts, gen: tgen });
                            }
                        }
                    }
                }
            }

            let mut cur_pc = pc;
            let mut cur_slot = slot;
            'chain: loop {
                // Hot-trace fast path: a superblock head executes its
                // whole trace without re-entering the dispatcher.
                if self.opts.traces {
                    if let Some(s) = cur_slot {
                        if let Some(sbid) = self.slots[s as usize].as_ref().and_then(|b| b.sb) {
                            match self.run_superblock(proc, sbid, fuel) {
                                SbExit::Outcome(o) => return o,
                                SbExit::Dispatch => break 'chain,
                            }
                        }
                    }
                }
                // Record the block in the execution trail before running
                // it, so the final trail entry is the block containing a
                // fault.
                if self.opts.trail_len > 0 {
                    self.push_trail(cur_pc);
                }
                // Execute the cached block. We temporarily take it out of
                // its slot so probes can borrow the engine-free process
                // state.
                let mut cached = match (uncached.take(), cur_slot) {
                    (Some(b), _) => b,
                    (None, Some(s)) => {
                        self.slots[s as usize].take().expect("indexed slot occupied")
                    }
                    (None, None) => unreachable!("block neither cached nor oversized"),
                };
                let res = self.exec_items(proc, &mut cached, cur_pc);
                if res.outcome.is_none() {
                    self.finish_transfer(proc, &mut cached, cur_pc, &res);
                }
                // Hot-trace candidacy: cheap always-on countdown, retried
                // periodically while the block stays unstitched.
                let mut attempt_form = false;
                if self.opts.traces
                    && cur_slot.is_some()
                    && res.outcome.is_none()
                    && cached.sb.is_none()
                {
                    cached.hot_countdown = cached.hot_countdown.saturating_sub(1);
                    if cached.hot_countdown == 0 {
                        cached.hot_countdown = self.opts.trace_hot_threshold.max(1);
                        attempt_form = true;
                    }
                }
                let link = cached.link;
                // Only put the block back when it was cached at all and
                // the cache was not invalidated mid-block (e.g. by a
                // guest write to JIT memory). Oversized blocks
                // (`cur_slot == None`) are simply dropped.
                if let Some(s) = cur_slot {
                    if proc.mem.code_generation() == self.cache_gen {
                        self.slots[s as usize] = Some(cached);
                    } else {
                        self.evict_slot(cur_pc, s);
                    }
                }
                if let Some(o) = res.outcome {
                    return o;
                }
                proc.cpu.pc = res.next_pc;
                if attempt_form && proc.mem.code_generation() == self.cache_gen {
                    if let Some(s) = cur_slot {
                        self.try_form_trace(cur_pc, s);
                    }
                }
                // Chain following is only for direct transfers with a
                // clean engine state; everything else goes back through
                // the dispatcher's loop-top checks.
                if !self.opts.traces
                    || res.ended_indirect
                    || proc.cycles >= fuel
                    || proc.mem.code_generation() != self.cache_gen
                    || !proc.events.is_empty()
                {
                    break 'chain;
                }
                let Some(s) = cur_slot else { break 'chain };
                match link {
                    Some(l)
                        if l.target == res.next_pc
                            && self.slot_gens.get(l.slot as usize) == Some(&l.gen)
                            && self.slots[l.slot as usize].is_some() =>
                    {
                        self.stats.chained_transfers += 1;
                        cur_pc = res.next_pc;
                        cur_slot = Some(l.slot);
                    }
                    Some(_) => break 'chain,
                    None => {
                        want_link = Some((s, self.slot_gens[s as usize]));
                        break 'chain;
                    }
                }
            }
        }
    }

    /// Executes one translated block's items against `proc`, charging
    /// guest and probe costs and (when profiling) flushing the block's
    /// per-class profile row. Shared verbatim by the dispatcher, the
    /// chain-following loop and the superblock runner so every mode
    /// produces identical charges, reports and profile rows.
    fn exec_items(&mut self, proc: &mut Process, cached: &mut CachedBlock, pc: u64) -> ExecRes {
        let profiling = self.profile.is_some();
        let mut outcome: Option<RunOutcome> = None;
        let mut next_pc = pc;
        // Per-execution accumulators, flushed at block end (and before
        // every probe, which may observe the process): keeps the
        // per-instruction hot path to plain local adds instead of
        // read-modify-writes through `proc` and `stats`.
        let mut insns_local = 0u64;
        let mut prof_guest_cycles = 0u64;
        let mut prof_guest_insns = 0u64;
        let mut prof_inline = 0u64;
        let mut prof_clean_call = 0u64;
        'block: for item in cached.items.iter_mut() {
            match item {
                TbItem::Guest(ipc, insn, inext) => {
                    insns_local += 1;
                    let guest_before = if profiling { proc.cycles } else { 0 };
                    proc.cycles += insn.cost();
                    let step = execute(proc, insn, *inext);
                    if profiling {
                        // Captures the instruction cost plus anything
                        // execution itself charged (syscalls).
                        prof_guest_cycles += proc.cycles - guest_before;
                        prof_guest_insns += 1;
                    }
                    match step {
                        Step::Next => next_pc = *inext,
                        Step::Jump(t) => {
                            next_pc = t;
                        }
                        Step::Exit(c) => {
                            outcome = Some(RunOutcome::Exited(c));
                            break 'block;
                        }
                        Step::Fault(kind) => {
                            outcome = Some(RunOutcome::Fault(Fault { pc: *ipc, kind }));
                            break 'block;
                        }
                    }
                }
                TbItem::Probe(p) => {
                    // Flush the instruction counters before the probe
                    // runs: probe closures receive the full process and
                    // must see exact state.
                    proc.insns += insns_local;
                    self.stats.guest_insns += insns_local;
                    insns_local = 0;
                    let probe_before = if profiling { proc.cycles } else { 0 };
                    proc.cycles += p.cost;
                    self.stats.probe_cycles += p.cost;
                    let mut violated = false;
                    let mut hoisted = false;
                    match (p.run)(proc) {
                        ProbeResult::Ok => {}
                        ProbeResult::Fused(n) => self.stats.checks_fused += u64::from(n),
                        ProbeResult::Hoisted => {
                            debug_assert_eq!(p.cost, 0, "Hoisted probes must be cost-free");
                            hoisted = true;
                            self.stats.checks_hoisted += 1;
                        }
                        ProbeResult::Extra(c) => {
                            proc.cycles += c;
                            self.stats.probe_cycles += c;
                        }
                        ProbeResult::Violation(r) => {
                            violated = true;
                            janitizer_telemetry::event!(
                                "dbt.violation",
                                kind = r.kind.as_str(),
                                pc = r.pc,
                            );
                            janitizer_telemetry::flight::record(
                                "dbt.violation",
                                janitizer_telemetry::flight::NO_MODULE,
                                r.pc,
                                0,
                            );
                            if self.stats.reports.len() < self.opts.max_reports {
                                let ctx = self.capture_context(proc, r.pc);
                                self.stats.contexts.push(ctx);
                                self.stats.reports.push(r.clone());
                            } else {
                                self.stats.reports_dropped += 1;
                                if self.stats.reports_dropped == 1 {
                                    // First drop is the black-box trip:
                                    // forensics is now lossy.
                                    janitizer_telemetry::flight::trip(
                                        "report-overflow",
                                        janitizer_telemetry::flight::NO_MODULE,
                                        r.pc,
                                        self.opts.max_reports as u64,
                                    );
                                }
                            }
                            if self.opts.halt_on_violation {
                                outcome = Some(RunOutcome::Violation(r));
                            }
                        }
                    }
                    // A hoisted hit executes no check code: it is a
                    // dynamically elided check, not a probe run.
                    if !hoisted {
                        self.stats.probe_runs += 1;
                    }
                    if profiling {
                        let delta = proc.cycles - probe_before;
                        match p.site.map_or(ProbeClass::Inline, |s| s.class) {
                            ProbeClass::Inline => prof_inline += delta,
                            ProbeClass::CleanCall => prof_clean_call += delta,
                        }
                        if let Some(site) = p.site {
                            let sp = self
                                .profile
                                .as_mut()
                                .expect("profiling implies profile")
                                .sites
                                .entry(site)
                                .or_default();
                            if hoisted {
                                sp.elided += 1;
                            } else {
                                sp.execs += 1;
                                sp.cycles += delta;
                                sp.violations += u64::from(violated);
                            }
                        }
                    }
                    if outcome.is_some() {
                        break 'block;
                    }
                }
                // Notes never survive translation (stripped at build).
                TbItem::Note(_) => {}
            }
        }
        proc.insns += insns_local;
        self.stats.guest_insns += insns_local;
        // How the block ended only matters when it ran to completion
        // (the callers consume these fields only when `outcome` is
        // `None`), and a completed block's last executed instruction is
        // its statically last one.
        let ended_indirect = outcome.is_none() && cached.ends_indirect;
        let ended_ret = outcome.is_none() && cached.ends_ret;
        if let Some(prof) = &mut self.profile {
            let EngineProfile { blocks, sites, elided, .. } = prof;
            let bp = blocks.entry(pc).or_default();
            bp.execs += 1;
            bp.guest_insns += prof_guest_insns;
            bp.guest_cycles += prof_guest_cycles;
            bp.inline_probe_cycles += prof_inline;
            bp.clean_call_cycles += prof_clean_call;
            if let Some(notes) = elided.get(&pc) {
                for s in notes {
                    sites.entry(*s).or_default().elided += 1;
                }
            }
        }
        ExecRes { outcome, next_pc, ended_indirect, ended_ret }
    }

    /// Charges the modeled dispatch cost of a completed block execution
    /// and records its edge and MRU-successor metadata. The indirect
    /// charge goes through the block's inlined single-entry target
    /// cache: a repeat target pays [`CostModel::chain_hit`], a new
    /// target pays the full [`CostModel::indirect_lookup`] and installs
    /// itself. Part of the cost model — identical with traces on or off.
    fn finish_transfer(&mut self, proc: &mut Process, cached: &mut CachedBlock, pc: u64, res: &ExecRes) {
        if res.ended_indirect {
            self.stats.indirect_transfers += 1;
            let cost = if cached.itarget == res.next_pc {
                self.stats.indirect_chain_hits += 1;
                self.opts.costs.chain_hit
            } else {
                cached.itarget = res.next_pc;
                self.opts.costs.indirect_lookup
            };
            proc.cycles += cost;
            self.stats.dispatch_cycles += cost;
            if let Some(prof) = &mut self.profile {
                prof.blocks.entry(pc).or_default().dispatch_cycles += cost;
            }
        }
        if let Some(prof) = &mut self.profile {
            let kind = if res.ended_ret {
                EdgeKind::Return
            } else if res.ended_indirect {
                EdgeKind::Indirect
            } else {
                EdgeKind::Direct
            };
            *prof.edges.entry((pc, res.next_pc, kind)).or_insert(0) += 1;
        }
        // MRU-successor tracking only feeds trace formation, which is
        // host-only; skip the bookkeeping entirely with traces off.
        if self.opts.traces {
            cached.note_successor(res.next_pc);
        }
    }

    /// Executes a formed superblock: the segments run back to back (and
    /// loop-back traces lap in place) without re-entering the dispatcher,
    /// re-checking the dispatcher's guards (fuel, cache generation,
    /// pending events) between segments so observable behavior is
    /// identical to block-at-a-time execution. Stale segments (generation
    /// mismatch after an eviction) tear the superblock down.
    fn run_superblock(&mut self, proc: &mut Process, sbid: u32, fuel: u64) -> SbExit {
        let mut first = true;
        'laps: loop {
            let nsegs = match self.sbs.get(sbid as usize).and_then(|s| s.as_ref()) {
                Some(sb) => sb.segs.len(),
                None => return SbExit::Dispatch,
            };
            let mut i = 0usize;
            while i < nsegs {
                let (seg, is_last, loop_back) = {
                    let sb = self.sbs[sbid as usize].as_ref().expect("sb checked above");
                    (sb.segs[i], i + 1 == sb.segs.len(), sb.loop_back)
                };
                if !first {
                    // Dispatcher-equivalent guards between segments.
                    if proc.cycles >= fuel {
                        proc.cpu.pc = seg.pc;
                        return SbExit::Outcome(RunOutcome::OutOfFuel);
                    }
                    if proc.mem.code_generation() != self.cache_gen
                        || !proc.events.is_empty()
                    {
                        proc.cpu.pc = seg.pc;
                        return SbExit::Dispatch;
                    }
                }
                first = false;
                // A stale segment (evicted or retranslated occupant)
                // invalidates the whole trace.
                if self.slot_gens.get(seg.slot as usize) != Some(&seg.gen)
                    || self.slots[seg.slot as usize].is_none()
                {
                    self.drop_superblock(sbid);
                    proc.cpu.pc = seg.pc;
                    return SbExit::Dispatch;
                }
                if self.opts.trail_len > 0 {
                    self.push_trail(seg.pc);
                }
                proc.cpu.pc = seg.pc;
                let mut cached = self.slots[seg.slot as usize].take().expect("validated");
                let res = self.exec_items(proc, &mut cached, seg.pc);
                if res.outcome.is_none() {
                    self.finish_transfer(proc, &mut cached, seg.pc, &res);
                }
                if proc.mem.code_generation() == self.cache_gen {
                    self.slots[seg.slot as usize] = Some(cached);
                } else {
                    self.evict_slot(seg.pc, seg.slot);
                }
                if let Some(o) = res.outcome {
                    return SbExit::Outcome(o);
                }
                proc.cpu.pc = res.next_pc;
                if res.ended_indirect {
                    // The trace's planned tail: the dispatcher resolves
                    // indirect targets.
                    return SbExit::Dispatch;
                }
                let expected = if !is_last {
                    Some(self.sbs[sbid as usize].as_ref().expect("sb alive").segs[i + 1].pc)
                } else if loop_back {
                    Some(self.sbs[sbid as usize].as_ref().expect("sb alive").segs[0].pc)
                } else {
                    None
                };
                match expected {
                    Some(e) if e == res.next_pc => {
                        self.stats.chained_transfers += 1;
                        if is_last {
                            continue 'laps;
                        }
                        i += 1;
                    }
                    Some(_) => {
                        // Side exit: a conditional went the other way.
                        self.stats.trace_exits += 1;
                        return SbExit::Dispatch;
                    }
                    None => return SbExit::Dispatch, // planned completion
                }
            }
            return SbExit::Dispatch;
        }
    }

    /// Tries to stitch a superblock from `head`'s dominant successor
    /// chain: follow each block's MRU successor while the streak is
    /// convincing, stopping at indirect-ending blocks, already-visited
    /// blocks, untranslated targets or the size cap. A chain whose tail
    /// branches back to the head becomes a loop-back trace (even with a
    /// single segment — a tight self-loop). Straight-line traces need at
    /// least two segments to be worth stitching.
    fn try_form_trace(&mut self, head_pc: u64, head_slot: u32) {
        const MIN_STREAK: u32 = 2;
        let max = self.opts.trace_max_blocks.max(1);
        let mut segs = vec![SbSeg {
            pc: head_pc,
            slot: head_slot,
            gen: self.slot_gens[head_slot as usize],
        }];
        let mut loop_back = false;
        let mut cur = head_slot;
        while let Some(b) = self.slots[cur as usize].as_ref() {
            if b.ends_indirect || b.streak < MIN_STREAK || b.last_next == NO_TARGET {
                break;
            }
            let next = b.last_next;
            if next == head_pc {
                loop_back = true;
                break;
            }
            if segs.len() >= max || segs.iter().any(|s| s.pc == next) {
                break;
            }
            let Some(&ns) = self.index.get(&next) else { break };
            segs.push(SbSeg { pc: next, slot: ns, gen: self.slot_gens[ns as usize] });
            cur = ns;
        }
        if !(loop_back || segs.len() >= 2) {
            return;
        }
        janitizer_telemetry::event!(
            "dbt.superblock_formed",
            head = head_pc,
            segs = segs.len(),
        );
        janitizer_telemetry::flight::record(
            "dbt.superblock_formed",
            janitizer_telemetry::flight::NO_MODULE,
            head_pc,
            segs.len() as u64,
        );
        let sb = Superblock { segs, loop_back };
        let id = match self.sb_free.pop() {
            Some(i) => {
                self.sbs[i as usize] = Some(sb);
                i
            }
            None => {
                self.sbs.push(Some(sb));
                (self.sbs.len() - 1) as u32
            }
        };
        self.slots[head_slot as usize]
            .as_mut()
            .expect("head block cached")
            .sb = Some(id);
        self.stats.superblocks_formed += 1;
    }

    /// Unlinks a superblock whose segments went stale.
    fn drop_superblock(&mut self, sbid: u32) {
        if let Some(sb) = self.sbs[sbid as usize].take() {
            if let Some(head) = sb.segs.first() {
                if self.slot_gens.get(head.slot as usize) == Some(&head.gen) {
                    if let Some(Some(b)) = self.slots.get_mut(head.slot as usize) {
                        b.sb = None;
                    }
                }
            }
            self.sb_free.push(sbid);
        }
    }

    /// Number of blocks currently in the code cache.
    pub fn cached_blocks(&self) -> usize {
        self.index.len()
    }

    /// Clears the code cache (tests and ablations), including chain
    /// links and superblocks.
    pub fn flush_cache(&mut self) {
        self.clear_cache_state();
    }
}

/// How one block execution ended: the outcome (if the run is over), the
/// successor pc, and the classification of the final executed guest
/// instruction.
struct ExecRes {
    outcome: Option<RunOutcome>,
    next_pc: u64,
    ended_indirect: bool,
    ended_ret: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use janitizer_asm::{assemble, AsmOptions};
    use janitizer_link::{link, LinkOptions};
    use janitizer_vm::{load_process, FaultKind, LoadOptions, ModuleStore};

    fn proc_from(src: &str) -> Process {
        let o = assemble("t.s", src, &AsmOptions::default()).unwrap();
        let img = link(&[o], &LinkOptions::executable("t")).unwrap();
        let mut store = ModuleStore::new();
        store.add(img);
        load_process(&store, "t", &LoadOptions::default()).unwrap()
    }

    const LOOP_SUM: &str = ".section text\n.global _start\n_start:\n\
        mov r0, 0\n mov r2, 10\n\
        loop:\n add r0, r2\n sub r2, 1\n cmp r2, 0\n jne loop\n ret\n";

    #[test]
    fn null_tool_preserves_semantics() {
        let mut native = proc_from(LOOP_SUM);
        let native_exit = native.run_native(1_000_000);
        assert_eq!(native_exit.code(), Some(55));

        let mut dbt_proc = proc_from(LOOP_SUM);
        let mut engine = Engine::new(EngineOptions::default());
        let out = engine.run(&mut dbt_proc, &mut NullTool, 1_000_000);
        assert_eq!(out.code(), Some(55));
        assert_eq!(dbt_proc.insns, native.insns, "same instructions executed");
    }

    #[test]
    fn dbt_charges_translation_and_dispatch() {
        let mut native = proc_from(LOOP_SUM);
        native.run_native(1_000_000);

        let mut dbt_proc = proc_from(LOOP_SUM);
        let mut engine = Engine::new(EngineOptions::default());
        engine.run(&mut dbt_proc, &mut NullTool, 1_000_000);
        assert!(
            dbt_proc.cycles > native.cycles,
            "null client is not free: {} vs {}",
            dbt_proc.cycles,
            native.cycles
        );
        assert!(engine.stats.blocks_translated >= 2);
        assert!(engine.stats.translation_cycles > 0);
        // The ret pays an indirect lookup.
        assert!(engine.stats.indirect_transfers >= 1);
        // The loop body is translated once, not per iteration.
        assert!(engine.stats.blocks_translated < 10);
    }

    #[test]
    fn oversized_blocks_execute_but_are_not_cached() {
        // With a tiny translation budget every block is oversized: the
        // program must still run to the same result, nothing may be
        // cached, and the guard must be visible in the stats.
        let mut p = proc_from(LOOP_SUM);
        let mut engine = Engine::new(EngineOptions {
            max_tb_items: 0,
            ..EngineOptions::default()
        });
        let out = engine.run(&mut p, &mut NullTool, 1_000_000);
        assert_eq!(out.code(), Some(55), "guard never changes semantics");
        assert_eq!(engine.cached_blocks(), 0, "nothing cached");
        assert!(engine.stats.oversized_blocks >= 10, "rebuilt per visit");

        // The default budget never triggers for ordinary programs.
        let mut p2 = proc_from(LOOP_SUM);
        let mut engine2 = Engine::new(EngineOptions::default());
        assert_eq!(engine2.run(&mut p2, &mut NullTool, 1_000_000).code(), Some(55));
        assert_eq!(engine2.stats.oversized_blocks, 0);
        assert!(engine2.cached_blocks() > 0);
    }

    #[test]
    fn overhead_cycles_bounded_by_total() {
        // Engine-added overhead (translation + dispatch + probes) can
        // never exceed the process's total cycle count, and the parts
        // must sum to the accessor's whole.
        let mut p = proc_from(LOOP_SUM);
        let mut engine = Engine::new(EngineOptions::default());
        engine.run(&mut p, &mut NullTool, 1_000_000);
        let s = &engine.stats;
        assert_eq!(
            s.total_overhead_cycles(),
            s.translation_cycles + s.dispatch_cycles + s.probe_cycles
        );
        assert!(
            s.total_overhead_cycles() <= p.cycles,
            "overhead {} exceeds total process cycles {}",
            s.total_overhead_cycles(),
            p.cycles
        );
        // Monotonic consistency: a second run on the same engine only
        // grows the cumulative stats, and the bound still holds.
        let overhead_after_first = s.total_overhead_cycles();
        let mut p2 = proc_from(LOOP_SUM);
        engine.run(&mut p2, &mut NullTool, 1_000_000);
        assert!(engine.stats.total_overhead_cycles() >= overhead_after_first);
        assert!(engine.stats.total_overhead_cycles() <= p.cycles + p2.cycles);
    }

    #[test]
    fn probes_run_and_charge() {
        let mut p = proc_from(LOOP_SUM);
        struct CountingTool {
            count: std::rc::Rc<std::cell::Cell<u64>>,
        }
        impl Tool for CountingTool {
            fn name(&self) -> &str {
                "count"
            }
            fn instrument_block(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
                let mut items = Vec::new();
                let c = self.count.clone();
                items.push(TbItem::Probe(Probe::new(
                    5,
                    Box::new(move |_p| {
                        c.set(c.get() + 1);
                        ProbeResult::Ok
                    }),
                )));
                items.extend(
                    block
                        .insns
                        .iter()
                        .map(|&(pc, i, n)| TbItem::Guest(pc, i, n)),
                );
                items
            }
        }
        let count = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut tool = CountingTool { count: count.clone() };
        let mut engine = Engine::new(EngineOptions::default());
        let out = engine.run(&mut p, &mut tool, 1_000_000);
        assert_eq!(out.code(), Some(55));
        // Block-entry probe runs once per block execution: at least 10
        // loop iterations.
        assert!(count.get() >= 10, "probe ran {} times", count.get());
        assert_eq!(engine.stats.probe_runs, count.get());
        assert_eq!(engine.stats.probe_cycles, count.get() * 5);
    }

    #[test]
    fn violation_halts_when_configured() {
        let mut p = proc_from(LOOP_SUM);
        struct Violator;
        impl Tool for Violator {
            fn name(&self) -> &str {
                "violator"
            }
            fn instrument_block(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
                let mut items: Vec<TbItem> = vec![TbItem::Probe(Probe::new(
                    1,
                    Box::new(|p| {
                        ProbeResult::Violation(Report {
                            pc: p.cpu.pc,
                            kind: "test-violation".into(),
                            details: "boom".into(),
                        })
                    }),
                ))];
                items.extend(block.insns.iter().map(|&(pc, i, n)| TbItem::Guest(pc, i, n)));
                items
            }
        }
        let mut engine = Engine::new(EngineOptions::default());
        let out = engine.run(&mut p, &mut Violator, 1_000_000);
        assert!(matches!(out, RunOutcome::Violation(_)));
        assert_eq!(engine.stats.reports.len(), 1);

        // Non-halting mode collects reports and finishes.
        let mut p2 = proc_from(LOOP_SUM);
        let mut engine2 = Engine::new(EngineOptions {
            halt_on_violation: false,
            ..EngineOptions::default()
        });
        let out2 = engine2.run(&mut p2, &mut Violator, 1_000_000);
        assert_eq!(out2.code(), Some(55));
        assert!(engine2.stats.reports.len() > 1);
        // Every report comes with its engine-side context, aligned by
        // index and agreeing on the pc.
        assert_eq!(engine2.stats.contexts.len(), engine2.stats.reports.len());
        for (r, c) in engine2.stats.reports.iter().zip(&engine2.stats.contexts) {
            assert_eq!(r.pc, c.pc);
        }
        assert_eq!(engine2.stats.reports_dropped, 0);
    }

    #[test]
    fn max_reports_caps_collection() {
        struct Violator;
        impl Tool for Violator {
            fn name(&self) -> &str {
                "violator"
            }
            fn instrument_block(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
                let mut items: Vec<TbItem> = vec![TbItem::Probe(Probe::new(
                    1,
                    Box::new(|p| {
                        ProbeResult::Violation(Report {
                            pc: p.cpu.pc,
                            kind: ViolationKind::Custom("test-violation"),
                            details: "boom".into(),
                        })
                    }),
                ))];
                items.extend(block.insns.iter().map(|&(pc, i, n)| TbItem::Guest(pc, i, n)));
                items
            }
        }
        let mut p = proc_from(LOOP_SUM);
        let mut engine = Engine::new(EngineOptions {
            halt_on_violation: false,
            max_reports: 3,
            ..EngineOptions::default()
        });
        let out = engine.run(&mut p, &mut Violator, 1_000_000);
        assert_eq!(out.code(), Some(55));
        assert_eq!(engine.stats.reports.len(), 3, "reports capped");
        assert_eq!(engine.stats.contexts.len(), 3, "contexts capped with reports");
        assert!(engine.stats.reports_dropped > 0, "overflow counted");

        // The cap does not change guest-visible execution: an uncapped
        // run reaches the same exit with the same cycle count.
        let mut p2 = proc_from(LOOP_SUM);
        let mut engine2 = Engine::new(EngineOptions {
            halt_on_violation: false,
            ..EngineOptions::default()
        });
        assert_eq!(engine2.run(&mut p2, &mut Violator, 1_000_000).code(), Some(55));
        assert_eq!(p.cycles, p2.cycles, "capture is observation-only");
    }

    #[test]
    fn violation_context_carries_trail_and_registers() {
        struct Violator;
        impl Tool for Violator {
            fn name(&self) -> &str {
                "violator"
            }
            fn instrument_block(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
                let mut items: Vec<TbItem> =
                    block.insns.iter().map(|&(pc, i, n)| TbItem::Guest(pc, i, n)).collect();
                // Violate at the end of the block so several loop
                // iterations land in the trail first.
                items.push(TbItem::Probe(Probe::new(
                    1,
                    Box::new(|p| {
                        if p.insns > 30 {
                            ProbeResult::Violation(Report {
                                pc: p.cpu.pc,
                                kind: ViolationKind::InvalidAccess,
                                details: "late".into(),
                            })
                        } else {
                            ProbeResult::Ok
                        }
                    }),
                )));
                items
            }
        }
        let mut p = proc_from(LOOP_SUM);
        let mut engine = Engine::new(EngineOptions {
            trail_len: 4,
            ..EngineOptions::default()
        });
        let out = engine.run(&mut p, &mut Violator, 1_000_000);
        assert!(matches!(out, RunOutcome::Violation(_)));
        let ctx = &engine.stats.contexts[0];
        assert_eq!(ctx.trail.len(), 4, "trail bounded by trail_len");
        // The trail's final entry is a block of the running program.
        let last = *ctx.trail.last().unwrap();
        assert!(p.module_containing(last).is_some());
        // The stack pointer snapshot points into the stack region.
        assert!(ctx.regs[Reg::SP.index()] >= janitizer_vm::STACK_BASE);
    }

    #[test]
    fn jit_code_invalidates_cache() {
        // Program writes code then runs it; the engine must execute the
        // fresh bytes (cache generation bump).
        let src = ".section text\n.global _start\n_start:\n\
             mov r0, 3\n mov r1, 4096\n mov r2, 1\n syscall\n\
             mov r8, r0\n\
             mov r9, 0x12\n st1 [r8], r9\n\
             mov r9, 0\n st1 [r8+1], r9\n\
             mov r9, 123\n st4 [r8+2], r9\n\
             mov r9, 0x6c\n st1 [r8+6], r9\n\
             call r8\n ret\n";
        let mut p = proc_from(src);
        let mut engine = Engine::new(EngineOptions::default());
        let out = engine.run(&mut p, &mut NullTool, 10_000_000);
        assert_eq!(out.code(), Some(123));
    }

    #[test]
    fn fault_reported_with_pc() {
        let src = ".section text\n.global _start\n_start:\n mov r1, 0x1234\n ld8 r0, [r1]\n ret\n";
        let mut p = proc_from(src);
        let mut engine = Engine::new(EngineOptions::default());
        let out = engine.run(&mut p, &mut NullTool, 1_000_000);
        let RunOutcome::Fault(f) = out else { panic!("expected fault: {out:?}") };
        assert!(matches!(f.kind, FaultKind::Mem(_)));
    }

    #[test]
    fn out_of_fuel() {
        let src = ".section text\n.global _start\n_start:\nspin:\n jmp spin\n";
        let mut p = proc_from(src);
        let mut engine = Engine::new(EngineOptions::default());
        assert_eq!(engine.run(&mut p, &mut NullTool, 5_000), RunOutcome::OutOfFuel);
    }

    #[test]
    fn module_events_delivered_for_dlopen() {
        let plugin_src = ".section text\n.global plugin_work\nplugin_work:\n mov r0, 9\n ret\n";
        let exe_src = ".section text\n.global _start\n_start:\n\
             mov r0, 5\n la r1, name\n mov r2, 6\n syscall\n\
             mov r8, r0\n\
             mov r0, 6\n mov r1, r8\n la r2, sym\n mov r3, 11\n syscall\n\
             call r0\n ret\n\
             .section rodata\nname: .ascii \"lib.so\"\nsym: .ascii \"plugin_work\"\n";
        let o = assemble("e.s", exe_src, &AsmOptions::default()).unwrap();
        let exe = link(&[o], &LinkOptions::executable("e")).unwrap();
        let po = assemble("p.s", plugin_src, &AsmOptions { pic: true }).unwrap();
        let plugin = link(&[po], &LinkOptions::shared_object("lib.so")).unwrap();
        let mut store = ModuleStore::new();
        store.add(exe);
        store.add(plugin);
        let mut p = load_process(&store, "e", &LoadOptions::default()).unwrap();

        struct LoadLog {
            loads: std::rc::Rc<std::cell::RefCell<Vec<String>>>,
        }
        impl Tool for LoadLog {
            fn name(&self) -> &str {
                "loadlog"
            }
            fn on_module_load(&mut self, proc: &mut Process, id: usize) {
                self.loads
                    .borrow_mut()
                    .push(proc.modules[id].image.name.clone());
            }
            fn instrument_block(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
                block
                    .insns
                    .iter()
                    .map(|&(pc, i, n)| TbItem::Guest(pc, i, n))
                    .collect()
            }
        }
        let loads = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut tool = LoadLog { loads: loads.clone() };
        let mut engine = Engine::new(EngineOptions::default());
        let out = engine.run(&mut p, &mut tool, 10_000_000);
        assert_eq!(out.code(), Some(9));
        let seen = loads.borrow();
        assert!(seen.contains(&"e".to_string()), "static module event");
        assert!(seen.contains(&"lib.so".to_string()), "dlopen event: {seen:?}");
    }

    #[test]
    fn probe_can_mutate_guest_registers() {
        // A probe that clobbers r2 mid-block changes program behaviour —
        // the mechanism behind the ipa-ra soundness experiments.
        let src = ".section text\n.global _start\n_start:\n mov r2, 40\n nop\n mov r0, r2\n ret\n";
        let mut p = proc_from(src);
        struct Clobber;
        impl Tool for Clobber {
            fn name(&self) -> &str {
                "clobber"
            }
            fn instrument_block(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
                let mut items = Vec::new();
                for &(pc, i, n) in &block.insns {
                    if matches!(i, Instr::Nop) {
                        items.push(TbItem::Probe(Probe::new(
                            1,
                            Box::new(|p: &mut Process| {
                                p.cpu.set_reg(janitizer_isa::Reg::R2, 0xbad);
                                ProbeResult::Ok
                            }),
                        )));
                    }
                    items.push(TbItem::Guest(pc, i, n));
                }
                items
            }
        }
        let mut engine = Engine::new(EngineOptions::default());
        let out = engine.run(&mut p, &mut Clobber, 1_000_000);
        assert_eq!(out.code(), Some(0xbad), "probe clobber is architecturally real");
    }

    #[test]
    fn profile_conserves_cycles_and_changes_nothing() {
        let mut p_off = proc_from(LOOP_SUM);
        let mut e_off = Engine::new(EngineOptions::default());
        let out_off = e_off.run(&mut p_off, &mut NullTool, 1_000_000);

        let mut p_on = proc_from(LOOP_SUM);
        let mut e_on = Engine::new(EngineOptions {
            profile: true,
            ..EngineOptions::default()
        });
        let out_on = e_on.run(&mut p_on, &mut NullTool, 1_000_000);
        assert_eq!(out_off, out_on, "profiling never changes the outcome");
        assert_eq!(p_off.cycles, p_on.cycles, "profiling is observation-only");
        assert_eq!(p_off.insns, p_on.insns);
        assert!(e_off.profile().is_none());

        // Conservation: per-class sums over blocks reproduce the engine
        // totals exactly, and all classes together account for every
        // process cycle.
        let prof = e_on.profile().expect("profile collected");
        let s = &e_on.stats;
        let sum = |f: fn(&BlockProfile) -> u64| prof.blocks.values().map(f).sum::<u64>();
        assert_eq!(sum(|b| b.translate_cycles), s.translation_cycles);
        assert_eq!(sum(|b| b.dispatch_cycles), s.dispatch_cycles);
        assert_eq!(
            sum(|b| b.inline_probe_cycles + b.clean_call_cycles),
            s.probe_cycles
        );
        assert_eq!(sum(|b| b.guest_insns), s.guest_insns);
        assert_eq!(
            prof.blocks.values().map(|b| b.total_cycles()).sum::<u64>(),
            p_on.cycles,
            "every cycle lands in exactly one class"
        );
        // Execution counts: the loop body block re-executes; its
        // back-edge is direct and the final ret records a Return edge.
        assert!(prof.blocks.values().any(|b| b.execs >= 8));
        assert!(prof
            .edges
            .iter()
            .any(|((_, _, k), n)| *k == EdgeKind::Direct && *n >= 7));
        assert!(prof.edges.keys().any(|(_, _, k)| *k == EdgeKind::Return));
    }

    #[test]
    fn profile_sites_and_elision_notes() {
        struct Tagger;
        impl Tool for Tagger {
            fn name(&self) -> &str {
                "tagger"
            }
            fn instrument_block(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
                let mut items = vec![
                    TbItem::Probe(Probe {
                        cost: 7,
                        run: Box::new(|_| ProbeResult::Ok),
                        site: Some(ProbeSite {
                            tool: "tagger",
                            kind: "block-entry",
                            pc: block.start,
                            class: ProbeClass::CleanCall,
                            origin: SiteOrigin::Static,
                        }),
                    }),
                    TbItem::Note(ProbeSite {
                        tool: "tagger",
                        kind: "elided-check",
                        pc: block.start,
                        class: ProbeClass::Inline,
                        origin: SiteOrigin::Static,
                    }),
                ];
                items.extend(block.insns.iter().map(|&(pc, i, n)| TbItem::Guest(pc, i, n)));
                items
            }
        }

        // Notes must not change execution at all, profiling or not.
        let mut p_plain = proc_from(LOOP_SUM);
        let mut e_plain = Engine::new(EngineOptions::default());
        assert_eq!(e_plain.run(&mut p_plain, &mut Tagger, 1_000_000).code(), Some(55));

        let mut p = proc_from(LOOP_SUM);
        let mut engine = Engine::new(EngineOptions {
            profile: true,
            ..EngineOptions::default()
        });
        assert_eq!(engine.run(&mut p, &mut Tagger, 1_000_000).code(), Some(55));
        assert_eq!(p.cycles, p_plain.cycles, "notes and profiling are free");

        let prof = engine.profile().unwrap();
        for (pc, bp) in &prof.blocks {
            let entry = prof
                .sites
                .get(&ProbeSite {
                    tool: "tagger",
                    kind: "block-entry",
                    pc: *pc,
                    class: ProbeClass::CleanCall,
                    origin: SiteOrigin::Static,
                })
                .expect("tagged probe recorded");
            assert_eq!(entry.execs, bp.execs, "one probe execution per block execution");
            assert_eq!(entry.cycles, bp.execs * 7);
            assert_eq!(entry.violations, 0);
            assert_eq!(bp.clean_call_cycles, bp.execs * 7, "clean-call class attribution");
            let elided = prof
                .sites
                .get(&ProbeSite {
                    tool: "tagger",
                    kind: "elided-check",
                    pc: *pc,
                    class: ProbeClass::Inline,
                    origin: SiteOrigin::Static,
                })
                .expect("note recorded");
            assert_eq!(elided.elided, bp.execs, "one avoided check per execution");
            assert_eq!(elided.execs, 0);
        }
        let site_cycles: u64 = prof.sites.values().map(|s| s.cycles).sum();
        assert_eq!(site_cycles, engine.stats.probe_cycles, "site cycles cover all probes");
    }

    /// A hot call loop: direct-chainable blocks plus an indirect leaf
    /// return, so every trace mechanism fires.
    const HOT_CALL_LOOP: &str = ".section text\n.global _start\n_start:\n\
        mov r0, 0\n mov r2, 200\n\
        loop:\n call leaf\n add r0, r1\n sub r2, 1\n cmp r2, 0\n jne loop\n\
        mov r0, r0\n ret\n\
        leaf:\n mov r1, 2\n ret\n";

    #[test]
    fn traces_change_no_observable_state() {
        // Chaining and superblocks are a host-side execution strategy
        // only: the modeled cost — and therefore every observable
        // figure input — is identical with traces on and off.
        let mut p_on = proc_from(HOT_CALL_LOOP);
        let mut e_on = Engine::new(EngineOptions {
            trace_hot_threshold: 4,
            ..EngineOptions::default()
        });
        let out_on = e_on.run(&mut p_on, &mut NullTool, 10_000_000);

        let mut p_off = proc_from(HOT_CALL_LOOP);
        let mut e_off = Engine::new(EngineOptions {
            traces: false,
            ..EngineOptions::default()
        });
        let out_off = e_off.run(&mut p_off, &mut NullTool, 10_000_000);

        assert_eq!(out_on, out_off);
        assert_eq!(p_on.cycles, p_off.cycles, "traces never change modeled cost");
        assert_eq!(p_on.insns, p_off.insns);
        let (on, off) = (&e_on.stats, &e_off.stats);
        assert_eq!(on.guest_insns, off.guest_insns);
        assert_eq!(on.blocks_translated, off.blocks_translated);
        assert_eq!(on.translation_cycles, off.translation_cycles);
        assert_eq!(on.indirect_transfers, off.indirect_transfers);
        assert_eq!(on.indirect_chain_hits, off.indirect_chain_hits);
        assert_eq!(on.dispatch_cycles, off.dispatch_cycles);
        // ...but the host-side mechanisms really engaged.
        assert!(on.chained_transfers > 0, "direct transfers chained");
        assert!(on.superblocks_formed > 0, "hot chain stitched");
        assert_eq!(off.chained_transfers, 0);
        assert_eq!(off.superblocks_formed, 0);
        assert_eq!(off.trace_exits, 0);
    }

    #[test]
    fn superblock_run_reports_identically() {
        // A violating tool on a hot loop: the superblock path must
        // produce the same reports, contexts and cycles as
        // block-at-a-time execution.
        struct Violator;
        impl Tool for Violator {
            fn name(&self) -> &str {
                "violator"
            }
            fn instrument_block(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
                let mut items: Vec<TbItem> =
                    block.insns.iter().map(|&(pc, i, n)| TbItem::Guest(pc, i, n)).collect();
                items.push(TbItem::Probe(Probe::new(
                    2,
                    Box::new(|p| {
                        if p.insns % 97 == 0 {
                            ProbeResult::Violation(Report {
                                pc: p.cpu.pc,
                                kind: ViolationKind::InvalidAccess,
                                details: format!("at insn {}", p.insns),
                            })
                        } else {
                            ProbeResult::Ok
                        }
                    }),
                )));
                items
            }
        }
        let mut p_sb = proc_from(HOT_CALL_LOOP);
        let mut e_sb = Engine::new(EngineOptions {
            trace_hot_threshold: 2,
            halt_on_violation: false,
            trail_len: 8,
            ..EngineOptions::default()
        });
        let out_sb = e_sb.run(&mut p_sb, &mut Violator, 10_000_000);
        assert!(e_sb.stats.superblocks_formed > 0, "hot loop stitched");

        let mut p_bb = proc_from(HOT_CALL_LOOP);
        let mut e_bb = Engine::new(EngineOptions {
            traces: false,
            halt_on_violation: false,
            trail_len: 8,
            ..EngineOptions::default()
        });
        let out_bb = e_bb.run(&mut p_bb, &mut Violator, 10_000_000);

        assert_eq!(out_sb, out_bb);
        assert_eq!(p_sb.cycles, p_bb.cycles);
        assert_eq!(e_sb.stats.reports, e_bb.stats.reports, "identical violations");
        assert_eq!(e_sb.stats.probe_runs, e_bb.stats.probe_runs);
        // Context snapshots (registers, trail) agree too: the trace
        // runner pushes the same per-block trail entries.
        assert_eq!(e_sb.stats.contexts.len(), e_bb.stats.contexts.len());
        for (a, b) in e_sb.stats.contexts.iter().zip(&e_bb.stats.contexts) {
            assert_eq!(a.pc, b.pc);
            assert_eq!(a.regs, b.regs);
            assert_eq!(a.trail, b.trail);
        }
    }

    #[test]
    fn jit_invalidation_unlinks_chains_and_traces() {
        // The JIT-write program from `jit_code_invalidates_cache`, but
        // with aggressive trace formation: generation checks must tear
        // down stale links and superblocks instead of executing stale
        // code.
        let src = ".section text\n.global _start\n_start:\n\
             mov r0, 3\n mov r1, 4096\n mov r2, 1\n syscall\n\
             mov r8, r0\n\
             mov r9, 0x12\n st1 [r8], r9\n\
             mov r9, 0\n st1 [r8+1], r9\n\
             mov r9, 123\n st4 [r8+2], r9\n\
             mov r9, 0x6c\n st1 [r8+6], r9\n\
             call r8\n ret\n";
        let mut p = proc_from(src);
        let mut engine = Engine::new(EngineOptions {
            trace_hot_threshold: 1,
            ..EngineOptions::default()
        });
        let out = engine.run(&mut p, &mut NullTool, 10_000_000);
        assert_eq!(out.code(), Some(123));

        // And a flush drops every trace structure: a rerun behaves like
        // a cold engine.
        let mut p1 = proc_from(HOT_CALL_LOOP);
        let mut e = Engine::new(EngineOptions {
            trace_hot_threshold: 2,
            ..EngineOptions::default()
        });
        let out1 = e.run(&mut p1, &mut NullTool, 10_000_000);
        assert!(e.stats.superblocks_formed > 0);
        e.flush_cache();
        assert_eq!(e.cached_blocks(), 0);
        let mut p2 = proc_from(HOT_CALL_LOOP);
        let out2 = e.run(&mut p2, &mut NullTool, 10_000_000);
        assert_eq!(out2, out1, "flush-then-rerun reproduces the cold run");
        assert_eq!(p2.cycles, p1.cycles);
    }

    #[test]
    fn oversized_blocks_never_chain_or_trace() {
        // Oversized blocks are rebuilt per visit and live outside the
        // cache, so they can never be a chain source, a chain target or
        // a trace segment — but execution must stay correct.
        let mut p = proc_from(HOT_CALL_LOOP);
        let mut engine = Engine::new(EngineOptions {
            max_tb_items: 0,
            trace_hot_threshold: 1,
            ..EngineOptions::default()
        });
        let out = engine.run(&mut p, &mut NullTool, 10_000_000);
        assert!(matches!(out, RunOutcome::Exited(_)));
        assert_eq!(engine.stats.chained_transfers, 0);
        assert_eq!(engine.stats.superblocks_formed, 0);
        assert!(engine.stats.oversized_blocks > 0);
    }

    #[test]
    fn fused_and_hoisted_probe_accounting() {
        // Fused(n) counts follower checks served by a lead; Hoisted is
        // a dynamically elided check — no cycles, no probe run.
        struct FuseTool;
        impl Tool for FuseTool {
            fn name(&self) -> &str {
                "fuse"
            }
            fn instrument_block(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
                let mut items = vec![
                    TbItem::Probe(Probe::new(5, Box::new(|_| ProbeResult::Fused(2)))),
                    TbItem::Probe(Probe::new(0, Box::new(|_| ProbeResult::Hoisted))),
                ];
                items.extend(block.insns.iter().map(|&(pc, i, n)| TbItem::Guest(pc, i, n)));
                items
            }
        }
        let mut p = proc_from(LOOP_SUM);
        let mut engine = Engine::new(EngineOptions::default());
        let out = engine.run(&mut p, &mut FuseTool, 1_000_000);
        assert_eq!(out.code(), Some(55));
        let s = &engine.stats;
        assert!(s.checks_fused > 0 && s.checks_hoisted > 0);
        assert_eq!(s.checks_fused, 2 * s.checks_hoisted, "two followers per fused lead");
        assert_eq!(s.probe_runs, s.checks_hoisted, "hoisted hits are not probe runs");
        assert_eq!(s.probe_cycles, 5 * s.probe_runs, "hoisted probes charge nothing");
    }
}
