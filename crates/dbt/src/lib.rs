//! # The dynamic binary modifier engine
//!
//! A DynamoRIO-style dynamic binary translation core (paper Figure 2b,
//! "basic-block builder and dispatcher"): guest code is discovered one
//! basic block at a time as it becomes the target of a control transfer,
//! handed to a [`Tool`] for instrumentation, placed in a code cache, and
//! executed. The engine reproduces the *cost structure* of a real DBT
//! through a deterministic [`CostModel`]:
//!
//! * each block is translated once (per-instruction translation cost);
//! * direct transitions between cached blocks are linked and free;
//! * every executed **indirect** control transfer (`ret`, `call r`,
//!   `jmp r`) pays a hash-lookup penalty — the dominant source of
//!   null-client overhead;
//! * instrumentation pays per-probe costs that the tool computes (inline
//!   sequences are cheap, clean-call-style hooks expensive).
//!
//! Instrumentation is expressed as [`Probe`]s interleaved with guest
//! instructions. Probes run host-side but operate on **real guest state**:
//! a probe that claims scratch registers genuinely writes its
//! intermediate values into them (restoring them only if it also claims
//! to spill), so unsound scratch selection — the `ipa-ra` hazard of paper
//! §4.1.2 — breaks guest programs here exactly as it would on hardware.

use janitizer_isa::{Instr, Reg};
use janitizer_vm::{execute, Fault, Process, ProcessEvent, Step};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

/// Deterministic cycle costs of the translation engine.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Per-guest-instruction translation cost, paid once per block build.
    pub translate_per_insn: u64,
    /// Fixed per-block build cost (allocation, linking).
    pub block_build: u64,
    /// Per-execution penalty of an indirect control transfer (code-cache
    /// hash lookup; direct branches are linked and free).
    pub indirect_lookup: u64,
    /// Cost of a clean-call-style hook (full context switch), for tools
    /// that do not inline their instrumentation.
    pub clean_call: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            translate_per_insn: 50,
            block_build: 300,
            indirect_lookup: 22,
            clean_call: 120,
        }
    }
}

/// The category of a security violation, shared by every tool so reports
/// and result files use one canonical vocabulary. `Display` (and
/// [`ViolationKind::as_str`]) produce the exact strings the tools
/// historically emitted, keeping `results/` output unchanged.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ViolationKind {
    /// JASan/Memcheck: access into a heap redzone or past an object.
    HeapBufferOverflow,
    /// JASan/Memcheck: access to freed (quarantined) heap memory.
    HeapUseAfterFree,
    /// JASan: access into a poisoned stack-canary slot.
    StackBufferOverflow,
    /// JASan: access to otherwise-poisoned memory.
    InvalidAccess,
    /// JCFI/CFI baselines: `ret` disagreed with the shadow stack.
    CfiReturn,
    /// JCFI/CFI baselines: indirect call to a disallowed target.
    CfiIcall,
    /// JCFI/CFI baselines: indirect jump to a disallowed target.
    CfiIjmp,
    /// JTaint: control transfer through tainted data.
    TaintedControlTransfer,
    /// Anything else (tests, experimental tools).
    Custom(&'static str),
}

impl ViolationKind {
    /// Canonical string form (the historical `kind` literal).
    pub fn as_str(&self) -> &'static str {
        match self {
            ViolationKind::HeapBufferOverflow => "heap-buffer-overflow",
            ViolationKind::HeapUseAfterFree => "heap-use-after-free",
            ViolationKind::StackBufferOverflow => "stack-buffer-overflow",
            ViolationKind::InvalidAccess => "invalid-access",
            ViolationKind::CfiReturn => "cfi-return-violation",
            ViolationKind::CfiIcall => "cfi-icall-violation",
            ViolationKind::CfiIjmp => "cfi-ijmp-violation",
            ViolationKind::TaintedControlTransfer => "tainted-control-transfer",
            ViolationKind::Custom(s) => s,
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&'static str> for ViolationKind {
    fn from(s: &'static str) -> ViolationKind {
        match s {
            "heap-buffer-overflow" => ViolationKind::HeapBufferOverflow,
            "heap-use-after-free" => ViolationKind::HeapUseAfterFree,
            "stack-buffer-overflow" => ViolationKind::StackBufferOverflow,
            "invalid-access" => ViolationKind::InvalidAccess,
            "cfi-return-violation" => ViolationKind::CfiReturn,
            "cfi-icall-violation" => ViolationKind::CfiIcall,
            "cfi-ijmp-violation" => ViolationKind::CfiIjmp,
            "tainted-control-transfer" => ViolationKind::TaintedControlTransfer,
            other => ViolationKind::Custom(other),
        }
    }
}

/// A security report raised by a probe (e.g. a JASan redzone hit or a JCFI
/// target violation).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Report {
    /// Guest PC of the instruction being guarded.
    pub pc: u64,
    /// Violation category.
    pub kind: ViolationKind,
    /// Human-readable details.
    pub details: String,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {:#x}: {}", self.kind, self.pc, self.details)
    }
}

/// Default bound on collected reports (and tool-side violation
/// contexts) for non-halting runs — generous, but finite.
pub const DEFAULT_MAX_REPORTS: usize = 10_000;

/// One row of an ASan-style shadow region map: eight shadow bytes
/// (guarding 64 application bytes) starting at application address
/// `base`. `None` marks an unmapped shadow granule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShadowRow {
    /// Application address of the row's first granule (64-byte aligned).
    pub base: u64,
    /// The eight shadow bytes.
    pub shadow: Vec<Option<u8>>,
}

/// JASan-specific context captured at the instant a shadow check fired.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JasanContext {
    /// Faulting application address.
    pub access_addr: u64,
    /// Access width in bytes.
    pub access_size: u64,
    /// Whether the access was a store.
    pub is_write: bool,
    /// Shadow byte guarding the faulting granule.
    pub shadow_byte: u8,
    /// Shadow region map rows around the faulting address.
    pub rows: Vec<ShadowRow>,
}

/// JCFI-specific context captured at the instant a CFI check fired.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JcfiContext {
    /// Kind of control transfer: `return`, `indirect-call` or
    /// `indirect-jump`.
    pub cti: &'static str,
    /// The target the guest actually attempted.
    pub actual: u64,
    /// The single expected target, when the policy has one (shadow-stack
    /// returns).
    pub expected: Option<u64>,
    /// Size of the allowed-target set at this site.
    pub allowed_count: u64,
    /// A deterministic sample of allowed targets (sorted, truncated).
    pub allowed_sample: Vec<u64>,
    /// Top of the shadow stack at violation time (most recent first).
    pub shadow_stack: Vec<u64>,
}

/// Tool-specific violation context, recorded by the plugin that raised
/// the report and rendered by the forensics layer (`janitizer-diag`).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum ToolContext {
    /// No tool-specific context was captured.
    #[default]
    None,
    /// JASan shadow-memory context.
    Jasan(JasanContext),
    /// JCFI expected-vs-actual target sets.
    Jcfi(JcfiContext),
}

/// Engine-side execution context captured when a probe reported a
/// violation: a register snapshot plus the trailing window of executed
/// blocks. Indexed in parallel with [`Stats::reports`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ViolationContext {
    /// Guest PC of the guarded instruction (same as the report's).
    pub pc: u64,
    /// All sixteen general-purpose registers at violation time.
    pub regs: [u64; 16],
    /// Packed condition flags ([`janitizer_isa::Flags::to_byte`]).
    pub flags: u8,
    /// Start addresses of the last executed blocks, oldest first; the
    /// final entry is the block containing the faulting pc.
    pub trail: Vec<u64>,
}

/// Result of running one probe.
#[derive(Debug)]
pub enum ProbeResult {
    /// Fast path: only the probe's base cost is charged.
    Ok,
    /// Slow path: charge additional cycles.
    Extra(u64),
    /// A security violation.
    Violation(Report),
}

/// The modeled instrumentation style of a probe: inline sequences are
/// cheap, clean-call hooks pay a full context switch. Used by the
/// profiler to attribute probe cycles by class; the probe's `cost`
/// already reflects the style, so this never changes execution.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ProbeClass {
    /// Inlined instruction sequence (JASan shadow checks, JCFI checks).
    Inline,
    /// Clean-call-style hook with a full context switch (Memcheck).
    CleanCall,
}

impl ProbeClass {
    /// Canonical string form for artifacts.
    pub fn as_str(&self) -> &'static str {
        match self {
            ProbeClass::Inline => "inline",
            ProbeClass::CleanCall => "clean-call",
        }
    }
}

/// Whether an instrumentation site was placed by a static rewrite rule
/// or by the dynamic fallback path (statically-unseen code).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SiteOrigin {
    /// Placed from a rule the static analyzer emitted.
    Static,
    /// Placed by the conservative dynamic fallback.
    Dynamic,
}

impl SiteOrigin {
    /// Canonical string form for artifacts.
    pub fn as_str(&self) -> &'static str {
        match self {
            SiteOrigin::Static => "static",
            SiteOrigin::Dynamic => "dynamic",
        }
    }
}

/// Identity of one instrumentation site: which tool placed what kind of
/// probe at which guest pc. The ordering (tool, kind, pc, …) makes
/// profile maps deterministic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProbeSite {
    /// Owning tool (`"jasan"`, `"jcfi"`, …).
    pub tool: &'static str,
    /// Probe kind within the tool (`"shadow-check"`, `"ret-check"`, …).
    pub kind: &'static str,
    /// Guest pc of the guarded instruction.
    pub pc: u64,
    /// Instrumentation style, for per-class attribution.
    pub class: ProbeClass,
    /// Static rule vs. dynamic fallback.
    pub origin: SiteOrigin,
}

/// A host-side instrumentation callback operating on guest state.
pub struct Probe {
    /// Cycles charged on every execution (the inline fast-path cost).
    pub cost: u64,
    /// The callback.
    pub run: Box<dyn FnMut(&mut Process) -> ProbeResult>,
    /// Site identity for profiling attribution. `None` (anonymous
    /// probes: tests, experiments) is attributed as an inline probe
    /// without a per-site row.
    pub site: Option<ProbeSite>,
}

impl Probe {
    /// An anonymous probe (no site attribution).
    pub fn new(cost: u64, run: Box<dyn FnMut(&mut Process) -> ProbeResult>) -> Probe {
        Probe { cost, run, site: None }
    }
}

impl fmt::Debug for Probe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Probe")
            .field("cost", &self.cost)
            .field("site", &self.site)
            .finish()
    }
}

/// One element of a translated block.
#[derive(Debug)]
pub enum TbItem {
    /// An original guest instruction `(pc, instr, next_pc)`.
    Guest(u64, Instr, u64),
    /// Injected instrumentation.
    Probe(Probe),
    /// Observation-only marker: a check site the static rules proved
    /// safe, so no probe was emitted. Stripped at translation time —
    /// before the `max_tb_items` size guard, so block classification is
    /// identical with profiling on or off — and recorded (when
    /// profiling) so elided work is attributable per site.
    Note(ProbeSite),
}

/// A guest basic block as discovered by the block builder, before
/// instrumentation: `(pc, instr, next_pc)` triples ending at the first
/// control-transfer instruction.
#[derive(Clone, Debug)]
pub struct DecodedBlock {
    /// Block start address.
    pub start: u64,
    /// The instructions.
    pub insns: Vec<(u64, Instr, u64)>,
}

impl DecodedBlock {
    /// Address one past the end of the block.
    pub fn end(&self) -> u64 {
        self.insns.last().map(|(_, _, n)| *n).unwrap_or(self.start)
    }
}

/// An instrumentation client (the paper's "custom security technique").
pub trait Tool {
    /// Tool name (for reports and logs).
    fn name(&self) -> &str;

    /// Called once before guest execution starts, after all statically
    /// loadable modules are mapped (map shadow regions, seed tables).
    fn on_start(&mut self, _proc: &mut Process) {}

    /// Called when a module is mapped — at process setup for static
    /// modules, or during execution for `dlopen`ed ones. This is where
    /// rewrite-rule files are loaded into per-module hash tables.
    fn on_module_load(&mut self, _proc: &mut Process, _module_id: usize) {}

    /// Instruments one newly discovered basic block.
    fn instrument_block(&mut self, proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem>;

    /// Called after the guest exits (flush statistics).
    fn on_exit(&mut self, _proc: &mut Process) {}
}

/// The null client: translation without modification, measuring pure
/// engine overhead (paper §6.1.1 "Null client").
#[derive(Debug, Default)]
pub struct NullTool;

impl Tool for NullTool {
    fn name(&self) -> &str {
        "null"
    }

    fn instrument_block(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
        block
            .insns
            .iter()
            .map(|&(pc, insn, next)| TbItem::Guest(pc, insn, next))
            .collect()
    }
}

/// Why the engine stopped.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// Guest exited normally.
    Exited(i64),
    /// Guest faulted.
    Fault(Fault),
    /// Fuel exhausted.
    OutOfFuel,
    /// A probe reported a violation and the engine halts on violations.
    Violation(Report),
}

impl RunOutcome {
    /// Exit code for normal termination.
    pub fn code(&self) -> Option<i64> {
        match self {
            RunOutcome::Exited(c) => Some(*c),
            _ => None,
        }
    }
}

/// Execution statistics of one engine run.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Basic blocks translated (code-cache misses).
    pub blocks_translated: u64,
    /// Guest instructions executed.
    pub guest_insns: u64,
    /// Cycles spent translating.
    pub translation_cycles: u64,
    /// Cycles spent on indirect-transfer lookups.
    pub dispatch_cycles: u64,
    /// Cycles spent in probes.
    pub probe_cycles: u64,
    /// Probe executions.
    pub probe_runs: u64,
    /// Dynamic count of indirect control transfers.
    pub indirect_transfers: u64,
    /// All violation reports (in order), capped at
    /// [`EngineOptions::max_reports`].
    pub reports: Vec<Report>,
    /// Engine-side execution contexts, one per entry in `reports`
    /// (same order).
    pub contexts: Vec<ViolationContext>,
    /// Violations observed after `reports` reached the cap.
    pub reports_dropped: u64,
    /// Translations that exceeded [`EngineOptions::max_tb_items`] and
    /// were executed without being cached (the translation-size resource
    /// guard: hostile block shapes cannot balloon the code cache).
    pub oversized_blocks: u64,
}

impl Stats {
    /// Cycles the engine added on top of pure guest execution:
    /// translation + dispatch + probes. Always at most the process's
    /// total cycle count for the same run.
    pub fn total_overhead_cycles(&self) -> u64 {
        self.translation_cycles + self.dispatch_cycles + self.probe_cycles
    }
}

/// How one block transferred control to its successor, classified by
/// the block's final executed guest instruction: `ret` → [`EdgeKind::Return`],
/// any other indirect CTI → [`EdgeKind::Indirect`], everything else
/// (direct branches, fall-through, syscall-ended blocks) →
/// [`EdgeKind::Direct`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EdgeKind {
    /// Direct branch or fall-through (linked, free under the cost model).
    Direct,
    /// Indirect call/jump (pays the dispatch lookup).
    Indirect,
    /// Return (pays the dispatch lookup).
    Return,
}

impl EdgeKind {
    /// Canonical string form for artifacts.
    pub fn as_str(&self) -> &'static str {
        match self {
            EdgeKind::Direct => "direct",
            EdgeKind::Indirect => "indirect",
            EdgeKind::Return => "return",
        }
    }
}

/// Per-code-cache-slot profile counters for one block, keyed by the
/// block's start pc. Every cycle the engine or the guest spends while
/// the block is current lands in exactly one class, so the per-class
/// sums over all blocks reproduce the engine totals exactly
/// (conservation; see `EngineProfile`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BlockProfile {
    /// Block executions.
    pub execs: u64,
    /// Times the block was (re)translated (cache misses, oversized
    /// rebuilds, post-invalidation rebuilds).
    pub translations: u64,
    /// Guest instructions executed inside the block, cumulative.
    pub guest_insns: u64,
    /// Engine translation cost (block build + per-insn translate).
    pub translate_cycles: u64,
    /// Translation-time cycles the *tool* charged while instrumenting
    /// (the dynamic fallback's per-block analysis cost).
    pub tool_translate_cycles: u64,
    /// Indirect-lookup cycles paid when this block ended in an indirect
    /// transfer.
    pub dispatch_cycles: u64,
    /// Cycles in inline-class probes (cost + slow-path extras).
    pub inline_probe_cycles: u64,
    /// Cycles in clean-call-class probes.
    pub clean_call_cycles: u64,
    /// Pure guest cycles (instruction costs, incl. syscall charges).
    pub guest_cycles: u64,
}

impl BlockProfile {
    /// All attributed cycles of this block, across every class.
    pub fn total_cycles(&self) -> u64 {
        self.translate_cycles
            + self.tool_translate_cycles
            + self.dispatch_cycles
            + self.inline_probe_cycles
            + self.clean_call_cycles
            + self.guest_cycles
    }
}

/// Per-probe-site accounting: executions, modeled cycles, violations,
/// and executions where the check was *elided* by a static rule (the
/// site appeared as a [`TbItem::Note`] in a block that then executed).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SiteProfile {
    /// Probe executions at this site.
    pub execs: u64,
    /// Cycles attributed to this site (cost + slow-path extras).
    pub cycles: u64,
    /// Violations this site reported.
    pub violations: u64,
    /// Dynamic executions where the check was statically elided.
    pub elided: u64,
}

/// The engine-side profile: deterministic, cycle-model-exact counters
/// accumulated while [`EngineOptions::profile`] is on. Observation
/// only — guest results, figure bytes and cycle totals are identical
/// with profiling on or off. Conservation invariants (enforced by
/// tests): per-class sums over `blocks` equal the corresponding
/// [`Stats`] totals, and the sum of *all* classes equals the process's
/// cycle delta for the profiled runs.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct EngineProfile {
    /// Per-block counters keyed by block start pc.
    pub blocks: BTreeMap<u64, BlockProfile>,
    /// Per-site counters keyed by the full site identity.
    pub sites: BTreeMap<ProbeSite, SiteProfile>,
    /// Block→successor transfer counts: `(from_pc, to_pc, kind) → n`.
    pub edges: BTreeMap<(u64, u64, EdgeKind), u64>,
    /// Elided sites per block, captured at translation time; each block
    /// execution counts one avoided check per listed site.
    elided: BTreeMap<u64, Vec<ProbeSite>>,
}

/// Counter-field snapshot of [`Stats`], used to compute per-run deltas
/// when a single engine serves several consecutive runs.
#[derive(Clone, Copy, Default)]
struct StatsMark {
    blocks_translated: u64,
    guest_insns: u64,
    translation_cycles: u64,
    dispatch_cycles: u64,
    probe_cycles: u64,
    probe_runs: u64,
    indirect_transfers: u64,
    oversized_blocks: u64,
}

impl StatsMark {
    fn of(s: &Stats) -> StatsMark {
        StatsMark {
            blocks_translated: s.blocks_translated,
            guest_insns: s.guest_insns,
            translation_cycles: s.translation_cycles,
            dispatch_cycles: s.dispatch_cycles,
            probe_cycles: s.probe_cycles,
            probe_runs: s.probe_runs,
            indirect_transfers: s.indirect_transfers,
            oversized_blocks: s.oversized_blocks,
        }
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// Cost model.
    pub costs: CostModel,
    /// Stop at the first violation (ASan-style) or keep going (collecting
    /// reports).
    pub halt_on_violation: bool,
    /// Maximum guest instructions per block.
    pub max_block: usize,
    /// Upper bound on collected reports (and contexts). Non-halting runs
    /// over pathological inputs cannot grow the report vector without
    /// limit; overflow is counted in [`Stats::reports_dropped`].
    pub max_reports: usize,
    /// Length of the executed-block ring buffer snapshotted into each
    /// violation context as the execution trail.
    pub trail_len: usize,
    /// Upper bound on the number of translation items (guest instructions
    /// plus probes) a block may carry and still be *cached*. Oversized
    /// translations execute normally but are rebuilt on every visit, so a
    /// hostile tool/input combination cannot grow the code cache without
    /// limit through pathologically instrumented blocks. Counted in
    /// [`Stats::oversized_blocks`] and the `dbt.oversized_blocks`
    /// telemetry counter. The default is far above anything the bundled
    /// tools emit for a [`EngineOptions::max_block`]-sized block, so the
    /// happy path never hits it.
    pub max_tb_items: usize,
    /// Collect the deterministic per-block/per-site/per-edge profile
    /// ([`Engine::profile`]). Observation only: results and cycle
    /// totals are byte-identical with it on or off.
    pub profile: bool,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            costs: CostModel::default(),
            halt_on_violation: true,
            max_block: 128,
            max_reports: DEFAULT_MAX_REPORTS,
            trail_len: 16,
            max_tb_items: 1 << 16,
            profile: false,
        }
    }
}

struct CachedBlock {
    items: Vec<TbItem>,
}

/// The dynamic binary modifier: owns the code cache and drives execution
/// of a [`Process`] under a [`Tool`].
///
/// The code cache is index-based: `index` maps a block's start pc to a
/// slot in `slots`, and the hot dispatch loop does a single hash lookup
/// followed by a slot `take`/put-back — instead of the remove/reinsert
/// pair on a `HashMap<u64, CachedBlock>` that re-hashed the pc and moved
/// the block's item vector through the table twice per execution.
pub struct Engine {
    opts: EngineOptions,
    index: HashMap<u64, u32>,
    slots: Vec<Option<CachedBlock>>,
    free: Vec<u32>,
    cache_gen: u64,
    /// Ring buffer of the start pcs of the last executed blocks, oldest
    /// first. Observation only — never charged to the guest.
    trail: VecDeque<u64>,
    /// Accumulated profile when [`EngineOptions::profile`] is on.
    profile: Option<EngineProfile>,
    /// Statistics for the current/last run.
    pub stats: Stats,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("cached_blocks", &self.index.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Engine {
    /// Creates an engine with the given options.
    pub fn new(opts: EngineOptions) -> Engine {
        let profile = opts.profile.then(EngineProfile::default);
        Engine {
            opts,
            index: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            cache_gen: 0,
            trail: VecDeque::new(),
            profile,
            stats: Stats::default(),
        }
    }

    /// The accumulated profile, when [`EngineOptions::profile`] is on.
    pub fn profile(&self) -> Option<&EngineProfile> {
        self.profile.as_ref()
    }

    /// Takes the accumulated profile (resetting collection), when
    /// profiling is on.
    pub fn take_profile(&mut self) -> Option<EngineProfile> {
        self.profile.as_mut().map(std::mem::take)
    }

    /// Snapshots CPU state and the executed-block trail for a violation
    /// at `pc`. Pure observation: charges nothing to the guest.
    fn capture_context(&self, proc: &Process, pc: u64) -> ViolationContext {
        let mut regs = [0u64; 16];
        for r in Reg::ALL {
            regs[r.index()] = proc.cpu.reg(r);
        }
        ViolationContext {
            pc,
            regs,
            flags: proc.cpu.flags.to_byte(),
            trail: self.trail.iter().copied().collect(),
        }
    }

    /// Places a freshly translated block into a (possibly recycled) slot.
    fn alloc_slot(&mut self, block: CachedBlock) -> u32 {
        match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(block);
                s
            }
            None => {
                self.slots.push(Some(block));
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Builds (but does not cache) the decoded block starting at `pc`.
    fn build_block(
        &self,
        proc: &mut Process,
        pc: u64,
    ) -> Result<DecodedBlock, Fault> {
        let mut insns = Vec::new();
        let mut cur = pc;
        loop {
            let (insn, next) = match proc.fetch_decode(cur) {
                Ok(v) => v,
                // A decode failure *after* the first instruction ends the
                // block; the fault surfaces naturally if execution ever
                // falls through to the bad bytes.
                Err(f) if insns.is_empty() => return Err(f),
                Err(_) => break,
            };
            insns.push((cur, insn, next));
            // Blocks end at CTIs and (as in DynamoRIO) at syscalls.
            if insn.is_cti() || insn == Instr::Syscall || insns.len() >= self.opts.max_block {
                break;
            }
            cur = next;
        }
        Ok(DecodedBlock { start: pc, insns })
    }

    /// Runs `proc` under `tool` until exit, fault, violation (if halting)
    /// or `fuel` cycles.
    ///
    /// Module-load events (including `dlopen` during execution) are
    /// forwarded to the tool before the next block executes.
    pub fn run(&mut self, proc: &mut Process, tool: &mut dyn Tool, fuel: u64) -> RunOutcome {
        let mark = StatsMark::of(&self.stats);
        let cycles_at_entry = proc.cycles;
        // A fresh trail per run: blocks from a previous run served by the
        // same engine must not appear in this run's violation contexts.
        self.trail.clear();
        // Deliver already-pending module loads, then start the tool.
        let pending: Vec<ProcessEvent> = proc.events.drain(..).collect();
        for ev in pending {
            let ProcessEvent::ModuleLoaded { id } = ev;
            janitizer_telemetry::event!("dbt.module_load", id = id);
            tool.on_module_load(proc, id);
        }
        tool.on_start(proc);

        let outcome = self.run_inner(proc, tool, fuel);
        tool.on_exit(proc);
        self.flush_telemetry(mark, cycles_at_entry, proc.cycles);
        outcome
    }

    /// Attributes this run's cycle deltas to the telemetry registry.
    /// Overhead cycles go to `run;dbt;{translate,dispatch,probes}` and
    /// the remainder — pure guest execution — to `run;guest`, so the sum
    /// of span cycles always equals the process's cycle delta.
    fn flush_telemetry(&self, mark: StatsMark, cycles_at_entry: u64, cycles_at_exit: u64) {
        if !janitizer_telemetry::enabled() {
            return;
        }
        let s = &self.stats;
        let translate = s.translation_cycles - mark.translation_cycles;
        let dispatch = s.dispatch_cycles - mark.dispatch_cycles;
        let probes = s.probe_cycles - mark.probe_cycles;
        let total = cycles_at_exit.saturating_sub(cycles_at_entry);
        janitizer_telemetry::cycles("run;dbt;translate", translate);
        janitizer_telemetry::cycles("run;dbt;dispatch", dispatch);
        janitizer_telemetry::cycles("run;dbt;probes", probes);
        janitizer_telemetry::cycles(
            "run;guest",
            total.saturating_sub(translate + dispatch + probes),
        );
        janitizer_telemetry::counter_add(
            "dbt.blocks_translated",
            s.blocks_translated - mark.blocks_translated,
        );
        janitizer_telemetry::counter_add("dbt.guest_insns", s.guest_insns - mark.guest_insns);
        janitizer_telemetry::counter_add("dbt.probe_runs", s.probe_runs - mark.probe_runs);
        janitizer_telemetry::counter_add(
            "dbt.indirect_transfers",
            s.indirect_transfers - mark.indirect_transfers,
        );
        janitizer_telemetry::counter_add(
            "dbt.oversized_blocks",
            s.oversized_blocks - mark.oversized_blocks,
        );
    }

    fn run_inner(&mut self, proc: &mut Process, tool: &mut dyn Tool, fuel: u64) -> RunOutcome {
        loop {
            if proc.cycles >= fuel {
                return RunOutcome::OutOfFuel;
            }
            // JIT writes invalidate the cache.
            if proc.mem.code_generation() != self.cache_gen {
                self.index.clear();
                self.slots.clear();
                self.free.clear();
                self.cache_gen = proc.mem.code_generation();
            }
            // Deliver dlopen events raised by the previous block.
            if !proc.events.is_empty() {
                let pending: Vec<ProcessEvent> = proc.events.drain(..).collect();
                for ev in pending {
                    let ProcessEvent::ModuleLoaded { id } = ev;
                    janitizer_telemetry::event!("dbt.module_load", id = id);
                    tool.on_module_load(proc, id);
                }
            }

            let pc = proc.cpu.pc;
            // `slot` is `None` for an oversized translation: it executes
            // from the local `uncached` binding and is never cached.
            let mut uncached: Option<CachedBlock> = None;
            let slot = if let Some(&s) = self.index.get(&pc) {
                Some(s)
            } else {
                let block = match self.build_block(proc, pc) {
                    Ok(b) => b,
                    Err(f) => return RunOutcome::Fault(f),
                };
                let build_cost = self.opts.costs.block_build
                    + self.opts.costs.translate_per_insn * block.insns.len() as u64;
                proc.cycles += build_cost;
                self.stats.translation_cycles += build_cost;
                self.stats.blocks_translated += 1;
                janitizer_telemetry::histogram_record(
                    "dbt.block_insns",
                    block.insns.len() as u64,
                );
                janitizer_telemetry::event!(
                    "dbt.block_translated",
                    pc = pc,
                    insns = block.insns.len(),
                    cost = build_cost,
                );
                let cycles_before_instrument = proc.cycles;
                let mut items = tool.instrument_block(proc, &block);
                let tool_translate = proc.cycles - cycles_before_instrument;
                // Elision notes are observation-only markers. They are
                // stripped *before* the size guard below so oversized
                // classification is byte-identical whether or not a tool
                // emits them, and recorded (when profiling) so each
                // execution of the block can count its avoided checks.
                if items.iter().any(|i| matches!(i, TbItem::Note(_))) {
                    let mut notes: Vec<ProbeSite> = Vec::new();
                    items.retain(|i| match i {
                        TbItem::Note(s) => {
                            notes.push(*s);
                            false
                        }
                        _ => true,
                    });
                    if let Some(prof) = &mut self.profile {
                        prof.elided.insert(pc, notes);
                    }
                }
                if let Some(prof) = &mut self.profile {
                    let bp = prof.blocks.entry(pc).or_default();
                    bp.translations += 1;
                    bp.translate_cycles += build_cost;
                    bp.tool_translate_cycles += tool_translate;
                }
                if items.len() > self.opts.max_tb_items {
                    // Translation-size guard: run it, don't cache it.
                    self.stats.oversized_blocks += 1;
                    janitizer_telemetry::event!(
                        "dbt.oversized_block",
                        pc = pc,
                        items = items.len(),
                    );
                    uncached = Some(CachedBlock { items });
                    None
                } else {
                    let s = self.alloc_slot(CachedBlock { items });
                    self.index.insert(pc, s);
                    // The tool may have been the one to notice a module load
                    // (rule-file loading) — but cache generation may also have
                    // changed; re-check on the next loop iteration.
                    Some(s)
                }
            };

            // Record the block in the execution trail before running it,
            // so the final trail entry is the block containing a fault.
            if self.opts.trail_len > 0 {
                if self.trail.len() >= self.opts.trail_len {
                    self.trail.pop_front();
                }
                self.trail.push_back(pc);
            }

            // Execute the cached block. We temporarily take it out of its
            // slot so probes can borrow the engine-free process state.
            let mut cached = match (uncached.take(), slot) {
                (Some(b), _) => b,
                (None, Some(s)) => {
                    self.slots[s as usize].take().expect("indexed slot occupied")
                }
                (None, None) => unreachable!("block neither cached nor oversized"),
            };
            let profiling = self.profile.is_some();
            let mut outcome: Option<RunOutcome> = None;
            let mut next_pc = pc;
            let mut ended_indirect = false;
            let mut ended_ret = false;
            // Per-execution class accumulators, flushed into the block's
            // profile row once at block end (keeps the per-item hot path
            // to plain local adds).
            let mut prof_guest_cycles = 0u64;
            let mut prof_guest_insns = 0u64;
            let mut prof_inline = 0u64;
            let mut prof_clean_call = 0u64;
            'block: for item in cached.items.iter_mut() {
                match item {
                    TbItem::Guest(ipc, insn, inext) => {
                        proc.insns += 1;
                        self.stats.guest_insns += 1;
                        let guest_before = if profiling { proc.cycles } else { 0 };
                        proc.cycles += insn.cost();
                        ended_indirect = insn.is_indirect_cti();
                        ended_ret = matches!(insn, Instr::Ret);
                        let step = execute(proc, insn, *inext);
                        if profiling {
                            // Captures the instruction cost plus anything
                            // execution itself charged (syscalls).
                            prof_guest_cycles += proc.cycles - guest_before;
                            prof_guest_insns += 1;
                        }
                        match step {
                            Step::Next => next_pc = *inext,
                            Step::Jump(t) => {
                                next_pc = t;
                            }
                            Step::Exit(c) => {
                                outcome = Some(RunOutcome::Exited(c));
                                break 'block;
                            }
                            Step::Fault(kind) => {
                                outcome = Some(RunOutcome::Fault(Fault { pc: *ipc, kind }));
                                break 'block;
                            }
                        }
                    }
                    TbItem::Probe(p) => {
                        let probe_before = if profiling { proc.cycles } else { 0 };
                        proc.cycles += p.cost;
                        self.stats.probe_cycles += p.cost;
                        self.stats.probe_runs += 1;
                        let mut violated = false;
                        match (p.run)(proc) {
                            ProbeResult::Ok => {}
                            ProbeResult::Extra(c) => {
                                proc.cycles += c;
                                self.stats.probe_cycles += c;
                            }
                            ProbeResult::Violation(r) => {
                                violated = true;
                                janitizer_telemetry::event!(
                                    "dbt.violation",
                                    kind = r.kind.as_str(),
                                    pc = r.pc,
                                );
                                if self.stats.reports.len() < self.opts.max_reports {
                                    let ctx = self.capture_context(proc, r.pc);
                                    self.stats.contexts.push(ctx);
                                    self.stats.reports.push(r.clone());
                                } else {
                                    self.stats.reports_dropped += 1;
                                }
                                if self.opts.halt_on_violation {
                                    outcome = Some(RunOutcome::Violation(r));
                                }
                            }
                        }
                        if profiling {
                            let delta = proc.cycles - probe_before;
                            match p.site.map_or(ProbeClass::Inline, |s| s.class) {
                                ProbeClass::Inline => prof_inline += delta,
                                ProbeClass::CleanCall => prof_clean_call += delta,
                            }
                            if let Some(site) = p.site {
                                let sp = self
                                    .profile
                                    .as_mut()
                                    .expect("profiling implies profile")
                                    .sites
                                    .entry(site)
                                    .or_default();
                                sp.execs += 1;
                                sp.cycles += delta;
                                sp.violations += u64::from(violated);
                            }
                        }
                        if outcome.is_some() {
                            break 'block;
                        }
                    }
                    // Notes never survive translation (stripped above).
                    TbItem::Note(_) => {}
                }
            }
            if let Some(prof) = &mut self.profile {
                let EngineProfile { blocks, sites, elided, .. } = prof;
                let bp = blocks.entry(pc).or_default();
                bp.execs += 1;
                bp.guest_insns += prof_guest_insns;
                bp.guest_cycles += prof_guest_cycles;
                bp.inline_probe_cycles += prof_inline;
                bp.clean_call_cycles += prof_clean_call;
                if let Some(notes) = elided.get(&pc) {
                    for s in notes {
                        sites.entry(*s).or_default().elided += 1;
                    }
                }
            }
            // Only put the block back when it was cached at all and the
            // cache was not invalidated mid-block (e.g. by a guest write
            // to JIT memory). Oversized blocks (`slot == None`) are
            // simply dropped.
            if let Some(slot) = slot {
                if proc.mem.code_generation() == self.cache_gen {
                    self.slots[slot as usize] = Some(cached);
                } else {
                    self.index.remove(&pc);
                    self.free.push(slot);
                }
            }
            if let Some(o) = outcome {
                return o;
            }
            if ended_indirect {
                proc.cycles += self.opts.costs.indirect_lookup;
                self.stats.dispatch_cycles += self.opts.costs.indirect_lookup;
                self.stats.indirect_transfers += 1;
                if let Some(prof) = &mut self.profile {
                    prof.blocks.entry(pc).or_default().dispatch_cycles +=
                        self.opts.costs.indirect_lookup;
                }
            }
            if let Some(prof) = &mut self.profile {
                let kind = if ended_ret {
                    EdgeKind::Return
                } else if ended_indirect {
                    EdgeKind::Indirect
                } else {
                    EdgeKind::Direct
                };
                *prof.edges.entry((pc, next_pc, kind)).or_insert(0) += 1;
            }
            proc.cpu.pc = next_pc;
        }
    }

    /// Number of blocks currently in the code cache.
    pub fn cached_blocks(&self) -> usize {
        self.index.len()
    }

    /// Clears the code cache (tests and ablations).
    pub fn flush_cache(&mut self) {
        self.index.clear();
        self.slots.clear();
        self.free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janitizer_asm::{assemble, AsmOptions};
    use janitizer_link::{link, LinkOptions};
    use janitizer_vm::{load_process, FaultKind, LoadOptions, ModuleStore};

    fn proc_from(src: &str) -> Process {
        let o = assemble("t.s", src, &AsmOptions::default()).unwrap();
        let img = link(&[o], &LinkOptions::executable("t")).unwrap();
        let mut store = ModuleStore::new();
        store.add(img);
        load_process(&store, "t", &LoadOptions::default()).unwrap()
    }

    const LOOP_SUM: &str = ".section text\n.global _start\n_start:\n\
        mov r0, 0\n mov r2, 10\n\
        loop:\n add r0, r2\n sub r2, 1\n cmp r2, 0\n jne loop\n ret\n";

    #[test]
    fn null_tool_preserves_semantics() {
        let mut native = proc_from(LOOP_SUM);
        let native_exit = native.run_native(1_000_000);
        assert_eq!(native_exit.code(), Some(55));

        let mut dbt_proc = proc_from(LOOP_SUM);
        let mut engine = Engine::new(EngineOptions::default());
        let out = engine.run(&mut dbt_proc, &mut NullTool, 1_000_000);
        assert_eq!(out.code(), Some(55));
        assert_eq!(dbt_proc.insns, native.insns, "same instructions executed");
    }

    #[test]
    fn dbt_charges_translation_and_dispatch() {
        let mut native = proc_from(LOOP_SUM);
        native.run_native(1_000_000);

        let mut dbt_proc = proc_from(LOOP_SUM);
        let mut engine = Engine::new(EngineOptions::default());
        engine.run(&mut dbt_proc, &mut NullTool, 1_000_000);
        assert!(
            dbt_proc.cycles > native.cycles,
            "null client is not free: {} vs {}",
            dbt_proc.cycles,
            native.cycles
        );
        assert!(engine.stats.blocks_translated >= 2);
        assert!(engine.stats.translation_cycles > 0);
        // The ret pays an indirect lookup.
        assert!(engine.stats.indirect_transfers >= 1);
        // The loop body is translated once, not per iteration.
        assert!(engine.stats.blocks_translated < 10);
    }

    #[test]
    fn oversized_blocks_execute_but_are_not_cached() {
        // With a tiny translation budget every block is oversized: the
        // program must still run to the same result, nothing may be
        // cached, and the guard must be visible in the stats.
        let mut p = proc_from(LOOP_SUM);
        let mut engine = Engine::new(EngineOptions {
            max_tb_items: 0,
            ..EngineOptions::default()
        });
        let out = engine.run(&mut p, &mut NullTool, 1_000_000);
        assert_eq!(out.code(), Some(55), "guard never changes semantics");
        assert_eq!(engine.cached_blocks(), 0, "nothing cached");
        assert!(engine.stats.oversized_blocks >= 10, "rebuilt per visit");

        // The default budget never triggers for ordinary programs.
        let mut p2 = proc_from(LOOP_SUM);
        let mut engine2 = Engine::new(EngineOptions::default());
        assert_eq!(engine2.run(&mut p2, &mut NullTool, 1_000_000).code(), Some(55));
        assert_eq!(engine2.stats.oversized_blocks, 0);
        assert!(engine2.cached_blocks() > 0);
    }

    #[test]
    fn overhead_cycles_bounded_by_total() {
        // Engine-added overhead (translation + dispatch + probes) can
        // never exceed the process's total cycle count, and the parts
        // must sum to the accessor's whole.
        let mut p = proc_from(LOOP_SUM);
        let mut engine = Engine::new(EngineOptions::default());
        engine.run(&mut p, &mut NullTool, 1_000_000);
        let s = &engine.stats;
        assert_eq!(
            s.total_overhead_cycles(),
            s.translation_cycles + s.dispatch_cycles + s.probe_cycles
        );
        assert!(
            s.total_overhead_cycles() <= p.cycles,
            "overhead {} exceeds total process cycles {}",
            s.total_overhead_cycles(),
            p.cycles
        );
        // Monotonic consistency: a second run on the same engine only
        // grows the cumulative stats, and the bound still holds.
        let overhead_after_first = s.total_overhead_cycles();
        let mut p2 = proc_from(LOOP_SUM);
        engine.run(&mut p2, &mut NullTool, 1_000_000);
        assert!(engine.stats.total_overhead_cycles() >= overhead_after_first);
        assert!(engine.stats.total_overhead_cycles() <= p.cycles + p2.cycles);
    }

    #[test]
    fn probes_run_and_charge() {
        let mut p = proc_from(LOOP_SUM);
        struct CountingTool {
            count: std::rc::Rc<std::cell::Cell<u64>>,
        }
        impl Tool for CountingTool {
            fn name(&self) -> &str {
                "count"
            }
            fn instrument_block(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
                let mut items = Vec::new();
                let c = self.count.clone();
                items.push(TbItem::Probe(Probe::new(
                    5,
                    Box::new(move |_p| {
                        c.set(c.get() + 1);
                        ProbeResult::Ok
                    }),
                )));
                items.extend(
                    block
                        .insns
                        .iter()
                        .map(|&(pc, i, n)| TbItem::Guest(pc, i, n)),
                );
                items
            }
        }
        let count = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut tool = CountingTool { count: count.clone() };
        let mut engine = Engine::new(EngineOptions::default());
        let out = engine.run(&mut p, &mut tool, 1_000_000);
        assert_eq!(out.code(), Some(55));
        // Block-entry probe runs once per block execution: at least 10
        // loop iterations.
        assert!(count.get() >= 10, "probe ran {} times", count.get());
        assert_eq!(engine.stats.probe_runs, count.get());
        assert_eq!(engine.stats.probe_cycles, count.get() * 5);
    }

    #[test]
    fn violation_halts_when_configured() {
        let mut p = proc_from(LOOP_SUM);
        struct Violator;
        impl Tool for Violator {
            fn name(&self) -> &str {
                "violator"
            }
            fn instrument_block(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
                let mut items: Vec<TbItem> = vec![TbItem::Probe(Probe::new(
                    1,
                    Box::new(|p| {
                        ProbeResult::Violation(Report {
                            pc: p.cpu.pc,
                            kind: "test-violation".into(),
                            details: "boom".into(),
                        })
                    }),
                ))];
                items.extend(block.insns.iter().map(|&(pc, i, n)| TbItem::Guest(pc, i, n)));
                items
            }
        }
        let mut engine = Engine::new(EngineOptions::default());
        let out = engine.run(&mut p, &mut Violator, 1_000_000);
        assert!(matches!(out, RunOutcome::Violation(_)));
        assert_eq!(engine.stats.reports.len(), 1);

        // Non-halting mode collects reports and finishes.
        let mut p2 = proc_from(LOOP_SUM);
        let mut engine2 = Engine::new(EngineOptions {
            halt_on_violation: false,
            ..EngineOptions::default()
        });
        let out2 = engine2.run(&mut p2, &mut Violator, 1_000_000);
        assert_eq!(out2.code(), Some(55));
        assert!(engine2.stats.reports.len() > 1);
        // Every report comes with its engine-side context, aligned by
        // index and agreeing on the pc.
        assert_eq!(engine2.stats.contexts.len(), engine2.stats.reports.len());
        for (r, c) in engine2.stats.reports.iter().zip(&engine2.stats.contexts) {
            assert_eq!(r.pc, c.pc);
        }
        assert_eq!(engine2.stats.reports_dropped, 0);
    }

    #[test]
    fn max_reports_caps_collection() {
        struct Violator;
        impl Tool for Violator {
            fn name(&self) -> &str {
                "violator"
            }
            fn instrument_block(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
                let mut items: Vec<TbItem> = vec![TbItem::Probe(Probe::new(
                    1,
                    Box::new(|p| {
                        ProbeResult::Violation(Report {
                            pc: p.cpu.pc,
                            kind: ViolationKind::Custom("test-violation"),
                            details: "boom".into(),
                        })
                    }),
                ))];
                items.extend(block.insns.iter().map(|&(pc, i, n)| TbItem::Guest(pc, i, n)));
                items
            }
        }
        let mut p = proc_from(LOOP_SUM);
        let mut engine = Engine::new(EngineOptions {
            halt_on_violation: false,
            max_reports: 3,
            ..EngineOptions::default()
        });
        let out = engine.run(&mut p, &mut Violator, 1_000_000);
        assert_eq!(out.code(), Some(55));
        assert_eq!(engine.stats.reports.len(), 3, "reports capped");
        assert_eq!(engine.stats.contexts.len(), 3, "contexts capped with reports");
        assert!(engine.stats.reports_dropped > 0, "overflow counted");

        // The cap does not change guest-visible execution: an uncapped
        // run reaches the same exit with the same cycle count.
        let mut p2 = proc_from(LOOP_SUM);
        let mut engine2 = Engine::new(EngineOptions {
            halt_on_violation: false,
            ..EngineOptions::default()
        });
        assert_eq!(engine2.run(&mut p2, &mut Violator, 1_000_000).code(), Some(55));
        assert_eq!(p.cycles, p2.cycles, "capture is observation-only");
    }

    #[test]
    fn violation_context_carries_trail_and_registers() {
        struct Violator;
        impl Tool for Violator {
            fn name(&self) -> &str {
                "violator"
            }
            fn instrument_block(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
                let mut items: Vec<TbItem> =
                    block.insns.iter().map(|&(pc, i, n)| TbItem::Guest(pc, i, n)).collect();
                // Violate at the end of the block so several loop
                // iterations land in the trail first.
                items.push(TbItem::Probe(Probe::new(
                    1,
                    Box::new(|p| {
                        if p.insns > 30 {
                            ProbeResult::Violation(Report {
                                pc: p.cpu.pc,
                                kind: ViolationKind::InvalidAccess,
                                details: "late".into(),
                            })
                        } else {
                            ProbeResult::Ok
                        }
                    }),
                )));
                items
            }
        }
        let mut p = proc_from(LOOP_SUM);
        let mut engine = Engine::new(EngineOptions {
            trail_len: 4,
            ..EngineOptions::default()
        });
        let out = engine.run(&mut p, &mut Violator, 1_000_000);
        assert!(matches!(out, RunOutcome::Violation(_)));
        let ctx = &engine.stats.contexts[0];
        assert_eq!(ctx.trail.len(), 4, "trail bounded by trail_len");
        // The trail's final entry is a block of the running program.
        let last = *ctx.trail.last().unwrap();
        assert!(p.module_containing(last).is_some());
        // The stack pointer snapshot points into the stack region.
        assert!(ctx.regs[Reg::SP.index()] >= janitizer_vm::STACK_BASE);
    }

    #[test]
    fn jit_code_invalidates_cache() {
        // Program writes code then runs it; the engine must execute the
        // fresh bytes (cache generation bump).
        let src = ".section text\n.global _start\n_start:\n\
             mov r0, 3\n mov r1, 4096\n mov r2, 1\n syscall\n\
             mov r8, r0\n\
             mov r9, 0x12\n st1 [r8], r9\n\
             mov r9, 0\n st1 [r8+1], r9\n\
             mov r9, 123\n st4 [r8+2], r9\n\
             mov r9, 0x6c\n st1 [r8+6], r9\n\
             call r8\n ret\n";
        let mut p = proc_from(src);
        let mut engine = Engine::new(EngineOptions::default());
        let out = engine.run(&mut p, &mut NullTool, 10_000_000);
        assert_eq!(out.code(), Some(123));
    }

    #[test]
    fn fault_reported_with_pc() {
        let src = ".section text\n.global _start\n_start:\n mov r1, 0x1234\n ld8 r0, [r1]\n ret\n";
        let mut p = proc_from(src);
        let mut engine = Engine::new(EngineOptions::default());
        let out = engine.run(&mut p, &mut NullTool, 1_000_000);
        let RunOutcome::Fault(f) = out else { panic!("expected fault: {out:?}") };
        assert!(matches!(f.kind, FaultKind::Mem(_)));
    }

    #[test]
    fn out_of_fuel() {
        let src = ".section text\n.global _start\n_start:\nspin:\n jmp spin\n";
        let mut p = proc_from(src);
        let mut engine = Engine::new(EngineOptions::default());
        assert_eq!(engine.run(&mut p, &mut NullTool, 5_000), RunOutcome::OutOfFuel);
    }

    #[test]
    fn module_events_delivered_for_dlopen() {
        let plugin_src = ".section text\n.global plugin_work\nplugin_work:\n mov r0, 9\n ret\n";
        let exe_src = ".section text\n.global _start\n_start:\n\
             mov r0, 5\n la r1, name\n mov r2, 6\n syscall\n\
             mov r8, r0\n\
             mov r0, 6\n mov r1, r8\n la r2, sym\n mov r3, 11\n syscall\n\
             call r0\n ret\n\
             .section rodata\nname: .ascii \"lib.so\"\nsym: .ascii \"plugin_work\"\n";
        let o = assemble("e.s", exe_src, &AsmOptions::default()).unwrap();
        let exe = link(&[o], &LinkOptions::executable("e")).unwrap();
        let po = assemble("p.s", plugin_src, &AsmOptions { pic: true }).unwrap();
        let plugin = link(&[po], &LinkOptions::shared_object("lib.so")).unwrap();
        let mut store = ModuleStore::new();
        store.add(exe);
        store.add(plugin);
        let mut p = load_process(&store, "e", &LoadOptions::default()).unwrap();

        struct LoadLog {
            loads: std::rc::Rc<std::cell::RefCell<Vec<String>>>,
        }
        impl Tool for LoadLog {
            fn name(&self) -> &str {
                "loadlog"
            }
            fn on_module_load(&mut self, proc: &mut Process, id: usize) {
                self.loads
                    .borrow_mut()
                    .push(proc.modules[id].image.name.clone());
            }
            fn instrument_block(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
                block
                    .insns
                    .iter()
                    .map(|&(pc, i, n)| TbItem::Guest(pc, i, n))
                    .collect()
            }
        }
        let loads = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut tool = LoadLog { loads: loads.clone() };
        let mut engine = Engine::new(EngineOptions::default());
        let out = engine.run(&mut p, &mut tool, 10_000_000);
        assert_eq!(out.code(), Some(9));
        let seen = loads.borrow();
        assert!(seen.contains(&"e".to_string()), "static module event");
        assert!(seen.contains(&"lib.so".to_string()), "dlopen event: {seen:?}");
    }

    #[test]
    fn probe_can_mutate_guest_registers() {
        // A probe that clobbers r2 mid-block changes program behaviour —
        // the mechanism behind the ipa-ra soundness experiments.
        let src = ".section text\n.global _start\n_start:\n mov r2, 40\n nop\n mov r0, r2\n ret\n";
        let mut p = proc_from(src);
        struct Clobber;
        impl Tool for Clobber {
            fn name(&self) -> &str {
                "clobber"
            }
            fn instrument_block(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
                let mut items = Vec::new();
                for &(pc, i, n) in &block.insns {
                    if matches!(i, Instr::Nop) {
                        items.push(TbItem::Probe(Probe::new(
                            1,
                            Box::new(|p: &mut Process| {
                                p.cpu.set_reg(janitizer_isa::Reg::R2, 0xbad);
                                ProbeResult::Ok
                            }),
                        )));
                    }
                    items.push(TbItem::Guest(pc, i, n));
                }
                items
            }
        }
        let mut engine = Engine::new(EngineOptions::default());
        let out = engine.run(&mut p, &mut Clobber, 1_000_000);
        assert_eq!(out.code(), Some(0xbad), "probe clobber is architecturally real");
    }

    #[test]
    fn profile_conserves_cycles_and_changes_nothing() {
        let mut p_off = proc_from(LOOP_SUM);
        let mut e_off = Engine::new(EngineOptions::default());
        let out_off = e_off.run(&mut p_off, &mut NullTool, 1_000_000);

        let mut p_on = proc_from(LOOP_SUM);
        let mut e_on = Engine::new(EngineOptions {
            profile: true,
            ..EngineOptions::default()
        });
        let out_on = e_on.run(&mut p_on, &mut NullTool, 1_000_000);
        assert_eq!(out_off, out_on, "profiling never changes the outcome");
        assert_eq!(p_off.cycles, p_on.cycles, "profiling is observation-only");
        assert_eq!(p_off.insns, p_on.insns);
        assert!(e_off.profile().is_none());

        // Conservation: per-class sums over blocks reproduce the engine
        // totals exactly, and all classes together account for every
        // process cycle.
        let prof = e_on.profile().expect("profile collected");
        let s = &e_on.stats;
        let sum = |f: fn(&BlockProfile) -> u64| prof.blocks.values().map(f).sum::<u64>();
        assert_eq!(sum(|b| b.translate_cycles), s.translation_cycles);
        assert_eq!(sum(|b| b.dispatch_cycles), s.dispatch_cycles);
        assert_eq!(
            sum(|b| b.inline_probe_cycles + b.clean_call_cycles),
            s.probe_cycles
        );
        assert_eq!(sum(|b| b.guest_insns), s.guest_insns);
        assert_eq!(
            prof.blocks.values().map(|b| b.total_cycles()).sum::<u64>(),
            p_on.cycles,
            "every cycle lands in exactly one class"
        );
        // Execution counts: the loop body block re-executes; its
        // back-edge is direct and the final ret records a Return edge.
        assert!(prof.blocks.values().any(|b| b.execs >= 8));
        assert!(prof
            .edges
            .iter()
            .any(|((_, _, k), n)| *k == EdgeKind::Direct && *n >= 7));
        assert!(prof.edges.keys().any(|(_, _, k)| *k == EdgeKind::Return));
    }

    #[test]
    fn profile_sites_and_elision_notes() {
        struct Tagger;
        impl Tool for Tagger {
            fn name(&self) -> &str {
                "tagger"
            }
            fn instrument_block(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
                let mut items = vec![
                    TbItem::Probe(Probe {
                        cost: 7,
                        run: Box::new(|_| ProbeResult::Ok),
                        site: Some(ProbeSite {
                            tool: "tagger",
                            kind: "block-entry",
                            pc: block.start,
                            class: ProbeClass::CleanCall,
                            origin: SiteOrigin::Static,
                        }),
                    }),
                    TbItem::Note(ProbeSite {
                        tool: "tagger",
                        kind: "elided-check",
                        pc: block.start,
                        class: ProbeClass::Inline,
                        origin: SiteOrigin::Static,
                    }),
                ];
                items.extend(block.insns.iter().map(|&(pc, i, n)| TbItem::Guest(pc, i, n)));
                items
            }
        }

        // Notes must not change execution at all, profiling or not.
        let mut p_plain = proc_from(LOOP_SUM);
        let mut e_plain = Engine::new(EngineOptions::default());
        assert_eq!(e_plain.run(&mut p_plain, &mut Tagger, 1_000_000).code(), Some(55));

        let mut p = proc_from(LOOP_SUM);
        let mut engine = Engine::new(EngineOptions {
            profile: true,
            ..EngineOptions::default()
        });
        assert_eq!(engine.run(&mut p, &mut Tagger, 1_000_000).code(), Some(55));
        assert_eq!(p.cycles, p_plain.cycles, "notes and profiling are free");

        let prof = engine.profile().unwrap();
        for (pc, bp) in &prof.blocks {
            let entry = prof
                .sites
                .get(&ProbeSite {
                    tool: "tagger",
                    kind: "block-entry",
                    pc: *pc,
                    class: ProbeClass::CleanCall,
                    origin: SiteOrigin::Static,
                })
                .expect("tagged probe recorded");
            assert_eq!(entry.execs, bp.execs, "one probe execution per block execution");
            assert_eq!(entry.cycles, bp.execs * 7);
            assert_eq!(entry.violations, 0);
            assert_eq!(bp.clean_call_cycles, bp.execs * 7, "clean-call class attribution");
            let elided = prof
                .sites
                .get(&ProbeSite {
                    tool: "tagger",
                    kind: "elided-check",
                    pc: *pc,
                    class: ProbeClass::Inline,
                    origin: SiteOrigin::Static,
                })
                .expect("note recorded");
            assert_eq!(elided.elided, bp.execs, "one avoided check per execution");
            assert_eq!(elided.execs, 0);
        }
        let site_cycles: u64 = prof.sites.values().map(|s| s.cycles).sum();
        assert_eq!(site_cycles, engine.stats.probe_cycles, "site cycles cover all probes");
    }
}
