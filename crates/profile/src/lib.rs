//! # Deterministic hotness & overhead attribution
//!
//! Aggregates the DBT engine's cycle-model-exact profile counters
//! ([`janitizer_dbt::EngineProfile`]) into symbolized, mergeable
//! [`RunProfile`]s and exports three schema-stable artifacts:
//!
//! * **`janitizer.profile/v2` JSON** — per-function/per-block/per-site
//!   rollups, block→successor edge counts, and top-N hot-edge chains
//!   (the NET-style trace candidates for superblock formation);
//! * **folded stacks** — `flamegraph.pl`-ready cycle attribution,
//!   one `tool;module;function;class` stack per line;
//! * **overhead budget tables** — each workload×tool overhead ratio
//!   decomposed into ranked contributors (cost classes, probe sites,
//!   hot edges).
//!
//! Everything here is *observation*: the profile is built after the
//! engine run from counters that never feed back into execution, and
//! every map is a `BTreeMap`, so merged profiles are byte-identical
//! regardless of collection order (thread-count independence).

pub mod diff;

use janitizer_dbt::{
    BlockProfile, EdgeKind, EngineProfile, ProbeClass, SiteOrigin, SiteProfile, Stats,
};
use janitizer_diag::Symbolizer;
use janitizer_telemetry::json::Json;
use janitizer_vm::Process;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Symbolized identity of one translated block.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct BlockKey {
    /// Containing module (`"<unmapped>"` for bootstrap blocks).
    pub module: String,
    /// Containing function (the block pc when unresolved).
    pub function: String,
    /// Block start pc.
    pub pc: u64,
}

/// Symbolized identity of one instrumentation site.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct SiteKey {
    /// Owning tool.
    pub tool: String,
    /// Probe kind within the tool.
    pub kind: String,
    /// Guarded guest pc.
    pub pc: u64,
}

/// One site's aggregated profile row.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SiteRow {
    /// Containing module.
    pub module: String,
    /// Containing function.
    pub function: String,
    /// Instrumentation style.
    pub class: ProbeClass,
    /// Static rule vs. dynamic fallback.
    pub origin: SiteOrigin,
    /// Execution/cycle/violation/elision counters.
    pub stats: SiteProfile,
}

/// Per-class cycle totals of a profile.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ClassTotals {
    /// Pure guest cycles.
    pub guest: u64,
    /// Engine translation (block build + per-insn).
    pub translate: u64,
    /// Tool translation-time charges (dynamic-fallback analysis).
    pub tool_translate: u64,
    /// Indirect-transfer dispatch lookups.
    pub dispatch: u64,
    /// Inline-class probe cycles.
    pub inline_probes: u64,
    /// Clean-call-class probe cycles.
    pub clean_call_probes: u64,
}

impl ClassTotals {
    /// Engine-attributed overhead: everything except guest and
    /// tool-translate — by construction equal to
    /// [`Stats::total_overhead_cycles`].
    pub fn engine_overhead(&self) -> u64 {
        self.translate + self.dispatch + self.inline_probes + self.clean_call_probes
    }

    /// All overhead on top of pure guest execution.
    pub fn overhead(&self) -> u64 {
        self.engine_overhead() + self.tool_translate
    }

    /// Every attributed cycle.
    pub fn total(&self) -> u64 {
        self.overhead() + self.guest
    }
}

/// Engine-level counters carried alongside the cycle classes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EngineTotals {
    /// Blocks translated.
    pub blocks_translated: u64,
    /// Guest instructions executed.
    pub guest_insns: u64,
    /// Probe executions.
    pub probe_runs: u64,
    /// Indirect control transfers.
    pub indirect_transfers: u64,
    /// Oversized (uncached) translations.
    pub oversized_blocks: u64,
    /// Indirect transfers satisfied by a block's inlined target cache
    /// (charged the cheap `chain_hit` instead of the full lookup).
    pub indirect_chain_hits: u64,
    /// Dispatcher bypasses: direct chain-link follows plus
    /// superblock-internal transitions. Zero modeled cost — this counts
    /// transfers that never touched the dispatcher at all.
    pub chained_transfers: u64,
    /// Superblocks stitched from hot successor chains.
    pub superblocks_formed: u64,
    /// Superblock side exits (a segment left the planned path).
    pub trace_exits: u64,
    /// Shadow-check executions satisfied by a fused lead's precomputed
    /// verdict (follower checks coalesced into one shadow walk).
    pub checks_fused: u64,
    /// Loop-invariant shadow checks answered by the hoisted fast path
    /// (cost-free elision; profiled as `elided`, not as probe runs).
    pub checks_hoisted: u64,
}

/// One hot-edge chain: a maximal sequence of blocks stitched along the
/// hottest successor edges (a NET-style superblock/trace candidate).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HotChain {
    /// Block start pcs, in execution order.
    pub blocks: Vec<u64>,
    /// The coldest edge count along the chain (its execution floor).
    pub min_count: u64,
}

/// A symbolized, mergeable profile of one (or several merged) hybrid
/// runs of one tool over one executable.
#[derive(Clone, PartialEq, Debug)]
pub struct RunProfile {
    /// Tool name (`plugin.name()`).
    pub tool: String,
    /// Executable name.
    pub exe: String,
    /// Engine runs merged into this profile.
    pub runs: u64,
    /// Process cycle delta of the profiled run(s) — the conservation
    /// target for [`RunProfile::class_totals`].
    pub total_cycles: u64,
    /// Native (uninstrumented) cycles of the same workload, when known;
    /// enables overhead ratios in the budget table.
    pub native_cycles: Option<u64>,
    /// Engine counter totals.
    pub engine: EngineTotals,
    /// Per-block rows, keyed `(module, function, pc)`.
    pub blocks: BTreeMap<BlockKey, BlockProfile>,
    /// Per-site rows, keyed `(tool, kind, pc)`.
    pub sites: BTreeMap<SiteKey, SiteRow>,
    /// Block→successor transfer counts.
    pub edges: BTreeMap<(u64, u64, EdgeKind), u64>,
    /// `pc → module!function` labels for edge endpoints.
    pub labels: BTreeMap<u64, String>,
}

fn symbolize(sym: &Symbolizer, pc: u64) -> (String, String) {
    let f = sym.resolve(pc);
    let module = f.module.unwrap_or_else(|| "<unmapped>".to_string());
    let function = f.symbol.unwrap_or_else(|| format!("{pc:#x}"));
    (module, function)
}

impl RunProfile {
    /// Builds a symbolized profile from the engine's raw counters. Must
    /// be called while the [`Process`] is still alive (the load map
    /// backs symbolization), after the engine run completes.
    /// `total_cycles` is the process's cycle delta for the profiled run.
    pub fn build(
        prof: &EngineProfile,
        stats: &Stats,
        proc: &Process,
        tool: &str,
        exe: &str,
        total_cycles: u64,
    ) -> RunProfile {
        let sym = Symbolizer::from_process(proc);
        let mut cache: BTreeMap<u64, (String, String)> = BTreeMap::new();
        let mut resolve = |pc: u64| -> (String, String) {
            cache
                .entry(pc)
                .or_insert_with(|| symbolize(&sym, pc))
                .clone()
        };

        let mut blocks = BTreeMap::new();
        for (pc, bp) in &prof.blocks {
            let (module, function) = resolve(*pc);
            blocks.insert(
                BlockKey {
                    module,
                    function,
                    pc: *pc,
                },
                *bp,
            );
        }
        let mut sites = BTreeMap::new();
        for (site, sp) in &prof.sites {
            let (module, function) = resolve(site.pc);
            sites.insert(
                SiteKey {
                    tool: site.tool.to_string(),
                    kind: site.kind.to_string(),
                    pc: site.pc,
                },
                SiteRow {
                    module,
                    function,
                    class: site.class,
                    origin: site.origin,
                    stats: *sp,
                },
            );
        }
        let mut labels = BTreeMap::new();
        for (from, to, _) in prof.edges.keys() {
            for pc in [*from, *to] {
                let (m, f) = resolve(pc);
                labels.entry(pc).or_insert_with(|| format!("{m}!{f}"));
            }
        }
        RunProfile {
            tool: tool.to_string(),
            exe: exe.to_string(),
            runs: 1,
            total_cycles,
            native_cycles: None,
            engine: EngineTotals {
                blocks_translated: stats.blocks_translated,
                guest_insns: stats.guest_insns,
                probe_runs: stats.probe_runs,
                indirect_transfers: stats.indirect_transfers,
                oversized_blocks: stats.oversized_blocks,
                indirect_chain_hits: stats.indirect_chain_hits,
                chained_transfers: stats.chained_transfers,
                superblocks_formed: stats.superblocks_formed,
                trace_exits: stats.trace_exits,
                checks_fused: stats.checks_fused,
                checks_hoisted: stats.checks_hoisted,
            },
            blocks,
            sites,
            edges: prof.edges.clone(),
            labels,
        }
    }

    /// Per-class cycle totals, summed over all blocks. Conservation
    /// (test-enforced): `engine_overhead()` equals
    /// [`Stats::total_overhead_cycles`] and `total()` equals
    /// [`RunProfile::total_cycles`].
    pub fn class_totals(&self) -> ClassTotals {
        let mut t = ClassTotals::default();
        for b in self.blocks.values() {
            t.guest += b.guest_cycles;
            t.translate += b.translate_cycles;
            t.tool_translate += b.tool_translate_cycles;
            t.dispatch += b.dispatch_cycles;
            t.inline_probes += b.inline_probe_cycles;
            t.clean_call_probes += b.clean_call_cycles;
        }
        t
    }

    /// Merges another profile of the same (tool, exe) cell into this
    /// one. All counters are commutative sums over deterministic keys,
    /// so any merge order yields byte-identical artifacts.
    pub fn merge(&mut self, other: &RunProfile) {
        debug_assert_eq!(self.tool, other.tool);
        debug_assert_eq!(self.exe, other.exe);
        self.runs += other.runs;
        self.total_cycles += other.total_cycles;
        self.native_cycles = match (self.native_cycles, other.native_cycles) {
            (Some(a), Some(b)) => Some(a + b),
            (a, b) => a.or(b),
        };
        let e = &mut self.engine;
        e.blocks_translated += other.engine.blocks_translated;
        e.guest_insns += other.engine.guest_insns;
        e.probe_runs += other.engine.probe_runs;
        e.indirect_transfers += other.engine.indirect_transfers;
        e.oversized_blocks += other.engine.oversized_blocks;
        e.indirect_chain_hits += other.engine.indirect_chain_hits;
        e.chained_transfers += other.engine.chained_transfers;
        e.superblocks_formed += other.engine.superblocks_formed;
        e.trace_exits += other.engine.trace_exits;
        e.checks_fused += other.engine.checks_fused;
        e.checks_hoisted += other.engine.checks_hoisted;
        for (k, b) in &other.blocks {
            let dst = self.blocks.entry(k.clone()).or_default();
            dst.execs += b.execs;
            dst.translations += b.translations;
            dst.guest_insns += b.guest_insns;
            dst.translate_cycles += b.translate_cycles;
            dst.tool_translate_cycles += b.tool_translate_cycles;
            dst.dispatch_cycles += b.dispatch_cycles;
            dst.inline_probe_cycles += b.inline_probe_cycles;
            dst.clean_call_cycles += b.clean_call_cycles;
            dst.guest_cycles += b.guest_cycles;
        }
        for (k, row) in &other.sites {
            let dst = self.sites.entry(k.clone()).or_insert_with(|| SiteRow {
                module: row.module.clone(),
                function: row.function.clone(),
                class: row.class,
                origin: row.origin,
                stats: SiteProfile::default(),
            });
            dst.stats.execs += row.stats.execs;
            dst.stats.cycles += row.stats.cycles;
            dst.stats.violations += row.stats.violations;
            dst.stats.elided += row.stats.elided;
        }
        for (k, n) in &other.edges {
            *self.edges.entry(*k).or_insert(0) += n;
        }
        for (pc, l) in &other.labels {
            self.labels.entry(*pc).or_insert_with(|| l.clone());
        }
    }

    /// Per-function rollup: `(module, function) → (execs, per-class
    /// totals)`, in deterministic key order.
    pub fn functions(&self) -> BTreeMap<(String, String), (u64, ClassTotals)> {
        let mut out: BTreeMap<(String, String), (u64, ClassTotals)> = BTreeMap::new();
        for (k, b) in &self.blocks {
            let (execs, t) = out
                .entry((k.module.clone(), k.function.clone()))
                .or_default();
            *execs += b.execs;
            t.guest += b.guest_cycles;
            t.translate += b.translate_cycles;
            t.tool_translate += b.tool_translate_cycles;
            t.dispatch += b.dispatch_cycles;
            t.inline_probes += b.inline_probe_cycles;
            t.clean_call_probes += b.clean_call_cycles;
        }
        out
    }

    /// Sites ranked hottest-first: by attributed cycles, then
    /// executions, then key (fully deterministic).
    pub fn ranked_sites(&self) -> Vec<(&SiteKey, &SiteRow)> {
        let mut v: Vec<_> = self.sites.iter().collect();
        v.sort_by(|(ka, a), (kb, b)| {
            b.stats
                .cycles
                .cmp(&a.stats.cycles)
                .then(b.stats.execs.cmp(&a.stats.execs))
                .then(ka.cmp(kb))
        });
        v
    }

    /// Edges ranked most-frequent-first, then by key.
    pub fn ranked_edges(&self) -> Vec<(&(u64, u64, EdgeKind), &u64)> {
        let mut v: Vec<_> = self.edges.iter().collect();
        v.sort_by(|(ka, a), (kb, b)| b.cmp(a).then(ka.cmp(kb)));
        v
    }

    /// Top-`top` hot-edge chains: seeded at the most frequent edges and
    /// greedily extended along each block's hottest successor while the
    /// successor count stays within half of the chain's floor. These
    /// are the NET-style trace candidates superblock formation would
    /// stitch.
    pub fn hot_chains(&self, top: usize) -> Vec<HotChain> {
        // Hottest successor per source block (count desc, then target
        // asc for determinism).
        let mut best_succ: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for ((from, to, _), n) in &self.edges {
            let e = best_succ.entry(*from).or_insert((0, u64::MAX));
            if *n > e.0 || (*n == e.0 && *to < e.1) {
                *e = (*n, *to);
            }
        }
        let mut chains: Vec<HotChain> = Vec::new();
        for ((from, to, _), count) in self.ranked_edges().into_iter().take(top.max(1) * 2) {
            let mut blocks = vec![*from, *to];
            let mut min_count = *count;
            while blocks.len() < 16 {
                let tail = *blocks.last().expect("non-empty chain");
                let Some(&(n, next)) = best_succ.get(&tail) else { break };
                if n == 0 || n * 2 < min_count || blocks.contains(&next) {
                    break;
                }
                min_count = min_count.min(n);
                blocks.push(next);
            }
            if !chains.iter().any(|c| c.blocks == blocks) {
                chains.push(HotChain { blocks, min_count });
            }
            if chains.len() >= top {
                break;
            }
        }
        chains
    }

    /// Dynamic executions of checks the static analysis proved away
    /// (`TbItem::Note` sites) — what the hybrid pipeline saved,
    /// execution-weighted.
    pub fn checks_elided(&self) -> u64 {
        self.sites.values().map(|s| s.stats.elided).sum()
    }

    /// Renders the schema-stable `janitizer.profile/v2` JSON document.
    /// `top` bounds the block/site/edge/chain arrays (totals always
    /// cover everything).
    pub fn to_json(&self, top: usize) -> Json {
        let t = self.class_totals();
        let mut cycles = vec![
            ("total".to_string(), Json::U64(self.total_cycles)),
            ("guest".to_string(), Json::U64(t.guest)),
            ("translate".to_string(), Json::U64(t.translate)),
            ("tool_translate".to_string(), Json::U64(t.tool_translate)),
            ("dispatch".to_string(), Json::U64(t.dispatch)),
            ("inline_probes".to_string(), Json::U64(t.inline_probes)),
            (
                "clean_call_probes".to_string(),
                Json::U64(t.clean_call_probes),
            ),
            ("overhead".to_string(), Json::U64(t.overhead())),
        ];
        if let Some(n) = self.native_cycles {
            cycles.push(("native".to_string(), Json::U64(n)));
        }

        let mut hot_blocks: Vec<_> = self.blocks.iter().collect();
        hot_blocks.sort_by(|(ka, a), (kb, b)| {
            b.total_cycles()
                .cmp(&a.total_cycles())
                .then(ka.cmp(kb))
        });
        let blocks = hot_blocks
            .into_iter()
            .take(top)
            .map(|(k, b)| {
                Json::obj([
                    ("pc", Json::U64(k.pc)),
                    ("module", Json::str(k.module.clone())),
                    ("function", Json::str(k.function.clone())),
                    ("execs", Json::U64(b.execs)),
                    ("translations", Json::U64(b.translations)),
                    ("guest_insns", Json::U64(b.guest_insns)),
                    ("guest_cycles", Json::U64(b.guest_cycles)),
                    ("translate_cycles", Json::U64(b.translate_cycles)),
                    ("tool_translate_cycles", Json::U64(b.tool_translate_cycles)),
                    ("dispatch_cycles", Json::U64(b.dispatch_cycles)),
                    ("inline_probe_cycles", Json::U64(b.inline_probe_cycles)),
                    ("clean_call_cycles", Json::U64(b.clean_call_cycles)),
                ])
            })
            .collect();

        let sites = self
            .ranked_sites()
            .into_iter()
            .take(top)
            .enumerate()
            .map(|(rank, (k, row))| {
                Json::obj([
                    ("rank", Json::U64(rank as u64 + 1)),
                    ("tool", Json::str(k.tool.clone())),
                    ("kind", Json::str(k.kind.clone())),
                    ("pc", Json::U64(k.pc)),
                    ("module", Json::str(row.module.clone())),
                    ("function", Json::str(row.function.clone())),
                    ("class", Json::str(row.class.as_str())),
                    ("origin", Json::str(row.origin.as_str())),
                    ("execs", Json::U64(row.stats.execs)),
                    ("cycles", Json::U64(row.stats.cycles)),
                    ("violations", Json::U64(row.stats.violations)),
                    ("elided", Json::U64(row.stats.elided)),
                ])
            })
            .collect();

        let edges = self
            .ranked_edges()
            .into_iter()
            .take(top)
            .map(|((from, to, kind), n)| {
                Json::obj([
                    ("from", Json::U64(*from)),
                    ("to", Json::U64(*to)),
                    ("kind", Json::str(kind.as_str())),
                    ("count", Json::U64(*n)),
                    (
                        "from_sym",
                        Json::str(self.labels.get(from).cloned().unwrap_or_default()),
                    ),
                    (
                        "to_sym",
                        Json::str(self.labels.get(to).cloned().unwrap_or_default()),
                    ),
                ])
            })
            .collect();

        let chains = self
            .hot_chains(top)
            .into_iter()
            .map(|c| {
                Json::obj([
                    (
                        "blocks",
                        Json::Arr(c.blocks.iter().map(|pc| Json::U64(*pc)).collect()),
                    ),
                    (
                        "syms",
                        Json::Arr(
                            c.blocks
                                .iter()
                                .map(|pc| {
                                    Json::str(self.labels.get(pc).cloned().unwrap_or_default())
                                })
                                .collect(),
                        ),
                    ),
                    ("min_count", Json::U64(c.min_count)),
                ])
            })
            .collect();

        let functions = self
            .functions()
            .into_iter()
            .map(|((module, function), (execs, t))| {
                Json::obj([
                    ("module", Json::str(module)),
                    ("function", Json::str(function)),
                    ("execs", Json::U64(execs)),
                    ("guest_cycles", Json::U64(t.guest)),
                    ("overhead_cycles", Json::U64(t.overhead())),
                ])
            })
            .collect();

        Json::obj([
            ("schema", Json::str("janitizer.profile/v2")),
            ("tool", Json::str(self.tool.clone())),
            ("exe", Json::str(self.exe.clone())),
            ("runs", Json::U64(self.runs)),
            ("cycles", Json::Obj(cycles)),
            (
                "engine",
                Json::obj([
                    ("blocks_translated", Json::U64(self.engine.blocks_translated)),
                    ("guest_insns", Json::U64(self.engine.guest_insns)),
                    ("probe_runs", Json::U64(self.engine.probe_runs)),
                    (
                        "indirect_transfers",
                        Json::U64(self.engine.indirect_transfers),
                    ),
                    ("oversized_blocks", Json::U64(self.engine.oversized_blocks)),
                    (
                        "indirect_chain_hits",
                        Json::U64(self.engine.indirect_chain_hits),
                    ),
                    ("chained_transfers", Json::U64(self.engine.chained_transfers)),
                    (
                        "superblocks_formed",
                        Json::U64(self.engine.superblocks_formed),
                    ),
                    ("trace_exits", Json::U64(self.engine.trace_exits)),
                    ("checks_fused", Json::U64(self.engine.checks_fused)),
                    ("checks_hoisted", Json::U64(self.engine.checks_hoisted)),
                    ("checks_elided", Json::U64(self.checks_elided())),
                    ("site_rows", Json::U64(self.sites.len() as u64)),
                ]),
            ),
            ("functions", Json::Arr(functions)),
            ("blocks", Json::Arr(blocks)),
            ("sites", Json::Arr(sites)),
            ("edges", Json::Arr(edges)),
            ("hot_chains", Json::Arr(chains)),
        ])
    }

    /// Folded-stack cycle attribution (`flamegraph.pl`-ready): one
    /// `tool;module;function;class cycles` line per non-zero bucket,
    /// sorted.
    pub fn to_folded(&self) -> String {
        let mut buckets: BTreeMap<String, u64> = BTreeMap::new();
        for (k, b) in &self.blocks {
            let base = format!("{};{};{}", self.tool, k.module, k.function);
            for (class, cycles) in [
                ("guest", b.guest_cycles),
                ("translate", b.translate_cycles),
                ("tool-translate", b.tool_translate_cycles),
                ("dispatch", b.dispatch_cycles),
                ("inline-probes", b.inline_probe_cycles),
                ("clean-call-probes", b.clean_call_cycles),
            ] {
                if cycles > 0 {
                    *buckets.entry(format!("{base};{class}")).or_insert(0) += cycles;
                }
            }
        }
        let mut out = String::new();
        for (stack, cycles) in buckets {
            let _ = writeln!(out, "{stack} {cycles}");
        }
        out
    }

    /// The overhead-budget table: the cell's overhead decomposed by
    /// class, then the ranked top-`top` probe sites and hot edges.
    pub fn budget_table(&self, top: usize) -> String {
        let t = self.class_totals();
        let overhead = t.overhead().max(1);
        let mut out = String::new();
        let ratio = self
            .native_cycles
            .filter(|n| *n > 0)
            .map(|n| self.total_cycles as f64 / n as f64);
        match ratio {
            Some(r) => {
                let _ = writeln!(
                    out,
                    "== overhead budget: {} under {} (slowdown {r:.2}x) ==",
                    self.exe, self.tool
                );
            }
            None => {
                let _ = writeln!(out, "== overhead budget: {} under {} ==", self.exe, self.tool);
            }
        }
        let _ = writeln!(out, "{:<20}{:>14}{:>10}", "class", "cycles", "% ovh");
        for (name, cycles) in [
            ("dbt-translate", t.translate),
            ("tool-translate", t.tool_translate),
            ("dispatch", t.dispatch),
            ("inline-probes", t.inline_probes),
            ("clean-call-probes", t.clean_call_probes),
        ] {
            let _ = writeln!(
                out,
                "{name:<20}{cycles:>14}{:>9.1}%",
                100.0 * cycles as f64 / overhead as f64
            );
        }
        let _ = writeln!(out, "{:<20}{:>14}", "guest", t.guest);
        let e = &self.engine;
        if e.indirect_transfers > 0 {
            let _ = writeln!(
                out,
                "indirect transfers: {} ({} inlined-target chain hits, {:.1}%)",
                e.indirect_transfers,
                e.indirect_chain_hits,
                100.0 * e.indirect_chain_hits as f64 / e.indirect_transfers.max(1) as f64
            );
        }
        if e.superblocks_formed > 0 || e.chained_transfers > 0 {
            let _ = writeln!(
                out,
                "traces: {} superblocks, {} chained transfers (dispatch bypassed), {} side exits",
                e.superblocks_formed, e.chained_transfers, e.trace_exits
            );
        }
        if e.checks_fused > 0 || e.checks_hoisted > 0 {
            let _ = writeln!(
                out,
                "shadow checks: {} fused into a lead's walk, {} hoisted (loop-invariant)",
                e.checks_fused, e.checks_hoisted
            );
        }
        let elided = self.checks_elided();
        if elided > 0 {
            let _ = writeln!(
                out,
                "statically elided checks executed: {elided} (across {} site(s))",
                self.sites.values().filter(|s| s.stats.elided > 0).count()
            );
        }

        let ranked = self.ranked_sites();
        if !ranked.is_empty() {
            let _ = writeln!(out, "-- top probe sites --");
            let _ = writeln!(
                out,
                "{:<5}{:<10}{:<16}{:<26}{:>10}{:>12}{:>7}{:>9}{:>8}",
                "rank", "tool", "kind", "site", "execs", "cycles", "% ovh", "origin", "elided"
            );
            for (rank, (k, row)) in ranked.into_iter().take(top).enumerate() {
                let site = format!("{}+{:#x}", row.function, k.pc);
                let _ = writeln!(
                    out,
                    "{:<5}{:<10}{:<16}{:<26}{:>10}{:>12}{:>6.1}%{:>9}{:>8}",
                    rank + 1,
                    k.tool,
                    k.kind,
                    site,
                    row.stats.execs,
                    row.stats.cycles,
                    100.0 * row.stats.cycles as f64 / overhead as f64,
                    row.origin.as_str(),
                    row.stats.elided,
                );
            }
        }

        let chains = self.hot_chains(top);
        if !chains.is_empty() {
            let _ = writeln!(out, "-- top hot edges --");
            for c in chains {
                let names: Vec<String> = c
                    .blocks
                    .iter()
                    .map(|pc| {
                        self.labels
                            .get(pc)
                            .cloned()
                            .unwrap_or_else(|| format!("{pc:#x}"))
                    })
                    .collect();
                let _ = writeln!(out, "  x{:<10} {}", c.min_count, names.join(" -> "));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janitizer_asm::{assemble, AsmOptions};
    use janitizer_dbt::{
        DecodedBlock, Engine, EngineOptions, NullTool, Probe, ProbeResult, ProbeSite, TbItem, Tool,
    };
    use janitizer_link::{link, LinkOptions};
    use janitizer_vm::{load_process, LoadOptions, ModuleStore};

    const LOOP_SUM: &str = ".section text\n.global _start\n_start:\n\
        mov r0, 0\n mov r2, 10\n\
        loop:\n add r0, r2\n sub r2, 1\n cmp r2, 0\n jne loop\n ret\n";

    fn proc_from(src: &str) -> Process {
        let o = assemble("t.s", src, &AsmOptions::default()).unwrap();
        let img = link(&[o], &LinkOptions::executable("t")).unwrap();
        let mut store = ModuleStore::new();
        store.add(img);
        load_process(&store, "t", &LoadOptions::default()).unwrap()
    }

    struct Tagger;
    impl Tool for Tagger {
        fn name(&self) -> &str {
            "tagger"
        }
        fn instrument_block(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
            let mut items = vec![TbItem::Probe(Probe {
                cost: 3,
                run: Box::new(|_| ProbeResult::Ok),
                site: Some(ProbeSite {
                    tool: "tagger",
                    kind: "entry",
                    pc: block.start,
                    class: janitizer_dbt::ProbeClass::Inline,
                    origin: janitizer_dbt::SiteOrigin::Static,
                }),
            })];
            items.extend(block.insns.iter().map(|&(pc, i, n)| TbItem::Guest(pc, i, n)));
            items
        }
    }

    fn profiled_run() -> (RunProfile, Stats, u64) {
        let mut p = proc_from(LOOP_SUM);
        let mut engine = Engine::new(EngineOptions {
            profile: true,
            ..EngineOptions::default()
        });
        let out = engine.run(&mut p, &mut Tagger, 1_000_000);
        assert_eq!(out.code(), Some(55));
        let rp = RunProfile::build(
            engine.profile().unwrap(),
            &engine.stats,
            &p,
            "tagger",
            "t",
            p.cycles,
        );
        (rp, engine.stats.clone(), p.cycles)
    }

    #[test]
    fn rollup_conserves_and_symbolizes() {
        let (rp, stats, cycles) = profiled_run();
        let t = rp.class_totals();
        assert_eq!(t.engine_overhead(), stats.total_overhead_cycles());
        assert_eq!(t.total(), cycles, "all cycles attributed");
        assert!(rp.blocks.keys().any(|k| k.module == "t" && k.function == "_start"));
        assert!(rp.sites.keys().all(|k| k.tool == "tagger" && k.kind == "entry"));
        let fns = rp.functions();
        assert!(fns.keys().any(|(m, _)| m == "t"));
    }

    #[test]
    fn exporters_are_deterministic_and_schema_stable() {
        let (a, _, _) = profiled_run();
        let (b, _, _) = profiled_run();
        assert_eq!(
            a.to_json(10).render_pretty(),
            b.to_json(10).render_pretty(),
            "profile JSON is run-to-run deterministic"
        );
        let json = a.to_json(10).render_pretty();
        assert!(json.contains("\"schema\": \"janitizer.profile/v2\""));
        for key in ["cycles", "sites", "edges", "hot_chains", "functions"] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
        let folded = a.to_folded();
        assert!(folded.contains("tagger;t;_start;guest "));
        let budget = a.budget_table(5);
        assert!(budget.contains("-- top probe sites --"));
        assert!(budget.contains("inline-probes"));
    }

    #[test]
    fn merge_is_commutative() {
        let (a, _, _) = profiled_run();
        let (b, _, _) = profiled_run();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(
            ab.to_json(50).render_pretty(),
            ba.to_json(50).render_pretty()
        );
        assert_eq!(ab.runs, 2);
        assert_eq!(ab.total_cycles, a.total_cycles + b.total_cycles);
        assert_eq!(
            ab.class_totals().total(),
            a.class_totals().total() + b.class_totals().total()
        );
    }

    #[test]
    fn hot_chains_follow_the_loop() {
        let (rp, _, _) = profiled_run();
        let chains = rp.hot_chains(3);
        assert!(!chains.is_empty());
        // The hottest chain's floor is the loop's back-edge count.
        assert!(chains[0].min_count >= 7, "loop edge dominates: {chains:?}");
    }

    #[test]
    fn null_tool_profile_has_no_sites() {
        let mut p = proc_from(LOOP_SUM);
        let mut engine = Engine::new(EngineOptions {
            profile: true,
            ..EngineOptions::default()
        });
        engine.run(&mut p, &mut NullTool, 1_000_000);
        let rp = RunProfile::build(
            engine.profile().unwrap(),
            &engine.stats,
            &p,
            "null",
            "t",
            p.cycles,
        );
        assert!(rp.sites.is_empty());
        assert_eq!(rp.class_totals().total(), p.cycles);
    }
}
