//! # Differential profile comparison — the regression observatory
//!
//! Parses two serialized `janitizer.profile/v2` bundles (the
//! `explain` artifacts the eval harness commits under `results/`) and
//! computes per-cell deltas: cycle classes, engine counters, and the
//! per-function / per-site / per-edge rollups, ranked by absolute
//! regression. The output answers "what got slower between these two
//! commits, and where" from artifacts alone — no re-run required.
//!
//! Everything is parsed back from the schema-stable JSON rather than
//! from live [`RunProfile`](crate::RunProfile)s so the diff works
//! across binary versions: an old artifact may lack engine counters a
//! newer build emits (missing keys diff as zero), and per-site rows are
//! aggregated over pc into `(tool, kind, module, function)` so layout
//! shifts between builds do not masquerade as regressions.

use janitizer_telemetry::json::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One metric compared across the two bundles.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Delta {
    /// Value in the first (baseline) bundle.
    pub before: u64,
    /// Value in the second (candidate) bundle.
    pub after: u64,
}

impl Delta {
    /// Signed change (`after - before`); positive is a regression for
    /// cost-like metrics.
    pub fn signed(&self) -> i128 {
        self.after as i128 - self.before as i128
    }

    /// Relative change `after / before`. A zero baseline maps to 1.0
    /// when both sides are zero and `f64::INFINITY` for a new cost.
    pub fn ratio(&self) -> f64 {
        if self.before == 0 {
            if self.after == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.after as f64 / self.before as f64
        }
    }

    /// Percentage change, `(ratio - 1) * 100`.
    pub fn pct(&self) -> f64 {
        (self.ratio() - 1.0) * 100.0
    }

    fn is_changed(&self) -> bool {
        self.before != self.after
    }
}

/// Per-function cost rollup parsed from one cell.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FnCost {
    /// Block executions attributed to the function.
    pub execs: u64,
    /// Pure guest cycles.
    pub guest: u64,
    /// All overhead cycles on top of guest execution.
    pub overhead: u64,
}

/// Per-site cost rollup, aggregated over pc.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SiteCost {
    /// Probe executions.
    pub execs: u64,
    /// Attributed probe cycles.
    pub cycles: u64,
    /// Dynamic executions of statically-elided checks.
    pub elided: u64,
}

/// Site identity stable across layout changes: `(tool, kind, module,
/// function)` — pc deliberately excluded.
pub type SiteId = (String, String, String, String);

/// One `(workload, config)` cell of a parsed bundle.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CellSummary {
    /// Cycle classes (`total`, `guest`, `dispatch`, …) from the
    /// profile's `cycles` object.
    pub cycles: BTreeMap<String, u64>,
    /// Engine counters (`blocks_translated`, `chained_transfers`, …).
    pub engine: BTreeMap<String, u64>,
    /// `(module, function) → cost` rollup.
    pub functions: BTreeMap<(String, String), FnCost>,
    /// `(tool, kind, module, function) → cost` rollup over the bundled
    /// top-N site rows.
    pub sites: BTreeMap<SiteId, SiteCost>,
    /// `(from_sym, to_sym, kind) → count` over the bundled top-N edges.
    pub edges: BTreeMap<(String, String, String), u64>,
}

/// A parsed `janitizer.profile/v2` bundle, cells keyed by
/// `(workload, config)`.
#[derive(Clone, PartialEq, Debug)]
pub struct BundleSummary {
    /// The bundle's `target` field (e.g. `"fig14"`).
    pub target: String,
    /// Parsed cells.
    pub cells: BTreeMap<(String, String), CellSummary>,
}

fn get_u64(obj: &Json, key: &str) -> u64 {
    obj.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn get_str(obj: &Json, key: &str) -> String {
    obj.get(key)
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string()
}

impl BundleSummary {
    /// Parses a serialized bundle. Accepts both the multi-cell bundle
    /// shape (`{schema, target, cells: [{workload, config, profile}]}`)
    /// and a bare single-profile document (treated as one unnamed
    /// cell), so `explain diff` works on any committed artifact.
    pub fn parse(text: &str) -> Result<BundleSummary, String> {
        let doc = Json::parse(text)?;
        let schema = get_str(&doc, "schema");
        if !schema.starts_with("janitizer.profile/") {
            return Err(format!(
                "not a janitizer.profile bundle (schema {schema:?})"
            ));
        }
        let mut cells = BTreeMap::new();
        match doc.get("cells").and_then(Json::as_arr) {
            Some(arr) => {
                for cell in arr {
                    let workload = get_str(cell, "workload");
                    let config = get_str(cell, "config");
                    let profile = cell
                        .get("profile")
                        .ok_or_else(|| format!("cell {workload}/{config} has no profile"))?;
                    cells.insert((workload, config), Self::parse_cell(profile));
                }
            }
            None => {
                // Bare profile document: key the single cell by exe/tool.
                let workload = get_str(&doc, "exe");
                let config = get_str(&doc, "tool");
                cells.insert((workload, config), Self::parse_cell(&doc));
            }
        }
        Ok(BundleSummary {
            target: get_str(&doc, "target"),
            cells,
        })
    }

    fn parse_cell(profile: &Json) -> CellSummary {
        let mut out = CellSummary::default();
        if let Some(obj) = profile.get("cycles").and_then(Json::as_obj) {
            for (k, v) in obj {
                if let Some(n) = v.as_u64() {
                    out.cycles.insert(k.clone(), n);
                }
            }
        }
        if let Some(obj) = profile.get("engine").and_then(Json::as_obj) {
            for (k, v) in obj {
                if let Some(n) = v.as_u64() {
                    out.engine.insert(k.clone(), n);
                }
            }
        }
        if let Some(arr) = profile.get("functions").and_then(Json::as_arr) {
            for f in arr {
                let key = (get_str(f, "module"), get_str(f, "function"));
                let dst = out.functions.entry(key).or_default();
                dst.execs += get_u64(f, "execs");
                dst.guest += get_u64(f, "guest_cycles");
                dst.overhead += get_u64(f, "overhead_cycles");
            }
        }
        if let Some(arr) = profile.get("sites").and_then(Json::as_arr) {
            for s in arr {
                let key = (
                    get_str(s, "tool"),
                    get_str(s, "kind"),
                    get_str(s, "module"),
                    get_str(s, "function"),
                );
                let dst = out.sites.entry(key).or_default();
                dst.execs += get_u64(s, "execs");
                dst.cycles += get_u64(s, "cycles");
                dst.elided += get_u64(s, "elided");
            }
        }
        if let Some(arr) = profile.get("edges").and_then(Json::as_arr) {
            for e in arr {
                let key = (
                    get_str(e, "from_sym"),
                    get_str(e, "to_sym"),
                    get_str(e, "kind"),
                );
                *out.edges.entry(key).or_insert(0) += get_u64(e, "count");
            }
        }
        out
    }
}

fn diff_maps<K: Clone + Ord>(
    a: &BTreeMap<K, u64>,
    b: &BTreeMap<K, u64>,
) -> BTreeMap<K, Delta> {
    let mut out: BTreeMap<K, Delta> = BTreeMap::new();
    for (k, v) in a {
        out.entry(k.clone()).or_default().before = *v;
    }
    for (k, v) in b {
        out.entry(k.clone()).or_default().after = *v;
    }
    out
}

/// The diff of one `(workload, config)` cell.
#[derive(Clone, PartialEq, Debug)]
pub struct CellDiff {
    /// Workload name.
    pub workload: String,
    /// Tool/config name.
    pub config: String,
    /// Cycle-class deltas.
    pub cycles: BTreeMap<String, Delta>,
    /// Engine-counter deltas.
    pub engine: BTreeMap<String, Delta>,
    /// Per-function overhead deltas.
    pub functions: BTreeMap<(String, String), Delta>,
    /// Per-site cycle deltas.
    pub sites: BTreeMap<SiteId, Delta>,
    /// Per-edge count deltas.
    pub edges: BTreeMap<(String, String, String), Delta>,
}

impl CellDiff {
    /// Delta of the cell's `total` cycle class.
    pub fn total(&self) -> Delta {
        self.cycles.get("total").copied().unwrap_or_default()
    }

    fn ranked<K: Clone + Ord>(map: &BTreeMap<K, Delta>, regressions: bool) -> Vec<(K, Delta)> {
        let mut v: Vec<(K, Delta)> = map
            .iter()
            .filter(|(_, d)| d.is_changed())
            .filter(|(_, d)| if regressions { d.signed() > 0 } else { d.signed() < 0 })
            .map(|(k, d)| (k.clone(), *d))
            .collect();
        // Largest absolute change first; relative change then key break
        // ties, so the ranking is fully deterministic.
        v.sort_by(|(ka, a), (kb, b)| {
            b.signed()
                .abs()
                .cmp(&a.signed().abs())
                .then(b.ratio().total_cmp(&a.ratio()))
                .then(ka.cmp(kb))
        });
        v
    }

    /// Sites with increased cycles, largest absolute regression first.
    pub fn regressing_sites(&self) -> Vec<(SiteId, Delta)> {
        Self::ranked(&self.sites, true)
    }

    /// Sites with decreased cycles, largest absolute improvement first.
    pub fn improving_sites(&self) -> Vec<(SiteId, Delta)> {
        Self::ranked(&self.sites, false)
    }

    /// Functions whose overhead grew, largest first.
    pub fn regressing_functions(&self) -> Vec<((String, String), Delta)> {
        Self::ranked(&self.functions, true)
    }

    /// Functions whose overhead shrank, largest first.
    pub fn improving_functions(&self) -> Vec<((String, String), Delta)> {
        Self::ranked(&self.functions, false)
    }
}

/// The full diff of two parsed bundles.
#[derive(Clone, PartialEq, Debug)]
pub struct BundleDiff {
    /// Cells present in both bundles, in deterministic key order.
    pub cells: Vec<CellDiff>,
    /// Cells only in the baseline.
    pub only_before: Vec<(String, String)>,
    /// Cells only in the candidate.
    pub only_after: Vec<(String, String)>,
}

impl BundleDiff {
    /// Computes the diff of `before` vs `after`. Cells are matched by
    /// `(workload, config)`; unmatched cells are listed, not diffed.
    pub fn compute(before: &BundleSummary, after: &BundleSummary) -> BundleDiff {
        let mut cells = Vec::new();
        let mut only_before = Vec::new();
        let mut only_after = Vec::new();
        for (key, a) in &before.cells {
            match after.cells.get(key) {
                Some(b) => cells.push(CellDiff {
                    workload: key.0.clone(),
                    config: key.1.clone(),
                    cycles: diff_maps(&a.cycles, &b.cycles),
                    engine: diff_maps(&a.engine, &b.engine),
                    functions: diff_maps(
                        &a.functions
                            .iter()
                            .map(|(k, v)| (k.clone(), v.overhead))
                            .collect(),
                        &b.functions
                            .iter()
                            .map(|(k, v)| (k.clone(), v.overhead))
                            .collect(),
                    ),
                    sites: diff_maps(
                        &a.sites.iter().map(|(k, v)| (k.clone(), v.cycles)).collect(),
                        &b.sites.iter().map(|(k, v)| (k.clone(), v.cycles)).collect(),
                    ),
                    edges: diff_maps(&a.edges, &b.edges),
                }),
                None => only_before.push(key.clone()),
            }
        }
        for key in after.cells.keys() {
            if !before.cells.contains_key(key) {
                only_after.push(key.clone());
            }
        }
        BundleDiff {
            cells,
            only_before,
            only_after,
        }
    }

    /// The worst (largest) per-cell `total`-cycles ratio `after /
    /// before` — the perf gate's pass/fail number. 1.0 when there are
    /// no comparable cells.
    pub fn worst_total_ratio(&self) -> f64 {
        let mut worst: Option<f64> = None;
        for c in &self.cells {
            let r = c.total().ratio();
            worst = Some(worst.map_or(r, |w| w.max(r)));
        }
        worst.unwrap_or(1.0)
    }

    /// Sum of `total` cycles across comparable cells, as a delta.
    pub fn grand_total(&self) -> Delta {
        let mut d = Delta::default();
        for c in &self.cells {
            let t = c.total();
            d.before = d.before.saturating_add(t.before);
            d.after = d.after.saturating_add(t.after);
        }
        d
    }

    /// Renders the human-readable diff report. `top` bounds each ranked
    /// list; cells whose totals are byte-identical are summarized in
    /// one line.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        let g = self.grand_total();
        let _ = writeln!(
            out,
            "== profile diff: {} cell(s), total cycles {} -> {} ({:+.2}%) ==",
            self.cells.len(),
            g.before,
            g.after,
            g.pct()
        );
        for key in &self.only_before {
            let _ = writeln!(out, "  only in baseline: {}/{}", key.0, key.1);
        }
        for key in &self.only_after {
            let _ = writeln!(out, "  only in candidate: {}/{}", key.0, key.1);
        }
        let mut unchanged = 0usize;
        for c in &self.cells {
            if c.cycles.values().all(|d| !d.is_changed())
                && c.engine.values().all(|d| !d.is_changed())
            {
                unchanged += 1;
                continue;
            }
            let t = c.total();
            let _ = writeln!(
                out,
                "-- {}/{}: total {} -> {} ({:+.2}%) --",
                c.workload,
                c.config,
                t.before,
                t.after,
                t.pct()
            );
            for (class, d) in &c.cycles {
                if class != "total" && d.is_changed() {
                    let _ = writeln!(
                        out,
                        "  cycles.{class:<18} {} -> {} ({:+.2}%)",
                        d.before,
                        d.after,
                        d.pct()
                    );
                }
            }
            for (counter, d) in &c.engine {
                if d.is_changed() {
                    let _ = writeln!(
                        out,
                        "  engine.{counter:<18} {} -> {}",
                        d.before, d.after
                    );
                }
            }
            for (title, rows) in [
                ("top regressing sites", c.regressing_sites()),
                ("top improving sites", c.improving_sites()),
            ] {
                if rows.is_empty() {
                    continue;
                }
                let _ = writeln!(out, "  {title}:");
                for ((tool, kind, module, function), d) in rows.into_iter().take(top) {
                    let _ = writeln!(
                        out,
                        "    {tool}:{kind} {module}!{function}  {} -> {} ({:+.2}%)",
                        d.before,
                        d.after,
                        d.pct()
                    );
                }
            }
            for (title, rows) in [
                ("top regressing functions", c.regressing_functions()),
                ("top improving functions", c.improving_functions()),
            ] {
                if rows.is_empty() {
                    continue;
                }
                let _ = writeln!(out, "  {title} (overhead cycles):");
                for ((module, function), d) in rows.into_iter().take(top) {
                    let _ = writeln!(
                        out,
                        "    {module}!{function}  {} -> {} ({:+.2}%)",
                        d.before,
                        d.after,
                        d.pct()
                    );
                }
            }
        }
        if unchanged > 0 {
            let _ = writeln!(out, "-- {unchanged} cell(s) byte-identical --");
        }
        out
    }
}

/// Parses two serialized bundles and renders their diff — the one-call
/// entry point behind `janitizer-eval explain diff`.
pub fn diff_bundles(before: &str, after: &str, top: usize) -> Result<(BundleDiff, String), String> {
    let a = BundleSummary::parse(before).map_err(|e| format!("baseline: {e}"))?;
    let b = BundleSummary::parse(after).map_err(|e| format!("candidate: {e}"))?;
    let d = BundleDiff::compute(&a, &b);
    let report = d.render(top);
    Ok((d, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bundle(dispatch: u64, site_cycles: u64) -> String {
        format!(
            r#"{{
  "schema": "janitizer.profile/v2",
  "target": "fig14",
  "top": 5,
  "cells": [
    {{
      "workload": "GemsFDTD",
      "config": "jasan-hybrid",
      "profile": {{
        "schema": "janitizer.profile/v2",
        "tool": "jasan",
        "exe": "GemsFDTD",
        "runs": 1,
        "cycles": {{"total": {total}, "guest": 100, "dispatch": {dispatch}}},
        "engine": {{"blocks_translated": 4}},
        "functions": [
          {{"module": "m", "function": "f", "execs": 2, "guest_cycles": 100,
            "overhead_cycles": {dispatch}}}
        ],
        "sites": [
          {{"tool": "jasan", "kind": "shadow-check", "pc": 4096, "module": "m",
            "function": "f", "execs": 8, "cycles": {site_cycles}, "elided": 0}},
          {{"tool": "jasan", "kind": "shadow-check", "pc": 8192, "module": "m",
            "function": "f", "execs": 8, "cycles": {site_cycles}, "elided": 0}}
        ],
        "edges": [
          {{"from": 1, "to": 2, "kind": "fall", "count": 9,
            "from_sym": "m!f", "to_sym": "m!g"}}
        ]
      }}
    }}
  ]
}}"#,
            total = 100 + dispatch,
            dispatch = dispatch,
            site_cycles = site_cycles,
        )
    }

    #[test]
    fn parse_aggregates_sites_over_pc() {
        let b = BundleSummary::parse(&bundle(1408, 50)).unwrap();
        assert_eq!(b.target, "fig14");
        let cell = &b.cells[&("GemsFDTD".into(), "jasan-hybrid".into())];
        assert_eq!(cell.cycles["dispatch"], 1408);
        // Two pc rows, one stable site identity.
        assert_eq!(cell.sites.len(), 1);
        let site = &cell.sites[&(
            "jasan".into(),
            "shadow-check".into(),
            "m".into(),
            "f".into(),
        )];
        assert_eq!(site.cycles, 100);
        assert_eq!(site.execs, 16);
    }

    #[test]
    fn diff_ranks_improvements_and_gates() {
        let (d, report) = diff_bundles(&bundle(1408, 50), &bundle(814, 40), 5).unwrap();
        assert_eq!(d.cells.len(), 1);
        let cell = &d.cells[0];
        let dispatch = cell.cycles["dispatch"];
        assert_eq!((dispatch.before, dispatch.after), (1408, 814));
        assert!(dispatch.signed() < 0);
        let improving = cell.improving_sites();
        assert_eq!(improving.len(), 1);
        assert_eq!(improving[0].1.before, 100);
        assert!(cell.regressing_sites().is_empty());
        assert!(d.worst_total_ratio() < 1.0);
        assert!(report.contains("1408 -> 814"), "report:\n{report}");
        assert!(report.contains("top improving sites"));
        // The improved run passes any gate >= its ratio; the reverse
        // diff (a regression) trips a 5% gate.
        let (rev, _) = diff_bundles(&bundle(814, 40), &bundle(1408, 50), 5).unwrap();
        assert!(rev.worst_total_ratio() > 1.05);
    }

    #[test]
    fn diff_tolerates_missing_keys_and_cells() {
        // Baseline lacks engine counters a newer build emits.
        let old = bundle(1408, 50).replace(r#""blocks_translated": 4"#, "");
        let (d, _) = diff_bundles(&old, &bundle(814, 40), 5).unwrap();
        let cell = &d.cells[0];
        assert_eq!(cell.engine["blocks_translated"].before, 0);
        assert_eq!(cell.engine["blocks_translated"].after, 4);
        // Unmatched cells are reported, not diffed.
        let other = bundle(814, 40).replace("GemsFDTD", "astar");
        let (d2, report) = diff_bundles(&bundle(1408, 50), &other, 5).unwrap();
        assert!(d2.cells.is_empty());
        assert_eq!(d2.only_before.len(), 1);
        assert_eq!(d2.only_after.len(), 1);
        assert!(report.contains("only in baseline: GemsFDTD/jasan-hybrid"));
        assert_eq!(d2.worst_total_ratio(), 1.0);
    }

    #[test]
    fn identical_bundles_render_as_unchanged() {
        let (d, report) = diff_bundles(&bundle(814, 40), &bundle(814, 40), 5).unwrap();
        assert_eq!(d.worst_total_ratio(), 1.0);
        assert_eq!(d.grand_total().signed(), 0);
        assert!(report.contains("1 cell(s) byte-identical"), "{report}");
    }

    #[test]
    fn rejects_non_profile_documents() {
        assert!(BundleSummary::parse("{\"schema\": \"janitizer.flight/v1\"}").is_err());
        assert!(BundleSummary::parse("not json").is_err());
    }
}
