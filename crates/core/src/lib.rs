//! # Janitizer — the hybrid static-dynamic framework core
//!
//! Ties the static analyzer (`janitizer-analysis`), the rewrite rules
//! (`janitizer-rules`) and the dynamic modifier (`janitizer-dbt`) together
//! into the workflow of the paper's Figure 1:
//!
//! 1. [`analyze_statically`] runs the generic core-layer analyses over a
//!    module, hands the results ([`StaticContext`]) to a
//!    [`SecurityPlugin`]'s static pass, and collects the emitted rewrite
//!    rules — adding a **no-op rule** for every statically recovered block
//!    the plugin left unmarked (§3.3.4), so the run-time classifier can
//!    tell "statically proven safe" apart from "never analyzed".
//! 2. [`JanitizerTool`] is the dynamic modifier client (Figure 4): at
//!    each module-load event it looks up the module's rule file and
//!    builds a PIC-adjusted per-module [`RuleTable`]; at each new basic
//!    block it classifies the block as *statically seen* (rule-table hit
//!    — apply rules via the plugin's static instrumenter) or *dynamic*
//!    (miss — the plugin's simpler per-block fallback).
//! 3. [`run_hybrid`] orchestrates the whole pipeline for one program and
//!    reports [`CoverageStats`] (the data behind Figure 14).

use janitizer_analysis as analysis;
use janitizer_dbt::{DecodedBlock, Engine, Tool};
pub use janitizer_dbt::{EngineOptions, RunOutcome, TbItem};
use janitizer_obj::{FormatError, Image};
use janitizer_rules::{RewriteRule, RuleFile, RuleTable};
use janitizer_vm::{load_process, LoadError, LoadOptions, ModuleStore, Process};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub use janitizer_dbt::{
    CostModel, JasanContext, JcfiContext, Probe, ProbeResult, Report, ShadowRow,
    Stats as EngineStats, ToolContext, ViolationContext, ViolationKind,
};
pub use janitizer_diag::{Frame, Symbolizer, ViolationReport};
pub use janitizer_profile::RunProfile;
pub use janitizer_rules::{RuleId, NO_OP};

pub mod fault;
pub use fault::{FaultInjection, Mutation, Mutator, SplitMix64};
pub mod serve;
pub use serve::{AnalysisService, ServeReply, ServeStats, ServiceOptions};

/// The workspace-wide error taxonomy: every way the pipeline can fail on
/// hostile input, wrapped per layer. Untrusted-input paths surface one of
/// these instead of panicking; the fault-injection harness asserts it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum JanitizerError {
    /// A JOF object or image (or a rule file) failed to decode.
    Format(FormatError),
    /// Static linking failed.
    Link(janitizer_link::LinkError),
    /// Process setup (mapping, relocation, symbol binding) failed.
    Load(LoadError),
}

impl fmt::Display for JanitizerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JanitizerError::Format(e) => write!(f, "format error: {e}"),
            JanitizerError::Link(e) => write!(f, "link error: {e}"),
            JanitizerError::Load(e) => write!(f, "load error: {e}"),
        }
    }
}

impl std::error::Error for JanitizerError {}

impl From<FormatError> for JanitizerError {
    fn from(e: FormatError) -> JanitizerError {
        JanitizerError::Format(e)
    }
}

impl From<janitizer_link::LinkError> for JanitizerError {
    fn from(e: janitizer_link::LinkError) -> JanitizerError {
        JanitizerError::Link(e)
    }
}

impl From<LoadError> for JanitizerError {
    fn from(e: LoadError) -> JanitizerError {
        JanitizerError::Load(e)
    }
}

/// Why a module was dropped into dynamic-only conservative mode instead
/// of aborting the run (the graceful-degradation policy: bad *rules*
/// must never take down a good *program*).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DegradationReason {
    /// The rule file failed structural decoding (truncated, bad magic,
    /// hostile counts, …).
    BadFormat,
    /// The rule file decoded but its payload checksum did not match.
    ChecksumMismatch,
    /// The rule file carries an older format version — rules from a
    /// previous build of the tools.
    StaleVersion,
    /// The rules verified, but were computed for a different build of
    /// the module (fingerprint over text + symbol table differs).
    FingerprintMismatch,
    /// The persistent rule store failed (I/O error past the retry
    /// budget) while serving this module; the request fell back to
    /// in-process analysis rather than surfacing an error to the client.
    StoreFailure,
    /// The supervised analysis exceeded its deterministic work budget;
    /// the partial (conservative) facts were discarded instead of being
    /// cached or persisted, and the module runs dynamic-only.
    AnalysisTimeout,
    /// The plugin's static pass panicked; the panic was isolated by the
    /// service supervisor and the module runs dynamic-only.
    AnalysisPanic,
    /// The disassembly backend marked a byte region of this module as
    /// low-confidence (contradictory code/data evidence); that *region*
    /// — not the whole module — carries no rules and takes the dynamic
    /// fallback.
    LowConfidenceRegion,
    /// Two overlapping candidate instruction sequences claimed the same
    /// bytes and weight resolution rejected one; the losing region runs
    /// dynamic-only.
    DisasmConflict,
}

impl DegradationReason {
    /// Stable label used in telemetry events and run summaries.
    pub fn as_str(&self) -> &'static str {
        match self {
            DegradationReason::BadFormat => "bad-format",
            DegradationReason::ChecksumMismatch => "checksum-mismatch",
            DegradationReason::StaleVersion => "stale-version",
            DegradationReason::FingerprintMismatch => "fingerprint-mismatch",
            DegradationReason::StoreFailure => "store-failure",
            DegradationReason::AnalysisTimeout => "analysis-timeout",
            DegradationReason::AnalysisPanic => "analysis-panic",
            DegradationReason::LowConfidenceRegion => "low-confidence-region",
            DegradationReason::DisasmConflict => "disasm-conflict",
        }
    }

    /// Classifies a rule-file decode error.
    fn from_decode_error(e: &FormatError) -> DegradationReason {
        match e {
            FormatError::BadVersion(_) => DegradationReason::StaleVersion,
            FormatError::Invalid { what } if *what == "rule-file checksum" => {
                DegradationReason::ChecksumMismatch
            }
            _ => DegradationReason::BadFormat,
        }
    }
}

impl fmt::Display for DegradationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One module that [`run_hybrid`] demoted to the dynamic-only fallback.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ModuleDegradation {
    /// Module name.
    pub module: String,
    /// Why its rules were rejected.
    pub reason: DegradationReason,
}

/// Results of the generic (core-layer) static analyses over one module,
/// made available to every plugin's static pass.
#[derive(Debug)]
pub struct StaticContext {
    /// Whole-module CFG.
    pub cfg: analysis::ModuleCfg,
    /// Register and flag liveness (with ipa-ra inbound sets).
    pub liveness: analysis::Liveness,
    /// Detected stack-canary sites.
    pub canaries: Vec<analysis::CanarySite>,
    /// Natural loops.
    pub loops: Vec<analysis::Loop>,
    /// Loop-invariant memory operands.
    pub invariants: Vec<analysis::InvariantAccess>,
    /// Raw-binary code-pointer scan.
    pub scan: analysis::CodePtrScan,
    /// Per-block confidence tiers from the disassembly backend; blocks
    /// absent from the map are `Proven` (the hybrid backend stores
    /// nothing, keeping its behaviour byte-identical).
    pub tiers: std::collections::BTreeMap<u64, analysis::ConfidenceTier>,
    /// Byte regions the backend degraded below static instrumentation.
    pub degraded_regions: Vec<analysis::DegradedRegion>,
    /// Name of the disassembly backend that produced `cfg`.
    pub backend: &'static str,
}

impl StaticContext {
    /// Runs all generic analyses over a module, with disassembly
    /// delegated to the process-selected [`analysis::DisasmBackend`].
    /// Each phase runs under a telemetry span (`static;<phase>`) so
    /// profiles attribute static pipeline time per analysis.
    pub fn analyze(image: &Image) -> StaticContext {
        let _outer = janitizer_telemetry::span!("static");
        let disasm = {
            let _s = janitizer_telemetry::span!("disasm-cfg");
            analysis::disasm_backend().analyze(image)
        };
        let analysis::DisasmResult {
            cfg,
            tiers,
            degraded,
            backend,
            ..
        } = disasm;
        janitizer_telemetry::counter_add("static.blocks_recovered", cfg.blocks.len() as u64);
        janitizer_telemetry::counter_add("static.functions_recovered", cfg.functions.len() as u64);
        let liveness = {
            let _s = janitizer_telemetry::span!("liveness");
            analysis::compute_liveness(&cfg)
        };
        let canaries = {
            let _s = janitizer_telemetry::span!("canaries");
            analysis::find_canary_sites(&cfg)
        };
        let (loops, invariants) = {
            let _s = janitizer_telemetry::span!("loops-scev");
            let loops = analysis::find_loops(&cfg);
            let invariants = analysis::loop_invariant_accesses(&cfg, &loops);
            (loops, invariants)
        };
        let scan = {
            let _s = janitizer_telemetry::span!("codeptr-scan");
            analysis::scan_code_pointers(image, &cfg)
        };
        StaticContext {
            cfg,
            liveness,
            canaries,
            loops,
            invariants,
            scan,
            tiers,
            degraded_regions: degraded,
            backend,
        }
    }

    /// Block starts the backend marked `Unknown` — the per-region
    /// degradation set: these blocks get no rules (not even the no-op
    /// marker), so the run-time classifier sends exactly them to the
    /// dynamic fallback.
    fn unknown_blocks(&self) -> HashSet<u64> {
        self.tiers
            .iter()
            .filter(|(_, t)| **t == analysis::ConfidenceTier::Unknown)
            .map(|(s, _)| *s)
            .collect()
    }
}

/// The per-instruction rewrite rules of one translation-time block,
/// pre-grouped by the framework so plugins receive borrowed slices
/// instead of per-instruction `Vec` clones (the dispatch fast path).
#[derive(Debug, Default)]
pub struct BlockRules<'a> {
    /// `(instr addr, rules)` sorted by address; addresses without rules
    /// are simply absent.
    entries: Vec<(u64, &'a [RewriteRule])>,
}

impl<'a> BlockRules<'a> {
    /// Builds the lookup from pre-collected `(addr, rules)` pairs.
    pub fn new(mut entries: Vec<(u64, &'a [RewriteRule])>) -> BlockRules<'a> {
        entries.sort_unstable_by_key(|e| e.0);
        BlockRules { entries }
    }

    /// Rules attached to the instruction at `addr` (empty slice when
    /// none). No-op markers are never included.
    pub fn rules_for(&self, addr: u64) -> &'a [RewriteRule] {
        match self.entries.binary_search_by_key(&addr, |e| e.0) {
            Ok(i) => self.entries[i].1,
            Err(_) => &[],
        }
    }

    /// Whether no instruction in the block carries a rule.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A security technique plugged into Janitizer: a cross-block static pass
/// plus a (typically simpler) per-block dynamic fallback (paper §3.4.3:
/// "custom security techniques need to provide two different plug-in
/// passes").
pub trait SecurityPlugin {
    /// Technique name.
    fn name(&self) -> &str;

    /// Key identifying this plugin's *static behaviour* for the
    /// [`RuleCache`]: two plugin instances with the same key must emit
    /// identical rules for identical modules. Configurations that change
    /// the static pass (e.g. JASan's liveness ablations) must extend the
    /// key; configurations that only change the dynamic side need not.
    fn cache_key(&self) -> String {
        self.name().to_string()
    }

    /// Cross-block static pass over one module: emit rewrite rules.
    /// No-op rules for unmarked blocks are added by the framework.
    fn static_pass(&self, image: &Image, ctx: &StaticContext) -> Vec<RewriteRule>;

    /// Called *instead of* [`SecurityPlugin::static_pass`] when the
    /// framework reuses a cached rule file for `image`. Plugins that
    /// stash per-module side state during their static pass (JCFI's hint
    /// tables) rebuild it here from the memoized analysis context; the
    /// reconstruction must be deterministic so cached and fresh runs stay
    /// byte-identical.
    fn on_rules_cached(&self, _image: &Image, _ctx: &StaticContext) {}

    /// One-time dynamic setup (map shadow memory, install tables).
    fn on_start(&mut self, _proc: &mut Process) {}

    /// A module was loaded; `rules` is present when a rule file was found
    /// for it (statically analyzed) and absent for e.g. `dlopen`ed
    /// plugins with no rules, in which case the plugin may run its own
    /// load-time analysis (JCFI's §4.2.2 fallback scan).
    fn on_module_load(&mut self, _proc: &mut Process, _module_id: usize, _rules: Option<&RuleTable>) {
    }

    /// Instruments a statically-seen block by interpreting its rewrite
    /// rules (`rules.rules_for(addr)` yields the rules of each
    /// instruction as a borrowed slice).
    fn instrument_static(
        &mut self,
        proc: &mut Process,
        block: &DecodedBlock,
        rules: &BlockRules<'_>,
    ) -> Vec<TbItem>;

    /// Fallback: instruments a block that was never seen statically
    /// (dlopen without rules, JIT code, or missed static coverage).
    fn instrument_dynamic(&mut self, proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem>;

    /// Called when the guest exits.
    fn on_exit(&mut self, _proc: &mut Process) {}

    /// Drains the tool-specific contexts this plugin recorded for its
    /// violation reports, in report order (index *i* pairs with the
    /// engine's report *i*). Plugins without forensic context keep the
    /// default empty implementation — missing entries render as
    /// [`ToolContext::None`].
    fn take_violation_contexts(&mut self) -> Vec<ToolContext> {
        Vec::new()
    }
}

/// Runs the full static pipeline for one module with one plugin,
/// returning its rewrite-rule file (including the no-op markers for every
/// recovered block).
pub fn analyze_statically(image: &Image, plugin: &dyn SecurityPlugin) -> RuleFile {
    analyze_statically_with(image, plugin, true)
}

/// Like [`analyze_statically`], but `emit_noop_rules` can disable the
/// no-op markers — the ablation showing why §3.3.4 matters: without them
/// every statically-clean block is misclassified as never-analyzed and
/// re-instrumented by the (conservative, more expensive) dynamic
/// fallback.
pub fn analyze_statically_with(
    image: &Image,
    plugin: &dyn SecurityPlugin,
    emit_noop_rules: bool,
) -> RuleFile {
    let ctx = StaticContext::analyze(image);
    emit_rules(image, &ctx, plugin, emit_noop_rules)
}

/// The rule-emission half of the static pipeline: runs the plugin's
/// static pass over an already-computed [`StaticContext`] and adds the
/// no-op markers. Split out so the [`RuleCache`] can reuse a memoized
/// context across plugins.
fn emit_rules(
    image: &Image,
    ctx: &StaticContext,
    plugin: &dyn SecurityPlugin,
    emit_noop_rules: bool,
) -> RuleFile {
    let mut file = RuleFile::new(image.name.clone(), image.pic);
    // Stamp the rules with the module build they were computed from, so
    // the run-time loader can reject rules for a different build.
    file.fingerprint = image.fingerprint();
    {
        let _s = janitizer_telemetry::span!("static;rule-emission");
        file.rules = plugin.static_pass(image, ctx);
    }
    // Per-region graceful degradation: blocks the backend marked
    // `Unknown` carry no rules at all — neither plugin rules (which
    // would rewrite bytes that may not be code) nor the no-op marker —
    // so the classifier misses them and the dynamic fallback
    // conservatively instruments exactly those regions.
    let unknown = ctx.unknown_blocks();
    if !unknown.is_empty() {
        let before = file.rules.len();
        file.rules.retain(|r| !unknown.contains(&r.bb_addr));
        janitizer_telemetry::counter_add(
            "static.rules_suppressed_low_confidence",
            (before - file.rules.len()) as u64,
        );
    }
    janitizer_telemetry::counter_add("static.rules_emitted", file.rules.len() as u64);
    // No-op rules: mark every statically recovered block so the dynamic
    // classifier can distinguish "seen and clean" from "never seen".
    if emit_noop_rules {
        let marked: HashSet<u64> = file.rules.iter().map(|r| r.bb_addr).collect();
        let before = file.rules.len();
        for &start in ctx.cfg.blocks.keys() {
            if !marked.contains(&start) && !unknown.contains(&start) {
                file.rules.push(RewriteRule::no_op(start));
            }
        }
        janitizer_telemetry::counter_add("static.noop_rules", (file.rules.len() - before) as u64);
    }
    file
}

/// A filled cache slot: the memoized rule file plus the context it was
/// derived from (kept for plugin-side-state replay on later hits).
type CachedRules = (Arc<RuleFile>, Arc<StaticContext>);

/// Per-module cache slot: the memoized generic analyses plus every rule
/// file derived from them, keyed by plugin cache key and no-op flag.
struct ModuleEntry {
    /// Pinned image handle. Keeps the allocation (and therefore the
    /// pointer identity used as the cache key) alive for the cache's
    /// lifetime, ruling out ABA reuse of a freed image's address.
    image: Arc<Image>,
    /// Lazily computed generic analysis results, shared by all plugins.
    /// The context records the disassembly backend that produced it; a
    /// request under a different backend recomputes and replaces it.
    ctx: Mutex<Option<Arc<StaticContext>>>,
    /// `(plugin cache key, emit_noop, disasm backend)` -> memoized rule
    /// file + context.
    slots: Mutex<HashMap<(String, bool, &'static str), CachedRules>>,
}

/// The analyze-once / run-many cache (paper §3.3.1: rules are computed
/// offline and *reused* at every run). Keyed by module identity (the
/// `Arc<Image>` allocation), plugin cache key, and the no-op-rule flag;
/// each distinct combination is statically analyzed exactly once per
/// cache lifetime, with the expensive generic analyses
/// ([`StaticContext`]) additionally shared across plugins of the same
/// module.
///
/// The cache is `Sync`: concurrent [`RuleCache::get_or_analyze`] calls
/// for the same key block on a per-module mutex, so exactly-once holds
/// even under the parallel evaluation fan-out.
#[derive(Default)]
pub struct RuleCache {
    modules: Mutex<HashMap<usize, Arc<ModuleEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// `(module name, plugin cache key)` -> number of times the plugin's
    /// static pass actually ran (exactly-once telemetry).
    analyses: Mutex<HashMap<(String, String), u64>>,
    /// Optional persistent backing: consulted on in-memory misses and
    /// populated after fresh analyses (the analyze-once story across
    /// *processes*, not just within one).
    store: Option<Arc<janitizer_store::RuleStore>>,
}

/// Where [`RuleCache::get_or_analyze_traced`] got the rule file from —
/// the observability hook of the analysis service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FillSource {
    /// Served from the in-memory slot.
    Memory,
    /// Served from the persistent store (verified on load).
    Store,
    /// Freshly analyzed in-process. `store_failed` is set when a backing
    /// store was configured but failed with an I/O error on the load or
    /// save path — the caller may report [`DegradationReason::StoreFailure`].
    Analyzed {
        /// Persistent-store I/O failed on this request's load/save path.
        store_failed: bool,
    },
}

impl std::fmt::Debug for RuleCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuleCache")
            .field("modules", &self.modules.lock().unwrap_or_else(|e| e.into_inner()).len())
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish()
    }
}

/// Hit/miss counters of a [`RuleCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleCacheStats {
    /// Rule files served from the cache.
    pub hits: u64,
    /// Rule files computed by running a static pass.
    pub misses: u64,
}

impl RuleCache {
    /// Creates an empty cache.
    pub fn new() -> RuleCache {
        RuleCache::default()
    }

    /// Creates a cache backed by a persistent [`janitizer_store::RuleStore`]:
    /// in-memory misses consult the store before analyzing, and fresh
    /// analyses are committed back, so a later process (or a recovered
    /// store) serves byte-identical rules without re-running any static
    /// pass.
    pub fn with_store(store: Arc<janitizer_store::RuleStore>) -> RuleCache {
        RuleCache {
            store: Some(store),
            ..RuleCache::default()
        }
    }

    /// The persistent backing store, if one was configured.
    pub fn store(&self) -> Option<&Arc<janitizer_store::RuleStore>> {
        self.store.as_ref()
    }

    /// Returns the module's rule file for `plugin`, running the static
    /// pipeline only on the first request per (module, plugin cache key,
    /// no-op flag). On a hit the plugin's
    /// [`SecurityPlugin::on_rules_cached`] hook replays its per-module
    /// side state from the memoized context.
    pub fn get_or_analyze(
        &self,
        image: &Arc<Image>,
        plugin: &dyn SecurityPlugin,
        emit_noop_rules: bool,
    ) -> Arc<RuleFile> {
        self.get_or_analyze_traced(image, plugin, emit_noop_rules).0
    }

    /// [`RuleCache::get_or_analyze`] plus the provenance of the result —
    /// the analysis service uses the trace to report store failures as
    /// degradations instead of errors.
    pub fn get_or_analyze_traced(
        &self,
        image: &Arc<Image>,
        plugin: &dyn SecurityPlugin,
        emit_noop_rules: bool,
    ) -> (Arc<RuleFile>, FillSource) {
        let (file, _, source) = self.get_or_analyze_full(image, plugin, emit_noop_rules);
        (file, source)
    }

    /// [`RuleCache::get_or_analyze_traced`] plus the memoized analysis
    /// context — [`run_hybrid`] reads the backend's per-region
    /// degradations from it on every run, hits included.
    pub fn get_or_analyze_full(
        &self,
        image: &Arc<Image>,
        plugin: &dyn SecurityPlugin,
        emit_noop_rules: bool,
    ) -> (Arc<RuleFile>, Arc<StaticContext>, FillSource) {
        let backend = analysis::disasm_backend_name();
        let entry = {
            let mut m = self.modules.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(m.entry(Arc::as_ptr(image) as usize).or_insert_with(|| {
                Arc::new(ModuleEntry {
                    image: Arc::clone(image),
                    ctx: Mutex::new(None),
                    slots: Mutex::new(HashMap::new()),
                })
            }))
        };
        let key = (plugin.cache_key(), emit_noop_rules, backend);
        // The slot lock is held across the (possible) analysis so a
        // concurrent request for the same key waits instead of repeating
        // the work — the exactly-once guarantee.
        let mut slots = entry.slots.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((file, ctx)) = slots.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            janitizer_telemetry::counter_add("rulecache.hits", 1);
            plugin.on_rules_cached(image, ctx);
            return (Arc::clone(file), Arc::clone(ctx), FillSource::Memory);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        janitizer_telemetry::counter_add("rulecache.misses", 1);
        // The generic analyses are needed on every fill path: a fresh
        // analysis consumes them directly, and a store hit replays the
        // plugin's side state from them (`on_rules_cached`) — the store
        // elides only the plugin static passes, which is also what keeps
        // store-served and in-process rules byte-identical.
        let ctx = {
            let mut c = entry.ctx.lock().unwrap_or_else(|e| e.into_inner());
            match &*c {
                Some(a) if a.backend == backend => Arc::clone(a),
                _ => {
                    let a = Arc::new(StaticContext::analyze(image));
                    *c = Some(Arc::clone(&a));
                    a
                }
            }
        };
        // Non-default backends fold their name into the store key's
        // plugin component: rules differ per backend, and the default
        // backend's on-disk entry names stay exactly what they were.
        let store_plugin = if backend == analysis::DEFAULT_BACKEND {
            key.0.clone()
        } else {
            format!("{}+disasm-{backend}", key.0)
        };
        let skey = self.store.as_ref().map(|_| janitizer_store::StoreKey {
            module: image.name.clone(),
            fingerprint: image.fingerprint(),
            plugin: store_plugin,
            noop: key.1,
        });
        let mut store_failed = false;
        if let (Some(st), Some(skey)) = (&self.store, &skey) {
            match st.load(skey) {
                Ok(Some(bytes)) => match verify_rule_bytes(image, &bytes) {
                    Ok(f) => {
                        janitizer_telemetry::counter_add("rulecache.store_served", 1);
                        plugin.on_rules_cached(image, &ctx);
                        let file = Arc::new(f);
                        slots.insert(key, (Arc::clone(&file), Arc::clone(&ctx)));
                        return (file, ctx, FillSource::Store);
                    }
                    Err(reason) => {
                        // The envelope verified but the rule bytes inside
                        // disagree with this module — a stale or tampered
                        // payload. Fall through to a fresh analysis (which
                        // overwrites the entry).
                        janitizer_telemetry::counter_add("rulecache.store_rejected", 1);
                        janitizer_telemetry::event!(
                            "diag.store_rules_rejected",
                            module = image.name.as_str(),
                            reason = reason.as_str(),
                        );
                    }
                },
                Ok(None) => {}
                Err(_) => store_failed = true,
            }
        }
        {
            let mut a = self.analyses.lock().unwrap_or_else(|e| e.into_inner());
            *a.entry((image.name.clone(), key.0.clone())).or_insert(0) += 1;
        }
        let file = Arc::new(emit_rules(image, &ctx, plugin, emit_noop_rules));
        if analysis::budget::overrun() {
            // The service-armed budget ran out mid-analysis: the facts are
            // conservative but truncated, so neither memoize nor persist
            // them — the supervisor observes the overrun and degrades.
            // The generic context was necessarily computed under this
            // budget (memoized contexts charge nothing), so it is
            // truncated too: drop it for the next, possibly unbudgeted,
            // fill. The held slot lock makes the discard race-free.
            *entry.ctx.lock().unwrap_or_else(|e| e.into_inner()) = None;
            janitizer_telemetry::counter_add("rulecache.overbudget_discarded", 1);
            return (file, ctx, FillSource::Analyzed { store_failed });
        }
        if let (Some(st), Some(skey)) = (&self.store, &skey) {
            if let Err(e) = st.save(skey, &file.to_bytes()) {
                store_failed = true;
                janitizer_telemetry::counter_add("store.save_failures", 1);
                janitizer_telemetry::event!(
                    "diag.store_save_failed",
                    module = image.name.as_str(),
                    error = format!("{e}"),
                );
            }
        }
        slots.insert(key, (Arc::clone(&file), Arc::clone(&ctx)));
        (file, ctx, FillSource::Analyzed { store_failed })
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> RuleCacheStats {
        RuleCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// How many times `plugin_key`'s static pass actually ran over the
    /// module named `module` (0 = never, 1 = analyze-once as intended).
    pub fn analysis_count(&self, module: &str, plugin_key: &str) -> u64 {
        self.analyses
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&(module.to_string(), plugin_key.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Number of distinct modules with at least one cached entry.
    pub fn cached_modules(&self) -> usize {
        self.modules.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Drops every entry for modules named `name`, releasing the pinned
    /// image and its analyses. Used by harnesses that build throwaway
    /// single-use executables (the Juliet cases) against long-lived
    /// shared libraries: evicting the throwaway keeps the cache bounded
    /// while `libc`/`ld.so` stay memoized.
    pub fn evict_module(&self, name: &str) {
        self.modules
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|_, e| e.image.name != name);
    }

    /// Fans the static pipeline out over `modules` across `threads` OS
    /// threads: each worker builds its own plugin instance via
    /// `make_plugin` (plugins are not `Send`) and analyzes whole modules,
    /// so every (module, plugin) pair is still analyzed exactly once.
    /// Results land in the cache; callers then run with guaranteed hits.
    pub fn prewarm<F>(
        &self,
        store: &ModuleStore,
        roots: &[String],
        make_plugin: F,
        emit_noop_rules: bool,
        threads: usize,
    ) where
        F: Fn() -> Box<dyn SecurityPlugin> + Sync,
    {
        let modules = dependency_closure(store, roots);
        let threads = threads.max(1).min(modules.len().max(1));
        if threads <= 1 {
            let plugin = make_plugin();
            for name in &modules {
                if let Some(image) = store.get(name) {
                    self.get_or_analyze(&image, plugin.as_ref(), emit_noop_rules);
                }
            }
            return;
        }
        let next = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let plugin = make_plugin();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                        let Some(name) = modules.get(i) else { break };
                        if let Some(image) = store.get(name) {
                            self.get_or_analyze(&image, plugin.as_ref(), emit_noop_rules);
                        }
                    }
                });
            }
        });
    }
}

/// The modules the static analyzer would see for the given roots: the
/// roots themselves plus everything reachable through `needed` edges —
/// the `ldd`-discoverable closure of [`run_hybrid`]. Returned in
/// deterministic discovery order.
pub fn dependency_closure(store: &ModuleStore, roots: &[String]) -> Vec<String> {
    let mut queue: Vec<String> = Vec::new();
    let mut enqueued: HashSet<String> = HashSet::new();
    for r in roots {
        if enqueued.insert(r.clone()) {
            queue.push(r.clone());
        }
    }
    let mut qi = 0;
    while qi < queue.len() {
        let name = queue[qi].clone();
        qi += 1;
        let Some(image) = store.get(&name) else { continue };
        for dep in &image.needed {
            if enqueued.insert(dep.clone()) {
                queue.push(dep.clone());
            }
        }
    }
    queue
}

/// A repository of rule files keyed by module name — the stand-in for the
/// per-module files of §3.3.1 that "are loaded at run-time with the
/// module".
#[derive(Clone, Debug, Default)]
pub struct RuleRepo {
    files: HashMap<String, Arc<RuleFile>>,
}

impl RuleRepo {
    /// Creates an empty repository.
    pub fn new() -> RuleRepo {
        RuleRepo::default()
    }

    /// Stores a module's rule file.
    pub fn add(&mut self, file: RuleFile) {
        self.add_shared(Arc::new(file));
    }

    /// Stores a module's rule file without copying it — the repo and a
    /// [`RuleCache`] share the same allocation.
    pub fn add_shared(&mut self, file: Arc<RuleFile>) {
        self.files.insert(file.module.clone(), file);
    }

    /// Fetches a module's rule file.
    pub fn get(&self, module: &str) -> Option<&RuleFile> {
        self.files.get(module).map(Arc::as_ref)
    }

    /// Serializes every rule file (as would be written next to modules).
    pub fn to_bytes_map(&self) -> HashMap<String, Vec<u8>> {
        self.files
            .iter()
            .map(|(k, v)| (k.clone(), v.to_bytes()))
            .collect()
    }
}

/// Block-classification counters (the data behind Figure 14).
#[derive(Clone, Copy, Debug, Default)]
pub struct CoverageStats {
    /// Distinct blocks instrumented from rewrite rules (statically seen).
    pub static_blocks: u64,
    /// Distinct blocks that went to the dynamic-analysis fallback.
    pub dynamic_blocks: u64,
    /// Of the dynamic blocks, those inside a backend-degraded region —
    /// the region-scoped graceful-degradation fallback, as opposed to
    /// code the static tier never saw at all.
    pub region_fallback_blocks: u64,
}

#[derive(Debug, Default)]
struct CoverageSets {
    static_seen: std::collections::HashSet<u64>,
    dynamic_seen: std::collections::HashSet<u64>,
    region_fallback: std::collections::HashSet<u64>,
}

impl CoverageSets {
    fn stats(&self) -> CoverageStats {
        CoverageStats {
            static_blocks: self.static_seen.len() as u64,
            dynamic_blocks: self.dynamic_seen.len() as u64,
            region_fallback_blocks: self.region_fallback.len() as u64,
        }
    }
}

impl CoverageStats {
    /// Fraction of blocks only seen dynamically, in percent.
    pub fn dynamic_fraction(&self) -> f64 {
        let total = self.static_blocks + self.dynamic_blocks;
        if total == 0 {
            0.0
        } else {
            self.dynamic_blocks as f64 * 100.0 / total as f64
        }
    }
}

/// The dynamic modifier client that implements Janitizer's run-time side:
/// rule loading, PIC adjustment, and the static/dynamic code classifier.
pub struct JanitizerTool<P: SecurityPlugin> {
    /// The plugged-in security technique.
    pub plugin: P,
    repo: RuleRepo,
    /// Per-module rule tables, indexed by module id (Figure 5).
    tables: Vec<Option<RuleTable>>,
    coverage_sets: CoverageSets,
    /// Backend-degraded byte regions per module name (image address
    /// space), for classifying misses as region-scoped fallback.
    degraded_regions: HashMap<String, janitizer_dbt::RegionSet>,
}

impl<P: SecurityPlugin> JanitizerTool<P> {
    /// Creates the tool around a plugin and the rule files produced by
    /// the static analyzer.
    pub fn new(plugin: P, repo: RuleRepo) -> JanitizerTool<P> {
        JanitizerTool {
            plugin,
            repo,
            tables: Vec::new(),
            coverage_sets: CoverageSets::default(),
            degraded_regions: HashMap::new(),
        }
    }

    /// Installs the disassembly backend's degraded regions, keyed by
    /// module name. Classification-time misses inside these regions
    /// count as [`CoverageStats::region_fallback_blocks`].
    pub fn set_degraded_regions(&mut self, regions: HashMap<String, janitizer_dbt::RegionSet>) {
        self.degraded_regions = regions;
    }

    /// Distinct-block classification counters (Figure 14).
    pub fn coverage(&self) -> CoverageStats {
        self.coverage_sets.stats()
    }

    fn table_for_addr<'a>(
        tables: &'a [Option<RuleTable>],
        proc: &Process,
        addr: u64,
    ) -> Option<&'a RuleTable> {
        let m = proc.module_containing(addr)?;
        tables.get(m.id).and_then(|t| t.as_ref())
    }
}

impl<P: SecurityPlugin> Tool for JanitizerTool<P> {
    fn name(&self) -> &str {
        "janitizer"
    }

    fn on_start(&mut self, proc: &mut Process) {
        self.plugin.on_start(proc);
    }

    fn on_module_load(&mut self, proc: &mut Process, module_id: usize) {
        // Load the module's rewrite rules (if the static analyzer produced
        // any) into a fresh hash table, adjusting addresses by the load
        // bias for PIC modules (Figure 5a).
        let m = &proc.modules[module_id];
        let table = self
            .repo
            .get(&m.image.name)
            .map(|file| RuleTable::from_file(file, m.base));
        while self.tables.len() <= module_id {
            self.tables.push(None);
        }
        self.tables[module_id] = table;
        let t = self.tables[module_id].as_ref();
        self.plugin.on_module_load(proc, module_id, t);
    }

    fn instrument_block(&mut self, proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
        // The loader's bootstrap shim is runtime-injected scaffolding (like
        // a DBT's own trampolines): executed verbatim, never instrumented,
        // and not counted as application code.
        if (janitizer_vm::BOOTSTRAP_BASE..janitizer_vm::BOOTSTRAP_BASE + 0x1000)
            .contains(&block.start)
        {
            return block
                .insns
                .iter()
                .map(|&(pc, i, n)| TbItem::Guest(pc, i, n))
                .collect();
        }
        // The classifier (Figure 4): a hit in the owning module's hash
        // table means the block was statically seen.
        let hit = Self::table_for_addr(&self.tables, proc, block.start)
            .and_then(|t| t.lookup_bb(block.start))
            .is_some();
        if hit {
            self.coverage_sets.static_seen.insert(block.start);
            // Pre-group per-instruction rules once across the (possibly
            // merged) translation-time block, handing the plugin borrowed
            // slices into the rule tables — no per-instruction cloning.
            let mut entries: Vec<(u64, &[RewriteRule])> =
                Vec::with_capacity(block.insns.len());
            for &(pc, _, _) in &block.insns {
                let rules = Self::table_for_addr(&self.tables, proc, pc)
                    .map(|t| t.lookup_instr(pc))
                    .unwrap_or(&[]);
                if !rules.is_empty() {
                    entries.push((pc, rules));
                }
            }
            let lookup = BlockRules::new(entries);
            self.plugin.instrument_static(proc, block, &lookup)
        } else {
            if self.coverage_sets.dynamic_seen.insert(block.start) {
                // Region-scoped fallback attribution: a miss inside a
                // backend-degraded region is graceful degradation doing
                // its job, not a static-coverage gap.
                let in_region = proc
                    .module_containing(block.start)
                    .and_then(|m| {
                        let rel = block.start.wrapping_sub(m.base);
                        self.degraded_regions.get(&m.image.name).map(|r| r.contains(rel))
                    })
                    .unwrap_or(false);
                if in_region {
                    self.coverage_sets.region_fallback.insert(block.start);
                    janitizer_telemetry::counter_add("dbt.region_fallback_blocks", 1);
                }
            }
            self.plugin.instrument_dynamic(proc, block)
        }
    }

    fn on_exit(&mut self, proc: &mut Process) {
        self.plugin.on_exit(proc);
    }
}

/// Everything produced by one [`run_hybrid`] execution.
#[derive(Debug)]
pub struct HybridRun {
    /// How the guest stopped.
    pub outcome: RunOutcome,
    /// Cycle count (the performance metric; compare against a native run).
    pub cycles: u64,
    /// Guest instruction count.
    pub insns: u64,
    /// Engine statistics (translation/dispatch/probe cycles, reports).
    pub engine: EngineStats,
    /// Static/dynamic block classification.
    pub coverage: CoverageStats,
    /// Captured stdout.
    pub stdout: String,
    /// Forensic reports, one per engine report — empty unless
    /// [`HybridOptions::forensics`] is set.
    pub reports: Vec<ViolationReport>,
    /// Symbolized overhead-attribution profile — `None` unless
    /// [`HybridOptions::profile`] is set. Observation-only: outcome,
    /// cycles, coverage, and stdout are byte-identical either way.
    pub profile: Option<RunProfile>,
    /// Modules whose rules failed integrity verification and were demoted
    /// to dynamic-only conservative instrumentation, sorted by module
    /// name. Empty on a clean run.
    pub degraded: Vec<ModuleDegradation>,
}

/// Options for [`run_hybrid`].
#[derive(Clone, Debug, Default)]
pub struct HybridOptions {
    /// Loader options (preloads, args, binding mode, seed).
    pub load: LoadOptions,
    /// Engine options (cost model, violation policy).
    pub engine: EngineOptions,
    /// Skip the static pass entirely — the paper's "-dyn" configurations,
    /// where every block goes through the dynamic fallback.
    pub dynamic_only: bool,
    /// Emit no-op rules for unmodified blocks (§3.3.4). Disable only for
    /// the ablation study.
    pub no_noop_rules: bool,
    /// Extra modules to analyze statically even though `ldd` cannot
    /// discover them — modelling a `dlopen`ed library that ships with a
    /// rewrite-rule file (paper §3.4 footnote 1: "if a shared object
    /// library is loaded during execution via dlopen and happens to have
    /// an associated file with rewrite rules, they can be processed").
    pub analyze_extra: Vec<String>,
    /// Shared analyze-once cache: when set, per-module rule files are
    /// memoized across [`run_hybrid`] calls instead of re-running the
    /// static pipeline on every run.
    pub rule_cache: Option<Arc<RuleCache>>,
    /// Cycle budget.
    pub fuel: u64,
    /// Assemble a forensic [`ViolationReport`] for every violation
    /// (symbolized backtrace, disasm window, tool context, execution
    /// trail). Observation-only: the deterministic results are identical
    /// either way; off by default to skip the assembly work.
    pub forensics: bool,
    /// Collect the deterministic hotness/overhead-attribution profile
    /// (per-block cycle classes, probe-site accounting, edge counts) and
    /// return it symbolized in [`HybridRun::profile`]. Observation-only,
    /// like `forensics`; off by default to skip the counter upkeep.
    pub profile: bool,
    /// Serialized rule files that replace the static analyzer's output
    /// for the named modules, as if read from an on-disk rule repository.
    /// Each override goes through the full integrity-checked decode, so a
    /// corrupt/stale/mismatched override degrades that module instead of
    /// being trusted.
    pub rule_overrides: HashMap<String, Vec<u8>>,
    /// Deterministically corrupt each module's serialized rule file with
    /// the given seed/rate before the integrity-checked load — the
    /// `--inject-faults` evaluation mode. `None` (the default) keeps the
    /// trusted in-memory fast path, byte-identical to previous behaviour.
    pub inject_faults: Option<FaultInjection>,
    /// Disable the host-side trace machinery (direct-branch chaining,
    /// superblock formation, probe-fusion precompute) — the `--no-traces`
    /// flag. Traces are host-only: the modeled guest state, cycle counts,
    /// and violation reports are byte-identical either way; this knob
    /// exists for A/B wall-time measurement and bisection.
    pub no_traces: bool,
    /// Override the engine's superblock hotness threshold (block
    /// executions before trace formation is attempted). `0` keeps the
    /// engine default.
    pub trace_threshold: u32,
}

impl HybridOptions {
    /// Defaults with a generous fuel budget.
    pub fn with_fuel(fuel: u64) -> HybridOptions {
        HybridOptions {
            fuel,
            ..HybridOptions::default()
        }
    }
}

/// Verifies one module's serialized rule file against the module image:
/// integrity-checked decode, then the build-fingerprint comparison. `Ok`
/// is the decoded, trusted file; `Err` is the degradation cause.
fn verify_rule_bytes(image: &Image, bytes: &[u8]) -> Result<RuleFile, DegradationReason> {
    let file =
        RuleFile::from_bytes(bytes).map_err(|e| DegradationReason::from_decode_error(&e))?;
    if file.module != image.name || file.fingerprint != image.fingerprint() {
        return Err(DegradationReason::FingerprintMismatch);
    }
    Ok(file)
}

/// Runs `exe` under Janitizer with `plugin`: statically analyzes every
/// module in the store (unless `dynamic_only`), loads the process, and
/// executes it under the dynamic modifier.
///
/// Rule-file integrity failures do **not** abort the run: the affected
/// module is dropped into dynamic-only conservative mode (its blocks all
/// miss the classifier and take the plugin's dynamic fallback), the
/// demotion is recorded in [`HybridRun::degraded`], and the
/// `rules.integrity_failures` / `modules.degraded` telemetry counters
/// plus a `diag.module_degraded` event name the cause.
///
/// # Errors
///
/// Returns a [`JanitizerError`] if process setup fails.
pub fn run_hybrid<P: SecurityPlugin>(
    store: &ModuleStore,
    exe: &str,
    plugin: P,
    opts: &HybridOptions,
) -> Result<HybridRun, JanitizerError> {
    let mut repo = RuleRepo::new();
    let mut degraded: Vec<ModuleDegradation> = Vec::new();
    let mut region_map: HashMap<String, janitizer_dbt::RegionSet> = HashMap::new();
    if !opts.dynamic_only {
        // The static analyzer sees the executable and the dependencies
        // `ldd` can discover (plus preloads and ld.so) — NOT modules that
        // only arrive via dlopen (paper 3.4, footnote 1).
        let mut roots: Vec<String> = vec![exe.to_string()];
        roots.extend(opts.load.preload.iter().cloned());
        roots.extend(opts.analyze_extra.iter().cloned());
        roots.push("ld.so".into());
        for name in dependency_closure(store, &roots) {
            let Some(image) = store.get(&name) else { continue };
            // A module's rules come either from an explicit override (an
            // "on-disk" serialized rule file) or from the static pipeline.
            let override_bytes = opts.rule_overrides.get(&name);
            let file = if override_bytes.is_none() {
                let (f, ctx) = match &opts.rule_cache {
                    Some(cache) => {
                        let (f, ctx, _) =
                            cache.get_or_analyze_full(&image, &plugin, !opts.no_noop_rules);
                        (f, ctx)
                    }
                    None => {
                        let ctx = Arc::new(StaticContext::analyze(&image));
                        let f = Arc::new(emit_rules(&image, &ctx, &plugin, !opts.no_noop_rules));
                        (f, ctx)
                    }
                };
                // Per-region graceful degradation: every byte region the
                // disassembly backend refused to trust is recorded (and
                // surfaced through telemetry + the flight recorder), but
                // the rest of the module keeps full static rules.
                for r in &ctx.degraded_regions {
                    let reason = match r.cause {
                        analysis::RegionCause::LowConfidence => {
                            DegradationReason::LowConfidenceRegion
                        }
                        analysis::RegionCause::Conflict => DegradationReason::DisasmConflict,
                    };
                    janitizer_telemetry::counter_add("disasm.regions_degraded", 1);
                    janitizer_telemetry::event!(
                        "diag.region_degraded",
                        module = name.as_str(),
                        reason = reason.as_str(),
                        start = r.start,
                        len = r.len,
                    );
                    if janitizer_telemetry::flight::armed() {
                        janitizer_telemetry::flight::record_for(
                            "disasm.degraded",
                            &name,
                            r.start,
                            r.len,
                        );
                    }
                    degraded.push(ModuleDegradation { module: name.clone(), reason });
                }
                if !ctx.degraded_regions.is_empty() {
                    region_map.insert(
                        name.clone(),
                        janitizer_dbt::RegionSet::from_ranges(
                            ctx.degraded_regions.iter().map(|r| (r.start, r.len)),
                        ),
                    );
                }
                if opts.inject_faults.is_none() {
                    // Trusted in-memory fast path: the rules were computed
                    // in this process, no serialization round-trip needed.
                    repo.add_shared(f);
                    continue;
                }
                Some(f)
            } else {
                None
            };
            // Untrusted path: serialized bytes (override, or the freshly
            // emitted file with faults injected) through the verified load.
            let mut bytes = match (override_bytes, &file) {
                (Some(b), _) => b.clone(),
                (None, Some(f)) => f.to_bytes(),
                (None, None) => unreachable!("no override and no analysis result"),
            };
            if let Some(fi) = opts.inject_faults {
                let mut rng = SplitMix64::new(fi.module_seed(&name));
                if rng.chance(fi.rate) {
                    Mutator::new(rng.next_u64()).mutate(&mut bytes);
                }
            }
            match verify_rule_bytes(&image, &bytes) {
                Ok(f) => repo.add(f),
                Err(reason) => {
                    janitizer_telemetry::counter_add("rules.integrity_failures", 1);
                    janitizer_telemetry::counter_add("modules.degraded", 1);
                    janitizer_telemetry::event!(
                        "diag.module_degraded",
                        module = name.as_str(),
                        reason = reason.as_str(),
                    );
                    if janitizer_telemetry::flight::armed() {
                        let id = janitizer_telemetry::flight::intern_module(&name);
                        janitizer_telemetry::flight::trip("module-degraded", id, 0, 0);
                    }
                    degraded.push(ModuleDegradation { module: name.clone(), reason });
                }
            }
        }
        degraded.sort_by(|a, b| a.module.cmp(&b.module));
    }
    let mut proc = load_process(store, exe, &opts.load)?;
    let mut tool = JanitizerTool::new(plugin, repo);
    tool.set_degraded_regions(region_map);
    let mut engine_opts = opts.engine.clone();
    engine_opts.profile |= opts.profile;
    engine_opts.traces &= !opts.no_traces;
    if opts.trace_threshold != 0 {
        engine_opts.trace_hot_threshold = opts.trace_threshold;
    }
    let mut engine = Engine::new(engine_opts);
    let fuel = if opts.fuel == 0 { 2_000_000_000 } else { opts.fuel };
    let outcome = engine.run(&mut proc, &mut tool, fuel);
    // Like forensics below, the profile is symbolized while the process
    // (load map, symbol tables) is still alive.
    let profile = engine.take_profile().map(|p| {
        RunProfile::build(
            &p,
            &engine.stats,
            &proc,
            tool.plugin.name(),
            exe,
            proc.cycles,
        )
    });
    // Forensics runs after the engine but while the process (memory,
    // load map) is still alive, so reports see exact violation-time
    // state for halting runs and the final state otherwise.
    let reports = if opts.forensics {
        let name = tool.plugin.name().to_string();
        let tool_ctxs = tool.plugin.take_violation_contexts();
        janitizer_diag::capture_reports(&mut proc, exe, &name, &engine.stats, tool_ctxs)
    } else {
        Vec::new()
    };
    Ok(HybridRun {
        outcome,
        cycles: proc.cycles,
        insns: proc.insns,
        engine: engine.stats.clone(),
        coverage: tool.coverage(),
        stdout: proc.stdout_string(),
        reports,
        profile,
        degraded,
    })
}

/// Runs `exe` natively (no instrumentation) for baseline cycle counts.
///
/// # Errors
///
/// Returns a [`LoadError`] if process setup fails.
pub fn run_native(
    store: &ModuleStore,
    exe: &str,
    load: &LoadOptions,
    fuel: u64,
) -> Result<(janitizer_vm::Exit, Process), LoadError> {
    let mut proc = load_process(store, exe, load)?;
    let fuel = if fuel == 0 { 2_000_000_000 } else { fuel };
    let exit = proc.run_native(fuel);
    Ok((exit, proc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use janitizer_asm::{assemble, AsmOptions};
    use janitizer_isa::Instr;
    use janitizer_link::{link, LinkOptions};

    /// A plugin that counts memory accesses, statically marking them with
    /// rule id 7 and dynamically instrumenting everything.
    struct CountPlugin {
        hits: std::rc::Rc<std::cell::Cell<u64>>,
        dyn_hits: std::rc::Rc<std::cell::Cell<u64>>,
    }

    const MEM_RULE: RuleId = 7;

    impl SecurityPlugin for CountPlugin {
        fn name(&self) -> &str {
            "count"
        }

        fn static_pass(&self, _image: &Image, ctx: &StaticContext) -> Vec<RewriteRule> {
            let mut rules = Vec::new();
            for block in ctx.cfg.blocks.values() {
                for (addr, insn) in &block.insns {
                    if insn.mem_access().is_some() {
                        rules.push(RewriteRule::new(MEM_RULE, block.start, *addr));
                    }
                }
            }
            rules
        }

        fn instrument_static(
            &mut self,
            _proc: &mut Process,
            block: &DecodedBlock,
            rules: &BlockRules<'_>,
        ) -> Vec<TbItem> {
            let mut items = Vec::new();
            for &(pc, insn, next) in &block.insns {
                for r in rules.rules_for(pc) {
                    assert_eq!(r.id, MEM_RULE);
                    let hits = self.hits.clone();
                    items.push(TbItem::Probe(Probe::new(
                        3,
                        Box::new(move |_p| {
                            hits.set(hits.get() + 1);
                            ProbeResult::Ok
                        }),
                    )));
                }
                items.push(TbItem::Guest(pc, insn, next));
            }
            items
        }

        fn instrument_dynamic(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
            let mut items = Vec::new();
            for &(pc, insn, next) in &block.insns {
                if insn.mem_access().is_some() {
                    let hits = self.dyn_hits.clone();
                    items.push(TbItem::Probe(Probe::new(
                        6,
                        Box::new(move |_p| {
                            hits.set(hits.get() + 1);
                            ProbeResult::Ok
                        }),
                    )));
                }
                items.push(TbItem::Guest(pc, insn, next));
            }
            items
        }
    }

    fn test_store(src: &str) -> ModuleStore {
        let o = assemble("t.s", src, &AsmOptions::default()).unwrap();
        let img = link(&[o], &LinkOptions::executable("t")).unwrap();
        let mut store = ModuleStore::new();
        store.add(img);
        store
    }

    const MEM_LOOP: &str = ".section text\n.global _start\n_start:\n\
        la r8, buf\n mov r2, 0\n\
        loop:\n st8 [r8+r2*8], r2\n add r2, 1\n cmp r2, 8\n jne loop\n\
        ld8 r0, [r8+16]\n ret\n\
        .section bss\nbuf: .space 64\n";

    #[test]
    fn static_rules_drive_instrumentation() {
        let hits = std::rc::Rc::new(std::cell::Cell::new(0));
        let dyn_hits = std::rc::Rc::new(std::cell::Cell::new(0));
        let plugin = CountPlugin {
            hits: hits.clone(),
            dyn_hits: dyn_hits.clone(),
        };
        let store = test_store(MEM_LOOP);
        let run = run_hybrid(&store, "t", plugin, &HybridOptions::default()).unwrap();
        assert_eq!(run.outcome.code(), Some(2));
        assert_eq!(hits.get(), 9, "8 stores + 1 load, all statically marked");
        assert_eq!(dyn_hits.get(), 0, "no dynamic fallback for static code");
        assert!(run.coverage.static_blocks > 0);
    }

    #[test]
    fn dynamic_only_routes_everything_to_fallback() {
        let hits = std::rc::Rc::new(std::cell::Cell::new(0));
        let dyn_hits = std::rc::Rc::new(std::cell::Cell::new(0));
        let plugin = CountPlugin {
            hits: hits.clone(),
            dyn_hits: dyn_hits.clone(),
        };
        let store = test_store(MEM_LOOP);
        let opts = HybridOptions {
            dynamic_only: true,
            ..HybridOptions::default()
        };
        let run = run_hybrid(&store, "t", plugin, &opts).unwrap();
        assert_eq!(run.outcome.code(), Some(2));
        assert_eq!(hits.get(), 0);
        assert_eq!(dyn_hits.get(), 9, "same coverage through the fallback");
        assert_eq!(run.coverage.static_blocks, 0);
        assert!(run.coverage.dynamic_blocks > 0);
    }

    #[test]
    fn noop_rules_mark_clean_blocks_as_static() {
        // A block with no memory accesses gets only a no-op rule, but must
        // still classify as statically seen.
        let src = ".section text\n.global _start\n_start:\n mov r0, 4\n ret\n";
        let hits = std::rc::Rc::new(std::cell::Cell::new(0));
        let dyn_hits = std::rc::Rc::new(std::cell::Cell::new(0));
        let plugin = CountPlugin {
            hits: hits.clone(),
            dyn_hits: dyn_hits.clone(),
        };
        let store = test_store(src);
        let run = run_hybrid(&store, "t", plugin, &HybridOptions::default()).unwrap();
        assert_eq!(run.outcome.code(), Some(4));
        assert_eq!(run.coverage.dynamic_blocks, 0, "everything statically seen");
    }

    #[test]
    fn jit_code_goes_to_dynamic_fallback() {
        // Statically analyzed main + JIT-generated code: the generated
        // block must be classified dynamic.
        let src = ".section text\n.global _start\n_start:\n\
             mov r0, 3\n mov r1, 4096\n mov r2, 1\n syscall\n\
             mov r8, r0\n\
             mov r9, 0x20\n st1 [r8], r9\n\
             mov r9, 0x11\n st1 [r8+1], r9\n\
             mov r9, 0\n st4 [r8+2], r9\n\
             mov r9, 0x6c\n st1 [r8+6], r9\n\
             mov r1, r8\n call r8\n mov r0, 5\n ret\n";
        let hits = std::rc::Rc::new(std::cell::Cell::new(0));
        let dyn_hits = std::rc::Rc::new(std::cell::Cell::new(0));
        let plugin = CountPlugin {
            hits: hits.clone(),
            dyn_hits: dyn_hits.clone(),
        };
        let store = test_store(src);
        let run = run_hybrid(&store, "t", plugin, &HybridOptions::default()).unwrap();
        assert_eq!(run.outcome.code(), Some(5));
        assert!(run.coverage.dynamic_blocks >= 1, "the JIT block is dynamic");
        assert!(
            dyn_hits.get() >= 1,
            "the generated ld1 [r1] was instrumented by the fallback"
        );
        assert!(run.coverage.static_blocks > 0);
    }

    #[test]
    fn rule_file_includes_noops_for_all_blocks() {
        let store = test_store(MEM_LOOP);
        let image = store.get("t").unwrap();
        let plugin = CountPlugin {
            hits: Default::default(),
            dyn_hits: Default::default(),
        };
        let file = analyze_statically(&image, &plugin);
        let cfg = analysis::analyze_module(&image);
        let marked: std::collections::HashSet<u64> =
            file.rules.iter().map(|r| r.bb_addr).collect();
        for start in cfg.blocks.keys() {
            assert!(marked.contains(start), "block {start:#x} unmarked");
        }
        // Round-trips through the on-disk format.
        let back = RuleFile::from_bytes(&file.to_bytes()).unwrap();
        assert_eq!(file, back);
    }

    #[test]
    fn hybrid_run_reports_costs() {
        let store = test_store(MEM_LOOP);
        let plugin = CountPlugin {
            hits: Default::default(),
            dyn_hits: Default::default(),
        };
        let run = run_hybrid(&store, "t", plugin, &HybridOptions::default()).unwrap();
        let (native, nproc) = run_native(&store, "t", &LoadOptions::default(), 0).unwrap();
        assert_eq!(native.code(), Some(2));
        assert!(run.cycles > nproc.cycles, "instrumentation costs cycles");
        assert_eq!(run.insns, nproc.insns, "guest work is identical");
        assert!(run.engine.probe_runs >= 9);
    }

    fn count_plugin() -> (
        CountPlugin,
        std::rc::Rc<std::cell::Cell<u64>>,
        std::rc::Rc<std::cell::Cell<u64>>,
    ) {
        let hits = std::rc::Rc::new(std::cell::Cell::new(0));
        let dyn_hits = std::rc::Rc::new(std::cell::Cell::new(0));
        let plugin = CountPlugin {
            hits: hits.clone(),
            dyn_hits: dyn_hits.clone(),
        };
        (plugin, hits, dyn_hits)
    }

    /// The ISSUE's headline scenario: a deliberately corrupted rule file
    /// must not abort the run — the module degrades to dynamic-only mode
    /// and the cause is visible in the run result.
    #[test]
    fn corrupted_rule_file_degrades_to_dynamic_only() {
        let store = test_store(MEM_LOOP);
        let image = store.get("t").unwrap();
        let (probe, ..) = count_plugin();
        let mut bytes = analyze_statically(&image, &probe).to_bytes();
        let at = bytes.len() - 3;
        bytes[at] ^= 0x40; // payload corruption -> checksum mismatch

        let (plugin, hits, dyn_hits) = count_plugin();
        let opts = HybridOptions {
            rule_overrides: HashMap::from([("t".to_string(), bytes)]),
            ..HybridOptions::default()
        };
        let run = run_hybrid(&store, "t", plugin, &opts).unwrap();
        assert_eq!(run.outcome.code(), Some(2), "the run completes end to end");
        assert_eq!(
            run.degraded,
            vec![ModuleDegradation {
                module: "t".into(),
                reason: DegradationReason::ChecksumMismatch,
            }]
        );
        assert_eq!(run.coverage.static_blocks, 0, "no rules survive");
        assert_eq!(hits.get(), 0);
        assert_eq!(dyn_hits.get(), 9, "conservative fallback covers everything");
    }

    #[test]
    fn stale_rule_version_degrades() {
        let store = test_store(MEM_LOOP);
        let image = store.get("t").unwrap();
        let (probe, ..) = count_plugin();
        let mut bytes = analyze_statically(&image, &probe).to_bytes();
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes()); // version 1 = stale

        let (plugin, ..) = count_plugin();
        let opts = HybridOptions {
            rule_overrides: HashMap::from([("t".to_string(), bytes)]),
            ..HybridOptions::default()
        };
        let run = run_hybrid(&store, "t", plugin, &opts).unwrap();
        assert_eq!(run.outcome.code(), Some(2));
        assert_eq!(run.degraded[0].reason, DegradationReason::StaleVersion);
    }

    #[test]
    fn wrong_build_fingerprint_degrades() {
        let store = test_store(MEM_LOOP);
        let image = store.get("t").unwrap();
        let (probe, ..) = count_plugin();
        let mut file = analyze_statically(&image, &probe);
        file.fingerprint ^= 1; // rules "from another build"

        let (plugin, ..) = count_plugin();
        let opts = HybridOptions {
            rule_overrides: HashMap::from([("t".to_string(), file.to_bytes())]),
            ..HybridOptions::default()
        };
        let run = run_hybrid(&store, "t", plugin, &opts).unwrap();
        assert_eq!(run.outcome.code(), Some(2));
        assert_eq!(run.degraded[0].reason, DegradationReason::FingerprintMismatch);
    }

    #[test]
    fn valid_override_is_accepted_verbatim() {
        let store = test_store(MEM_LOOP);
        let image = store.get("t").unwrap();
        let (probe, ..) = count_plugin();
        let bytes = analyze_statically(&image, &probe).to_bytes();

        let (plugin, hits, dyn_hits) = count_plugin();
        let opts = HybridOptions {
            rule_overrides: HashMap::from([("t".to_string(), bytes)]),
            ..HybridOptions::default()
        };
        let run = run_hybrid(&store, "t", plugin, &opts).unwrap();
        assert_eq!(run.outcome.code(), Some(2));
        assert!(run.degraded.is_empty());
        assert_eq!(hits.get(), 9, "verified rules drive static instrumentation");
        assert_eq!(dyn_hits.get(), 0);
    }

    #[test]
    fn fault_injection_is_deterministic_and_never_aborts() {
        let run_once = |seed: u64| {
            let store = test_store(MEM_LOOP);
            let (plugin, ..) = count_plugin();
            let opts = HybridOptions {
                inject_faults: Some(FaultInjection { seed, rate: 1.0 }),
                ..HybridOptions::default()
            };
            let run = run_hybrid(&store, "t", plugin, &opts).unwrap();
            assert_eq!(run.outcome.code(), Some(2), "faults never break the guest");
            run.degraded
        };
        for seed in 0..8 {
            assert_eq!(run_once(seed), run_once(seed), "same seed, same outcome");
        }
        // At rate 1.0 every module's rules are mutated; across a handful
        // of seeds at least one mutation must actually break verification.
        assert!((0..8).any(|s| !run_once(s).is_empty()));
    }

    #[test]
    fn coverage_fraction_math() {
        let c = CoverageStats {
            static_blocks: 96,
            dynamic_blocks: 4,
            region_fallback_blocks: 0,
        };
        assert!((c.dynamic_fraction() - 4.0).abs() < 1e-9);
        assert_eq!(CoverageStats::default().dynamic_fraction(), 0.0);
    }

    /// Sanity: TbItem::Guest round-trips the instructions the block had.
    #[test]
    fn null_like_plugin_preserves_program() {
        struct PassThrough;
        impl SecurityPlugin for PassThrough {
            fn name(&self) -> &str {
                "pass"
            }
            fn static_pass(&self, _i: &Image, _c: &StaticContext) -> Vec<RewriteRule> {
                Vec::new()
            }
            fn instrument_static(
                &mut self,
                _p: &mut Process,
                block: &DecodedBlock,
                _r: &BlockRules<'_>,
            ) -> Vec<TbItem> {
                block
                    .insns
                    .iter()
                    .map(|&(pc, i, n)| TbItem::Guest(pc, i, n))
                    .collect()
            }
            fn instrument_dynamic(&mut self, _p: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
                block
                    .insns
                    .iter()
                    .map(|&(pc, i, n)| TbItem::Guest(pc, i, n))
                    .collect()
            }
        }
        let store = test_store(MEM_LOOP);
        let run = run_hybrid(&store, "t", PassThrough, &HybridOptions::default()).unwrap();
        assert_eq!(run.outcome.code(), Some(2));
        // Every instruction in a guest item is a real decodable one.
        let _ = Instr::Nop;
    }
}
