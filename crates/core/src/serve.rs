//! # Supervised analysis service
//!
//! The serving half of analyze-once/distribute-many: clients ask the
//! [`AnalysisService`] for a module's rules and *always* get a usable
//! reply — rules (from memory, from the persistent store, or freshly
//! analyzed) or an explicit degradation to dynamic-only. The supervisor
//! wraps every analysis in:
//!
//! * **admission control** — a FIFO ticket gate bounds in-flight
//!   analyses, so a burst of clients queues deterministically instead of
//!   oversubscribing the analyzer;
//! * **a deterministic deadline** — the per-module work budget
//!   ([`janitizer_analysis::budget`]) replaces wall-clock timeouts: an
//!   over-budget module bails to conservative facts at a reproducible
//!   point, the partial result is discarded (never cached, never
//!   persisted), and the client sees
//!   [`DegradationReason::AnalysisTimeout`];
//! * **panic isolation** — a plugin static pass that panics is caught
//!   (`catch_unwind`), counted (`serve.panics_isolated`), retried on the
//!   bounded deterministic backoff schedule, and finally degraded to
//!   [`DegradationReason::AnalysisPanic`];
//! * **store-failure fallback** — persistent-store I/O errors never
//!   reach the client: the reply carries in-process rules plus
//!   [`DegradationReason::StoreFailure`] so the operator sees the store
//!   is sick while the run stays correct.
//!
//! Every failure path is observable: `serve.{served,retries,timeouts,
//! panics_isolated,degraded}` counters plus `diag.analysis_*` events.

use crate::{DegradationReason, FillSource, ModuleDegradation, RuleCache, SecurityPlugin};
use janitizer_analysis::budget;
use janitizer_obj::Image;
use janitizer_rules::RuleFile;
use janitizer_store::RetryPolicy;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Supervision knobs of an [`AnalysisService`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceOptions {
    /// Per-request analysis work budget (units of block visits);
    /// [`budget::UNLIMITED`] disarms the deadline.
    pub budget_units: u64,
    /// Retry schedule for panicking analyses.
    pub retry: RetryPolicy,
    /// Maximum concurrently running analyses; further requests queue in
    /// FIFO ticket order.
    pub max_in_flight: usize,
}

impl Default for ServiceOptions {
    fn default() -> ServiceOptions {
        ServiceOptions {
            budget_units: budget::UNLIMITED,
            retry: RetryPolicy::default(),
            max_in_flight: 4,
        }
    }
}

/// A served analysis request. Never an error: `rules` is present unless
/// the module was degraded to dynamic-only, and `degradation` names the
/// fidelity loss when there was one (note [`DegradationReason::StoreFailure`]
/// carries rules *and* a degradation — the in-process fallback worked,
/// the store did not).
#[derive(Clone, Debug)]
pub struct ServeReply {
    /// The module's rule file; `None` means run the module dynamic-only.
    pub rules: Option<Arc<RuleFile>>,
    /// Set when the request was served at reduced fidelity.
    pub degradation: Option<DegradationReason>,
    /// Where the rules came from (when they were served).
    pub source: Option<FillSource>,
}

/// Counter snapshot of an [`AnalysisService`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered with rules.
    pub served: u64,
    /// Requests degraded to dynamic-only (timeout or panic).
    pub degraded: u64,
    /// Budget overruns converted to [`DegradationReason::AnalysisTimeout`].
    pub timeouts: u64,
    /// Plugin panics caught by the supervisor.
    pub panics_isolated: u64,
    /// Panic retries taken on the backoff schedule.
    pub retries: u64,
    /// Store I/O failures absorbed into [`DegradationReason::StoreFailure`].
    pub store_failures: u64,
    /// High-water mark of concurrently running analyses.
    pub peak_in_flight: u64,
}

/// FIFO ticket gate: requests are admitted strictly in arrival order,
/// at most `max` running at once. Deterministic by construction — the
/// admission order never depends on scheduler whims, only on ticket
/// numbers.
struct Gate {
    max: usize,
    /// `(next ticket to hand out, next ticket to admit, running now)`.
    state: Mutex<(u64, u64, usize)>,
    cv: Condvar,
}

struct Permit<'a> {
    gate: &'a Gate,
}

impl Gate {
    fn new(max: usize) -> Gate {
        Gate {
            max: max.max(1),
            state: Mutex::new((0, 0, 0)),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) -> Permit<'_> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let ticket = s.0;
        s.0 += 1;
        while !(ticket == s.1 && s.2 < self.max) {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s.1 += 1;
        s.2 += 1;
        // Tickets behind us may also be admissible now (capacity > 1).
        self.cv.notify_all();
        Permit { gate: self }
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut s = self.gate.state.lock().unwrap_or_else(|e| e.into_inner());
        s.2 -= 1;
        drop(s);
        self.gate.cv.notify_all();
    }
}

/// The supervised analysis front-end over a (possibly store-backed)
/// [`RuleCache`]. `Sync`: one service instance is shared by all client
/// threads.
pub struct AnalysisService {
    cache: Arc<RuleCache>,
    opts: ServiceOptions,
    gate: Gate,
    served: AtomicU64,
    degraded_n: AtomicU64,
    timeouts: AtomicU64,
    panics: AtomicU64,
    retries: AtomicU64,
    store_failures: AtomicU64,
    in_flight: AtomicU64,
    peak_in_flight: AtomicU64,
    degraded: Mutex<Vec<ModuleDegradation>>,
}

impl AnalysisService {
    /// Creates a service over `cache` with the given supervision options.
    pub fn new(cache: Arc<RuleCache>, opts: ServiceOptions) -> AnalysisService {
        AnalysisService {
            gate: Gate::new(opts.max_in_flight),
            cache,
            opts,
            served: AtomicU64::new(0),
            degraded_n: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            store_failures: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            peak_in_flight: AtomicU64::new(0),
            degraded: Mutex::new(Vec::new()),
        }
    }

    /// The cache the service serves from.
    pub fn cache(&self) -> &Arc<RuleCache> {
        &self.cache
    }

    /// Serves one analysis request under full supervision. Infallible by
    /// contract: every failure mode becomes a degradation in the reply.
    pub fn request(
        &self,
        image: &Arc<Image>,
        plugin: &dyn SecurityPlugin,
        emit_noop_rules: bool,
    ) -> ServeReply {
        let _permit = self.gate.acquire();
        let now = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_in_flight.fetch_max(now, Ordering::Relaxed);
        let reply = self.request_admitted(image, plugin, emit_noop_rules);
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        if let Some(reason) = reply.degradation {
            self.degraded_n.fetch_add(1, Ordering::Relaxed);
            janitizer_telemetry::counter_add("serve.degraded", 1);
            self.degraded
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(ModuleDegradation {
                    module: image.name.clone(),
                    reason,
                });
        }
        if reply.rules.is_some() {
            self.served.fetch_add(1, Ordering::Relaxed);
            janitizer_telemetry::counter_add("serve.served", 1);
        }
        reply
    }

    fn request_admitted(
        &self,
        image: &Arc<Image>,
        plugin: &dyn SecurityPlugin,
        emit_noop_rules: bool,
    ) -> ServeReply {
        let mut attempt = 0u32;
        loop {
            budget::set_budget(self.opts.budget_units);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.cache.get_or_analyze_traced(image, plugin, emit_noop_rules)
            }));
            let timed_out = budget::overrun();
            budget::clear_budget();
            match outcome {
                Ok((file, source)) => {
                    if timed_out {
                        // The budget ran out mid-analysis; the cache has
                        // already discarded (not memoized, not persisted)
                        // the truncated result — degrade, don't serve it.
                        self.timeouts.fetch_add(1, Ordering::Relaxed);
                        janitizer_telemetry::counter_add("serve.timeouts", 1);
                        janitizer_telemetry::event!(
                            "diag.analysis_timeout",
                            module = image.name.as_str(),
                        );
                        drop(file);
                        return ServeReply {
                            rules: None,
                            degradation: Some(DegradationReason::AnalysisTimeout),
                            source: None,
                        };
                    }
                    let degradation = match source {
                        FillSource::Analyzed { store_failed: true } => {
                            self.store_failures.fetch_add(1, Ordering::Relaxed);
                            janitizer_telemetry::counter_add("serve.store_failures", 1);
                            janitizer_telemetry::event!(
                                "diag.store_degraded",
                                module = image.name.as_str(),
                            );
                            Some(DegradationReason::StoreFailure)
                        }
                        _ => None,
                    };
                    return ServeReply {
                        rules: Some(file),
                        degradation,
                        source: Some(source),
                    };
                }
                Err(_) => {
                    self.panics.fetch_add(1, Ordering::Relaxed);
                    janitizer_telemetry::counter_add("serve.panics_isolated", 1);
                    janitizer_telemetry::event!(
                        "diag.analysis_panic",
                        module = image.name.as_str(),
                        attempt = u64::from(attempt),
                    );
                    if attempt < self.opts.retry.attempts {
                        attempt += 1;
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        janitizer_telemetry::counter_add("serve.retries", 1);
                        janitizer_telemetry::counter_add(
                            "serve.backoff_units",
                            self.opts.retry.backoff_units(attempt),
                        );
                        continue;
                    }
                    return ServeReply {
                        rules: None,
                        degradation: Some(DegradationReason::AnalysisPanic),
                        source: None,
                    };
                }
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            served: self.served.load(Ordering::Relaxed),
            degraded: self.degraded_n.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            panics_isolated: self.panics.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            store_failures: self.store_failures.load(Ordering::Relaxed),
            peak_in_flight: self.peak_in_flight.load(Ordering::Relaxed),
        }
    }

    /// The degradations recorded so far, sorted by module then reason
    /// label for deterministic reporting.
    pub fn degradations(&self) -> Vec<ModuleDegradation> {
        let mut v = self
            .degraded
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        v.sort_by(|a, b| {
            a.module
                .cmp(&b.module)
                .then(a.reason.as_str().cmp(b.reason.as_str()))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockRules, StaticContext};
    use janitizer_dbt::{DecodedBlock, TbItem};
    use janitizer_rules::RewriteRule;
    use janitizer_vm::Process;

    /// Minimal plugin whose static pass can be made hostile on demand.
    struct ToyPlugin {
        name: &'static str,
        panics_left: std::cell::Cell<u32>,
    }

    impl ToyPlugin {
        fn new(name: &'static str) -> ToyPlugin {
            ToyPlugin {
                name,
                panics_left: std::cell::Cell::new(0),
            }
        }
    }

    impl SecurityPlugin for ToyPlugin {
        fn name(&self) -> &str {
            self.name
        }
        fn static_pass(&self, _image: &Image, ctx: &StaticContext) -> Vec<RewriteRule> {
            let left = self.panics_left.get();
            if left > 0 {
                self.panics_left.set(left - 1);
                panic!("injected static-pass panic");
            }
            ctx.cfg
                .blocks
                .keys()
                .map(|&b| RewriteRule::new(7, b, b))
                .collect()
        }
        fn instrument_static(
            &mut self,
            _proc: &mut Process,
            _block: &DecodedBlock,
            _rules: &BlockRules<'_>,
        ) -> Vec<TbItem> {
            Vec::new()
        }
        fn instrument_dynamic(&mut self, _proc: &mut Process, _block: &DecodedBlock) -> Vec<TbItem> {
            Vec::new()
        }
    }

    fn toy_image() -> Arc<Image> {
        let obj = janitizer_asm::assemble(
            "s.s",
            ".section text\n.global _start\n_start:\n mov r0, 0\n\
             loop:\n add r0, 1\n cmp r0, 4\n jne loop\n ret\n",
            &janitizer_asm::AsmOptions::default(),
        )
        .unwrap();
        Arc::new(
            janitizer_link::link(&[obj], &janitizer_link::LinkOptions::executable("s")).unwrap(),
        )
    }

    /// Runs `f` with the default panic hook silenced, restoring it after
    /// (panics are the *expected* input of these tests).
    fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    #[test]
    fn healthy_request_serves_rules() {
        let svc = AnalysisService::new(Arc::new(RuleCache::new()), ServiceOptions::default());
        let image = toy_image();
        let reply = svc.request(&image, &ToyPlugin::new("toy"), true);
        assert!(reply.degradation.is_none());
        let rules = reply.rules.expect("served");
        assert!(!rules.rules.is_empty());
        assert_eq!(reply.source, Some(FillSource::Analyzed { store_failed: false }));
        // Second request is a memory hit with identical bytes.
        let again = svc.request(&image, &ToyPlugin::new("toy"), true);
        assert_eq!(again.source, Some(FillSource::Memory));
        assert_eq!(again.rules.unwrap().to_bytes(), rules.to_bytes());
        let s = svc.stats();
        assert_eq!((s.served, s.degraded), (2, 0));
    }

    #[test]
    fn transient_panic_is_isolated_and_retried() {
        let svc = AnalysisService::new(
            Arc::new(RuleCache::new()),
            ServiceOptions {
                retry: RetryPolicy { attempts: 2, seed: 5 },
                ..ServiceOptions::default()
            },
        );
        let image = toy_image();
        let plugin = ToyPlugin::new("toy");
        plugin.panics_left.set(1);
        let reply = with_quiet_panics(|| svc.request(&image, &plugin, true));
        assert!(reply.rules.is_some(), "retry after the isolated panic served");
        assert!(reply.degradation.is_none());
        let s = svc.stats();
        assert_eq!((s.panics_isolated, s.retries), (1, 1));
    }

    #[test]
    fn persistent_panic_degrades_not_errors() {
        let svc = AnalysisService::new(
            Arc::new(RuleCache::new()),
            ServiceOptions {
                retry: RetryPolicy { attempts: 2, seed: 5 },
                ..ServiceOptions::default()
            },
        );
        let image = toy_image();
        let plugin = ToyPlugin::new("toy");
        plugin.panics_left.set(u32::MAX);
        let reply = with_quiet_panics(|| svc.request(&image, &plugin, true));
        assert!(reply.rules.is_none());
        assert_eq!(reply.degradation, Some(DegradationReason::AnalysisPanic));
        let s = svc.stats();
        assert_eq!(s.panics_isolated, 3, "initial attempt + 2 retries");
        assert_eq!(s.degraded, 1);
        // The service itself is still healthy afterwards.
        let ok = svc.request(&image, &ToyPlugin::new("toy"), true);
        assert!(ok.rules.is_some());
    }

    #[test]
    fn budget_overrun_degrades_to_timeout_and_is_not_cached() {
        let cache = Arc::new(RuleCache::new());
        let svc = AnalysisService::new(
            Arc::clone(&cache),
            ServiceOptions {
                budget_units: 1,
                ..ServiceOptions::default()
            },
        );
        let image = toy_image();
        let reply = svc.request(&image, &ToyPlugin::new("toy"), true);
        assert!(reply.rules.is_none());
        assert_eq!(reply.degradation, Some(DegradationReason::AnalysisTimeout));
        assert_eq!(svc.stats().timeouts, 1);
        // Nothing was memoized: an unbudgeted service over the same cache
        // re-analyzes and serves fine.
        let svc2 = AnalysisService::new(cache, ServiceOptions::default());
        let ok = svc2.request(&image, &ToyPlugin::new("toy"), true);
        assert_eq!(ok.source, Some(FillSource::Analyzed { store_failed: false }));
        assert!(ok.rules.is_some());
    }

    #[test]
    fn store_failure_serves_in_process_rules_with_degradation() {
        let dir = janitizer_store::scratch_dir("serve-storefail");
        let store = janitizer_store::RuleStore::open_with(
            &dir,
            RetryPolicy { attempts: 0, seed: 0 },
            janitizer_store::FailurePlan {
                transient_write_failures: u64::MAX / 2,
                crash_after_commits: None,
            },
        )
        .unwrap();
        let svc = AnalysisService::new(
            Arc::new(RuleCache::with_store(Arc::new(store))),
            ServiceOptions::default(),
        );
        let image = toy_image();
        let reply = svc.request(&image, &ToyPlugin::new("toy"), true);
        assert!(reply.rules.is_some(), "in-process fallback still serves");
        assert_eq!(reply.degradation, Some(DegradationReason::StoreFailure));
        assert_eq!(svc.stats().store_failures, 1);
        assert_eq!(
            svc.degradations(),
            vec![ModuleDegradation {
                module: "s".into(),
                reason: DegradationReason::StoreFailure,
            }]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admission_gate_bounds_in_flight() {
        let svc = Arc::new(AnalysisService::new(
            Arc::new(RuleCache::new()),
            ServiceOptions {
                max_in_flight: 2,
                ..ServiceOptions::default()
            },
        ));
        std::thread::scope(|scope| {
            for i in 0..8 {
                let svc = Arc::clone(&svc);
                scope.spawn(move || {
                    // Distinct plugin keys force real (non-memoized) work.
                    let name: &'static str =
                        Box::leak(format!("toy{i}").into_boxed_str());
                    let image = toy_image();
                    let reply = svc.request(&image, &ToyPlugin::new(name), true);
                    assert!(reply.rules.is_some());
                });
            }
        });
        let s = svc.stats();
        assert_eq!(s.served, 8);
        assert!(s.peak_in_flight <= 2, "gate held: peak {}", s.peak_in_flight);
    }
}
