//! # Supervised analysis service
//!
//! The serving half of analyze-once/distribute-many: clients ask the
//! [`AnalysisService`] for a module's rules and *always* get a usable
//! reply — rules (from memory, from the persistent store, or freshly
//! analyzed) or an explicit degradation to dynamic-only. The supervisor
//! wraps every analysis in:
//!
//! * **admission control** — a FIFO ticket gate bounds in-flight
//!   analyses, so a burst of clients queues deterministically instead of
//!   oversubscribing the analyzer;
//! * **a deterministic deadline** — the per-module work budget
//!   ([`janitizer_analysis::budget`]) replaces wall-clock timeouts: an
//!   over-budget module bails to conservative facts at a reproducible
//!   point, the partial result is discarded (never cached, never
//!   persisted), and the client sees
//!   [`DegradationReason::AnalysisTimeout`];
//! * **panic isolation** — a plugin static pass that panics is caught
//!   (`catch_unwind`), counted (`serve.panics_isolated`), retried on the
//!   bounded deterministic backoff schedule, and finally degraded to
//!   [`DegradationReason::AnalysisPanic`];
//! * **store-failure fallback** — persistent-store I/O errors never
//!   reach the client: the reply carries in-process rules plus
//!   [`DegradationReason::StoreFailure`] so the operator sees the store
//!   is sick while the run stays correct.
//!
//! Every failure path is observable: `serve.{served,retries,timeouts,
//! panics_isolated,degraded}` counters plus `diag.analysis_*` events.

use crate::{DegradationReason, FillSource, ModuleDegradation, RuleCache, SecurityPlugin};
use janitizer_analysis::budget;
use janitizer_obj::Image;
use janitizer_rules::RuleFile;
use janitizer_store::RetryPolicy;
use janitizer_telemetry::json::Json;
use janitizer_telemetry::{flight, Histogram, Registry, WindowedHistogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Supervision knobs of an [`AnalysisService`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceOptions {
    /// Per-request analysis work budget (units of block visits);
    /// [`budget::UNLIMITED`] disarms the deadline.
    pub budget_units: u64,
    /// Retry schedule for panicking analyses.
    pub retry: RetryPolicy,
    /// Maximum concurrently running analyses; further requests queue in
    /// FIFO ticket order.
    pub max_in_flight: usize,
}

impl Default for ServiceOptions {
    fn default() -> ServiceOptions {
        ServiceOptions {
            budget_units: budget::UNLIMITED,
            retry: RetryPolicy::default(),
            max_in_flight: 4,
        }
    }
}

/// A served analysis request. Never an error: `rules` is present unless
/// the module was degraded to dynamic-only, and `degradation` names the
/// fidelity loss when there was one (note [`DegradationReason::StoreFailure`]
/// carries rules *and* a degradation — the in-process fallback worked,
/// the store did not).
#[derive(Clone, Debug)]
pub struct ServeReply {
    /// The module's rule file; `None` means run the module dynamic-only.
    pub rules: Option<Arc<RuleFile>>,
    /// Set when the request was served at reduced fidelity.
    pub degradation: Option<DegradationReason>,
    /// Where the rules came from (when they were served).
    pub source: Option<FillSource>,
}

/// Counter snapshot of an [`AnalysisService`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered with rules.
    pub served: u64,
    /// Requests degraded to dynamic-only (timeout or panic).
    pub degraded: u64,
    /// Budget overruns converted to [`DegradationReason::AnalysisTimeout`].
    pub timeouts: u64,
    /// Plugin panics caught by the supervisor.
    pub panics_isolated: u64,
    /// Panic retries taken on the backoff schedule.
    pub retries: u64,
    /// Store I/O failures absorbed into [`DegradationReason::StoreFailure`].
    pub store_failures: u64,
    /// High-water mark of concurrently running analyses.
    pub peak_in_flight: u64,
}

/// Request-lifecycle metrics, split by determinism class.
///
/// The **deterministic** half depends only on *what* was requested,
/// never on scheduling: total requests, per-[`FillSource`] provenance
/// (the `RuleCache` analyzes each key exactly once, so the multiset of
/// sources is fixed at any thread count) and the histogram of analysis
/// work units per fresh analysis (units, not wall time). It exports as
/// `janitizer.serve-metrics/v1` and is byte-parity-tested across
/// `--threads`.
///
/// The **host** half is wall-clock and scheduling truth — queue depth
/// high-water, queue-wait and end-to-end request latency windows — and
/// is exported separately so the deterministic artifact stays
/// diff-stable.
struct ServiceMetrics {
    requests: AtomicU64,
    src_memory: AtomicU64,
    src_store: AtomicU64,
    src_analyzed: AtomicU64,
    src_store_failed: AtomicU64,
    analyze_units: Mutex<Histogram>,
    queue_waiting: AtomicU64,
    queue_peak: AtomicU64,
    queue_wait_ns: Mutex<WindowedHistogram>,
    request_wall_ns: Mutex<WindowedHistogram>,
}

/// Window size for host latency histograms: big enough for a full
/// figure-suite serve run, small enough to stay resident.
const LATENCY_WINDOW: usize = 1024;

impl Default for ServiceMetrics {
    fn default() -> ServiceMetrics {
        ServiceMetrics {
            requests: AtomicU64::new(0),
            src_memory: AtomicU64::new(0),
            src_store: AtomicU64::new(0),
            src_analyzed: AtomicU64::new(0),
            src_store_failed: AtomicU64::new(0),
            analyze_units: Mutex::new(Histogram::default()),
            queue_waiting: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            queue_wait_ns: Mutex::new(WindowedHistogram::new(LATENCY_WINDOW)),
            request_wall_ns: Mutex::new(WindowedHistogram::new(LATENCY_WINDOW)),
        }
    }
}

/// FIFO ticket gate: requests are admitted strictly in arrival order,
/// at most `max` running at once. Deterministic by construction — the
/// admission order never depends on scheduler whims, only on ticket
/// numbers.
struct Gate {
    max: usize,
    /// `(next ticket to hand out, next ticket to admit, running now)`.
    state: Mutex<(u64, u64, usize)>,
    cv: Condvar,
}

struct Permit<'a> {
    gate: &'a Gate,
}

impl Gate {
    fn new(max: usize) -> Gate {
        Gate {
            max: max.max(1),
            state: Mutex::new((0, 0, 0)),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) -> Permit<'_> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let ticket = s.0;
        s.0 += 1;
        while !(ticket == s.1 && s.2 < self.max) {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s.1 += 1;
        s.2 += 1;
        // Tickets behind us may also be admissible now (capacity > 1).
        self.cv.notify_all();
        Permit { gate: self }
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut s = self.gate.state.lock().unwrap_or_else(|e| e.into_inner());
        s.2 -= 1;
        drop(s);
        self.gate.cv.notify_all();
    }
}

/// The supervised analysis front-end over a (possibly store-backed)
/// [`RuleCache`]. `Sync`: one service instance is shared by all client
/// threads.
pub struct AnalysisService {
    cache: Arc<RuleCache>,
    opts: ServiceOptions,
    gate: Gate,
    served: AtomicU64,
    degraded_n: AtomicU64,
    timeouts: AtomicU64,
    panics: AtomicU64,
    retries: AtomicU64,
    store_failures: AtomicU64,
    in_flight: AtomicU64,
    peak_in_flight: AtomicU64,
    degraded: Mutex<Vec<ModuleDegradation>>,
    metrics: ServiceMetrics,
}

impl AnalysisService {
    /// Creates a service over `cache` with the given supervision options.
    pub fn new(cache: Arc<RuleCache>, opts: ServiceOptions) -> AnalysisService {
        AnalysisService {
            gate: Gate::new(opts.max_in_flight),
            cache,
            opts,
            served: AtomicU64::new(0),
            degraded_n: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            store_failures: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            peak_in_flight: AtomicU64::new(0),
            degraded: Mutex::new(Vec::new()),
            metrics: ServiceMetrics::default(),
        }
    }

    /// The cache the service serves from.
    pub fn cache(&self) -> &Arc<RuleCache> {
        &self.cache
    }

    /// Serves one analysis request under full supervision. Infallible by
    /// contract: every failure mode becomes a degradation in the reply.
    pub fn request(
        &self,
        image: &Arc<Image>,
        plugin: &dyn SecurityPlugin,
        emit_noop_rules: bool,
    ) -> ServeReply {
        // Lifecycle: arrive → queue-wait → admit → analyze → reply.
        let arrived = Instant::now();
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let waiting = self.metrics.queue_waiting.fetch_add(1, Ordering::Relaxed) + 1;
        self.metrics.queue_peak.fetch_max(waiting, Ordering::Relaxed);
        janitizer_telemetry::gauge_add("serve.queue_depth", 1);
        let _permit = self.gate.acquire();
        self.metrics.queue_waiting.fetch_sub(1, Ordering::Relaxed);
        janitizer_telemetry::gauge_add("serve.queue_depth", -1);
        let queue_wait_ns = arrived.elapsed().as_nanos() as u64;
        flight::record(
            "serve.admit",
            flight::NO_MODULE,
            queue_wait_ns,
            waiting,
        );
        let now = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_in_flight.fetch_max(now, Ordering::Relaxed);
        let (reply, analyze_units) = self.request_admitted(image, plugin, emit_noop_rules);
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        match reply.source {
            Some(FillSource::Memory) => {
                self.metrics.src_memory.fetch_add(1, Ordering::Relaxed);
                janitizer_telemetry::counter_add("serve.src.memory", 1);
            }
            Some(FillSource::Store) => {
                self.metrics.src_store.fetch_add(1, Ordering::Relaxed);
                janitizer_telemetry::counter_add("serve.src.store", 1);
            }
            Some(FillSource::Analyzed { store_failed }) => {
                self.metrics.src_analyzed.fetch_add(1, Ordering::Relaxed);
                janitizer_telemetry::counter_add("serve.src.analyzed", 1);
                if store_failed {
                    self.metrics.src_store_failed.fetch_add(1, Ordering::Relaxed);
                }
                // Deterministic cost sample: work units the fresh
                // analysis consumed (module-dependent, never
                // scheduling-dependent).
                self.metrics
                    .analyze_units
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .record(analyze_units);
                janitizer_telemetry::histogram_record("serve.analyze_units", analyze_units);
            }
            None => {}
        }
        if let Some(reason) = reply.degradation {
            self.degraded_n.fetch_add(1, Ordering::Relaxed);
            janitizer_telemetry::counter_add("serve.degraded", 1);
            self.degraded
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(ModuleDegradation {
                    module: image.name.clone(),
                    reason,
                });
            if flight::armed() {
                let id = flight::intern_module(&image.name);
                flight::trip("serve-degraded", id, reason as u64, 0);
            }
        }
        if reply.rules.is_some() {
            self.served.fetch_add(1, Ordering::Relaxed);
            janitizer_telemetry::counter_add("serve.served", 1);
        }
        let wall_ns = arrived.elapsed().as_nanos() as u64;
        {
            let mut w = self
                .metrics
                .queue_wait_ns
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            w.record(queue_wait_ns);
        }
        {
            let mut w = self
                .metrics
                .request_wall_ns
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            w.record(wall_ns);
        }
        janitizer_telemetry::histogram_record("serve.request_wall_ns", wall_ns);
        flight::record("serve.reply", flight::NO_MODULE, wall_ns, analyze_units);
        reply
    }

    fn request_admitted(
        &self,
        image: &Arc<Image>,
        plugin: &dyn SecurityPlugin,
        emit_noop_rules: bool,
    ) -> (ServeReply, u64) {
        let mut attempt = 0u32;
        loop {
            budget::set_budget(self.opts.budget_units);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.cache.get_or_analyze_traced(image, plugin, emit_noop_rules)
            }));
            let timed_out = budget::overrun();
            let spent_units = budget::spent();
            budget::clear_budget();
            match outcome {
                Ok((file, source)) => {
                    if timed_out {
                        // The budget ran out mid-analysis; the cache has
                        // already discarded (not memoized, not persisted)
                        // the truncated result — degrade, don't serve it.
                        self.timeouts.fetch_add(1, Ordering::Relaxed);
                        janitizer_telemetry::counter_add("serve.timeouts", 1);
                        janitizer_telemetry::event!(
                            "diag.analysis_timeout",
                            module = image.name.as_str(),
                        );
                        flight::record("serve.timeout", flight::NO_MODULE, spent_units, 0);
                        drop(file);
                        return (
                            ServeReply {
                                rules: None,
                                degradation: Some(DegradationReason::AnalysisTimeout),
                                source: None,
                            },
                            spent_units,
                        );
                    }
                    let degradation = match source {
                        FillSource::Analyzed { store_failed: true } => {
                            self.store_failures.fetch_add(1, Ordering::Relaxed);
                            janitizer_telemetry::counter_add("serve.store_failures", 1);
                            janitizer_telemetry::event!(
                                "diag.store_degraded",
                                module = image.name.as_str(),
                            );
                            Some(DegradationReason::StoreFailure)
                        }
                        _ => None,
                    };
                    return (
                        ServeReply {
                            rules: Some(file),
                            degradation,
                            source: Some(source),
                        },
                        spent_units,
                    );
                }
                Err(_) => {
                    self.panics.fetch_add(1, Ordering::Relaxed);
                    janitizer_telemetry::counter_add("serve.panics_isolated", 1);
                    janitizer_telemetry::event!(
                        "diag.analysis_panic",
                        module = image.name.as_str(),
                        attempt = u64::from(attempt),
                    );
                    flight::record(
                        "serve.panic",
                        flight::NO_MODULE,
                        u64::from(attempt),
                        spent_units,
                    );
                    if attempt < self.opts.retry.attempts {
                        attempt += 1;
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        janitizer_telemetry::counter_add("serve.retries", 1);
                        janitizer_telemetry::counter_add(
                            "serve.backoff_units",
                            self.opts.retry.backoff_units(attempt),
                        );
                        continue;
                    }
                    return (
                        ServeReply {
                            rules: None,
                            degradation: Some(DegradationReason::AnalysisPanic),
                            source: None,
                        },
                        spent_units,
                    );
                }
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            served: self.served.load(Ordering::Relaxed),
            degraded: self.degraded_n.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            panics_isolated: self.panics.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            store_failures: self.store_failures.load(Ordering::Relaxed),
            peak_in_flight: self.peak_in_flight.load(Ordering::Relaxed),
        }
    }

    /// The deterministic metrics as a [`Registry`] (counters and the
    /// analyze-cost histogram only — byte-stable across thread counts
    /// and hosts), ready for the OpenMetrics exporter.
    pub fn metrics_registry(&self) -> Registry {
        let mut r = Registry::new();
        let s = self.stats();
        r.counter_add("serve.requests", self.metrics.requests.load(Ordering::Relaxed));
        r.counter_add("serve.served", s.served);
        r.counter_add("serve.degraded", s.degraded);
        r.counter_add("serve.timeouts", s.timeouts);
        r.counter_add("serve.panics_isolated", s.panics_isolated);
        r.counter_add("serve.retries", s.retries);
        r.counter_add("serve.store_failures", s.store_failures);
        r.counter_add("serve.src.memory", self.metrics.src_memory.load(Ordering::Relaxed));
        r.counter_add("serve.src.store", self.metrics.src_store.load(Ordering::Relaxed));
        r.counter_add(
            "serve.src.analyzed",
            self.metrics.src_analyzed.load(Ordering::Relaxed),
        );
        r.counter_add(
            "serve.src.analyzed_store_failed",
            self.metrics.src_store_failed.load(Ordering::Relaxed),
        );
        let h = self
            .metrics
            .analyze_units
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        if h.count > 0 {
            r.histograms.insert("serve.analyze_units".to_string(), h);
        }
        r
    }

    /// The host-side metrics as a [`Registry`]: queue-depth and
    /// in-flight gauges plus wall-clock latency histograms. Wall truth,
    /// not model truth — never part of deterministic artifacts.
    pub fn host_metrics_registry(&self) -> Registry {
        let mut r = Registry::new();
        r.gauge_set(
            "serve.queue_depth",
            self.metrics.queue_waiting.load(Ordering::Relaxed) as i64,
        );
        if let Some(g) = r.gauges.get_mut("serve.queue_depth") {
            g.max = self.metrics.queue_peak.load(Ordering::Relaxed) as i64;
            g.min = 0;
        }
        r.gauge_set(
            "serve.in_flight",
            self.in_flight.load(Ordering::Relaxed) as i64,
        );
        if let Some(g) = r.gauges.get_mut("serve.in_flight") {
            g.max = self.peak_in_flight.load(Ordering::Relaxed) as i64;
            g.min = 0;
        }
        let qw = self
            .metrics
            .queue_wait_ns
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if qw.total.count > 0 {
            r.histograms
                .insert("serve.queue_wait_ns".to_string(), qw.total.clone());
        }
        drop(qw);
        let rw = self
            .metrics
            .request_wall_ns
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if rw.total.count > 0 {
            r.histograms
                .insert("serve.request_wall_ns".to_string(), rw.total.clone());
        }
        r
    }

    /// Health/readiness summary: `ok` when every request was served at
    /// full fidelity, `degraded` when any request lost fidelity, and a
    /// ready flag (the service is infallible by contract, so it is
    /// ready as soon as it exists; the flag goes false only if every
    /// request degraded — the analyzer is effectively down).
    pub fn health_json(&self) -> Json {
        let s = self.stats();
        let requests = self.metrics.requests.load(Ordering::Relaxed);
        let status = if s.degraded == 0 && s.store_failures == 0 {
            "ok"
        } else {
            "degraded"
        };
        let ready = requests == 0 || s.served > 0;
        let degraded_modules = Json::Arr(
            self.degradations()
                .iter()
                .map(|d| {
                    Json::obj([
                        ("module", Json::str(d.module.clone())),
                        ("reason", Json::str(d.reason.as_str())),
                    ])
                })
                .collect(),
        );
        Json::obj([
            ("status", Json::str(status)),
            ("ready", Json::Bool(ready)),
            ("requests", Json::U64(requests)),
            ("served", Json::U64(s.served)),
            ("degraded", Json::U64(s.degraded)),
            ("degraded_modules", degraded_modules),
        ])
    }

    /// Renders the deterministic snapshot as a `janitizer.serve-metrics/v1`
    /// document: request/outcome counters, per-[`FillSource`]
    /// provenance, the analyze-cost histogram, and the health summary.
    /// Byte-identical across `--threads` for the same request set.
    pub fn serve_metrics_json(&self) -> String {
        let s = self.stats();
        let h = self
            .metrics
            .analyze_units
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        Json::obj([
            ("schema", Json::str("janitizer.serve-metrics/v1")),
            ("requests", Json::U64(self.metrics.requests.load(Ordering::Relaxed))),
            ("served", Json::U64(s.served)),
            ("degraded", Json::U64(s.degraded)),
            ("timeouts", Json::U64(s.timeouts)),
            ("panics_isolated", Json::U64(s.panics_isolated)),
            ("retries", Json::U64(s.retries)),
            ("store_failures", Json::U64(s.store_failures)),
            (
                "provenance",
                Json::obj([
                    (
                        "memory",
                        Json::U64(self.metrics.src_memory.load(Ordering::Relaxed)),
                    ),
                    (
                        "store",
                        Json::U64(self.metrics.src_store.load(Ordering::Relaxed)),
                    ),
                    (
                        "analyzed",
                        Json::U64(self.metrics.src_analyzed.load(Ordering::Relaxed)),
                    ),
                    (
                        "analyzed_store_failed",
                        Json::U64(self.metrics.src_store_failed.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            ("analyze_units", janitizer_telemetry::export::histogram_json(&h)),
            (
                // Quarantine growth is operator-visible here so a store
                // accumulating corrupt entries is caught before the disk
                // is. Null when the cache has no persistent store.
                "store_quarantine",
                match self.cache.store().map(|s| s.quarantine_usage()) {
                    Some((files, bytes)) => Json::obj([
                        ("entries", Json::U64(files)),
                        ("bytes", Json::U64(bytes)),
                    ]),
                    None => Json::Null,
                },
            ),
            ("health", self.health_json()),
        ])
        .render_pretty()
    }

    /// Renders the host-side snapshot as a
    /// `janitizer.serve-metrics-host/v1` document: queue/in-flight
    /// high-water marks and latency quantiles over the recent window.
    /// Wall-clock truth — excluded from byte-parity checks.
    pub fn host_metrics_json(&self) -> String {
        let quantiles = |w: &WindowedHistogram| {
            Json::obj([
                ("window", Json::U64(w.window_len() as u64)),
                ("count", Json::U64(w.total.count)),
                ("mean_ns", Json::F64(w.total.mean())),
                ("p50_ns", w.quantile(0.50).map(Json::U64).unwrap_or(Json::Null)),
                ("p90_ns", w.quantile(0.90).map(Json::U64).unwrap_or(Json::Null)),
                ("p99_ns", w.quantile(0.99).map(Json::U64).unwrap_or(Json::Null)),
                ("max_ns", Json::U64(w.total.max)),
            ])
        };
        let qw = self
            .metrics
            .queue_wait_ns
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let queue_wait = quantiles(&qw);
        drop(qw);
        let rw = self
            .metrics
            .request_wall_ns
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let request_wall = quantiles(&rw);
        drop(rw);
        Json::obj([
            ("schema", Json::str("janitizer.serve-metrics-host/v1")),
            (
                "queue_depth_peak",
                Json::U64(self.metrics.queue_peak.load(Ordering::Relaxed)),
            ),
            (
                "peak_in_flight",
                Json::U64(self.peak_in_flight.load(Ordering::Relaxed)),
            ),
            ("queue_wait", queue_wait),
            ("request_wall", request_wall),
        ])
        .render_pretty()
    }

    /// The degradations recorded so far, sorted by module then reason
    /// label for deterministic reporting.
    pub fn degradations(&self) -> Vec<ModuleDegradation> {
        let mut v = self
            .degraded
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        v.sort_by(|a, b| {
            a.module
                .cmp(&b.module)
                .then(a.reason.as_str().cmp(b.reason.as_str()))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockRules, StaticContext};
    use janitizer_dbt::{DecodedBlock, TbItem};
    use janitizer_rules::RewriteRule;
    use janitizer_vm::Process;

    /// Minimal plugin whose static pass can be made hostile on demand.
    struct ToyPlugin {
        name: &'static str,
        panics_left: std::cell::Cell<u32>,
    }

    impl ToyPlugin {
        fn new(name: &'static str) -> ToyPlugin {
            ToyPlugin {
                name,
                panics_left: std::cell::Cell::new(0),
            }
        }
    }

    impl SecurityPlugin for ToyPlugin {
        fn name(&self) -> &str {
            self.name
        }
        fn static_pass(&self, _image: &Image, ctx: &StaticContext) -> Vec<RewriteRule> {
            let left = self.panics_left.get();
            if left > 0 {
                self.panics_left.set(left - 1);
                panic!("injected static-pass panic");
            }
            ctx.cfg
                .blocks
                .keys()
                .map(|&b| RewriteRule::new(7, b, b))
                .collect()
        }
        fn instrument_static(
            &mut self,
            _proc: &mut Process,
            _block: &DecodedBlock,
            _rules: &BlockRules<'_>,
        ) -> Vec<TbItem> {
            Vec::new()
        }
        fn instrument_dynamic(&mut self, _proc: &mut Process, _block: &DecodedBlock) -> Vec<TbItem> {
            Vec::new()
        }
    }

    fn toy_image() -> Arc<Image> {
        let obj = janitizer_asm::assemble(
            "s.s",
            ".section text\n.global _start\n_start:\n mov r0, 0\n\
             loop:\n add r0, 1\n cmp r0, 4\n jne loop\n ret\n",
            &janitizer_asm::AsmOptions::default(),
        )
        .unwrap();
        Arc::new(
            janitizer_link::link(&[obj], &janitizer_link::LinkOptions::executable("s")).unwrap(),
        )
    }

    /// Runs `f` with the default panic hook silenced, restoring it after
    /// (panics are the *expected* input of these tests).
    fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    #[test]
    fn healthy_request_serves_rules() {
        let svc = AnalysisService::new(Arc::new(RuleCache::new()), ServiceOptions::default());
        let image = toy_image();
        let reply = svc.request(&image, &ToyPlugin::new("toy"), true);
        assert!(reply.degradation.is_none());
        let rules = reply.rules.expect("served");
        assert!(!rules.rules.is_empty());
        assert_eq!(reply.source, Some(FillSource::Analyzed { store_failed: false }));
        // Second request is a memory hit with identical bytes.
        let again = svc.request(&image, &ToyPlugin::new("toy"), true);
        assert_eq!(again.source, Some(FillSource::Memory));
        assert_eq!(again.rules.unwrap().to_bytes(), rules.to_bytes());
        let s = svc.stats();
        assert_eq!((s.served, s.degraded), (2, 0));
    }

    #[test]
    fn transient_panic_is_isolated_and_retried() {
        let svc = AnalysisService::new(
            Arc::new(RuleCache::new()),
            ServiceOptions {
                retry: RetryPolicy { attempts: 2, seed: 5 },
                ..ServiceOptions::default()
            },
        );
        let image = toy_image();
        let plugin = ToyPlugin::new("toy");
        plugin.panics_left.set(1);
        let reply = with_quiet_panics(|| svc.request(&image, &plugin, true));
        assert!(reply.rules.is_some(), "retry after the isolated panic served");
        assert!(reply.degradation.is_none());
        let s = svc.stats();
        assert_eq!((s.panics_isolated, s.retries), (1, 1));
    }

    #[test]
    fn persistent_panic_degrades_not_errors() {
        let svc = AnalysisService::new(
            Arc::new(RuleCache::new()),
            ServiceOptions {
                retry: RetryPolicy { attempts: 2, seed: 5 },
                ..ServiceOptions::default()
            },
        );
        let image = toy_image();
        let plugin = ToyPlugin::new("toy");
        plugin.panics_left.set(u32::MAX);
        let reply = with_quiet_panics(|| svc.request(&image, &plugin, true));
        assert!(reply.rules.is_none());
        assert_eq!(reply.degradation, Some(DegradationReason::AnalysisPanic));
        let s = svc.stats();
        assert_eq!(s.panics_isolated, 3, "initial attempt + 2 retries");
        assert_eq!(s.degraded, 1);
        // The service itself is still healthy afterwards.
        let ok = svc.request(&image, &ToyPlugin::new("toy"), true);
        assert!(ok.rules.is_some());
    }

    #[test]
    fn budget_overrun_degrades_to_timeout_and_is_not_cached() {
        let cache = Arc::new(RuleCache::new());
        let svc = AnalysisService::new(
            Arc::clone(&cache),
            ServiceOptions {
                budget_units: 1,
                ..ServiceOptions::default()
            },
        );
        let image = toy_image();
        let reply = svc.request(&image, &ToyPlugin::new("toy"), true);
        assert!(reply.rules.is_none());
        assert_eq!(reply.degradation, Some(DegradationReason::AnalysisTimeout));
        assert_eq!(svc.stats().timeouts, 1);
        // Nothing was memoized: an unbudgeted service over the same cache
        // re-analyzes and serves fine.
        let svc2 = AnalysisService::new(cache, ServiceOptions::default());
        let ok = svc2.request(&image, &ToyPlugin::new("toy"), true);
        assert_eq!(ok.source, Some(FillSource::Analyzed { store_failed: false }));
        assert!(ok.rules.is_some());
    }

    #[test]
    fn store_failure_serves_in_process_rules_with_degradation() {
        let dir = janitizer_store::scratch_dir("serve-storefail");
        let store = janitizer_store::RuleStore::open_with(
            &dir,
            RetryPolicy { attempts: 0, seed: 0 },
            janitizer_store::FailurePlan {
                transient_write_failures: u64::MAX / 2,
                crash_after_commits: None,
            },
        )
        .unwrap();
        let svc = AnalysisService::new(
            Arc::new(RuleCache::with_store(Arc::new(store))),
            ServiceOptions::default(),
        );
        let image = toy_image();
        let reply = svc.request(&image, &ToyPlugin::new("toy"), true);
        assert!(reply.rules.is_some(), "in-process fallback still serves");
        assert_eq!(reply.degradation, Some(DegradationReason::StoreFailure));
        assert_eq!(svc.stats().store_failures, 1);
        assert_eq!(
            svc.degradations(),
            vec![ModuleDegradation {
                module: "s".into(),
                reason: DegradationReason::StoreFailure,
            }]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admission_gate_bounds_in_flight() {
        let svc = Arc::new(AnalysisService::new(
            Arc::new(RuleCache::new()),
            ServiceOptions {
                max_in_flight: 2,
                ..ServiceOptions::default()
            },
        ));
        std::thread::scope(|scope| {
            for i in 0..8 {
                let svc = Arc::clone(&svc);
                scope.spawn(move || {
                    // Distinct plugin keys force real (non-memoized) work.
                    let name: &'static str =
                        Box::leak(format!("toy{i}").into_boxed_str());
                    let image = toy_image();
                    let reply = svc.request(&image, &ToyPlugin::new(name), true);
                    assert!(reply.rules.is_some());
                });
            }
        });
        let s = svc.stats();
        assert_eq!(s.served, 8);
        assert!(s.peak_in_flight <= 2, "gate held: peak {}", s.peak_in_flight);
    }
}
