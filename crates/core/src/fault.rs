//! Deterministic byte-level fault injection for hostile-input testing.
//!
//! The mutator models the corruptions a binary tool meets in the wild —
//! truncated downloads, bit rot, fuzzed headers, overlapping sections —
//! as four seeded, reproducible operations over an arbitrary byte image.
//! It is deliberately free of any external RNG dependency: the PRNG is
//! splitmix64, so the same seed always yields the same mutation sequence
//! on every platform, which is what makes the fault-injection harness
//! (`janitizer-faultz`) and the `--inject-faults` evaluation mode
//! byte-for-byte replayable.

/// A deterministic splitmix64 pseudo-random number generator.
///
/// Small state, full 64-bit period, and — unlike `rand` — zero
/// dependencies; every consumer that needs reproducible corruption
/// shares this one implementation.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`0` when `bound == 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Bernoulli draw with probability `rate` (clamped to `[0, 1]`).
    pub fn chance(&mut self, rate: f64) -> bool {
        let rate = rate.clamp(0.0, 1.0);
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < rate
    }
}

/// The corruption applied by one [`Mutator::mutate`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mutation {
    /// The image was cut short at the given length.
    Truncate(usize),
    /// A single bit was flipped at the given byte offset.
    BitFlip(usize),
    /// A 4-byte little-endian field at the given offset was overwritten
    /// with an implausible length/count value.
    LengthCorrupt(usize),
    /// A window of bytes was copied over another (overlapping-section
    /// style splice): `(src, dst, len)`.
    Splice(usize, usize, usize),
    /// The image was too small to corrupt meaningfully.
    Unchanged,
}

impl Mutation {
    /// Stable short name, used in harness summaries.
    pub fn name(&self) -> &'static str {
        match self {
            Mutation::Truncate(_) => "truncate",
            Mutation::BitFlip(_) => "bit-flip",
            Mutation::LengthCorrupt(_) => "length-corrupt",
            Mutation::Splice(..) => "splice",
            Mutation::Unchanged => "unchanged",
        }
    }
}

/// Seeded byte mutator producing the ISSUE's four corruption classes.
#[derive(Clone, Debug)]
pub struct Mutator {
    rng: SplitMix64,
}

impl Mutator {
    /// Creates a mutator from a seed.
    pub fn new(seed: u64) -> Mutator {
        Mutator { rng: SplitMix64::new(seed) }
    }

    /// Applies one randomly chosen corruption to `bytes` in place,
    /// returning what was done. Never panics, for any input length.
    pub fn mutate(&mut self, bytes: &mut Vec<u8>) -> Mutation {
        if bytes.len() < 2 {
            return Mutation::Unchanged;
        }
        match self.rng.below(4) {
            0 => {
                // Truncate somewhere strictly inside the image.
                let at = 1 + self.rng.below(bytes.len() as u64 - 1) as usize;
                bytes.truncate(at);
                Mutation::Truncate(at)
            }
            1 => {
                let off = self.rng.below(bytes.len() as u64) as usize;
                bytes[off] ^= 1 << self.rng.below(8);
                Mutation::BitFlip(off)
            }
            2 => {
                // Overwrite a 4-byte window with a hostile length/count:
                // either huge (allocation bombs) or small (inconsistent
                // with the data that follows).
                if bytes.len() < 4 {
                    let off = self.rng.below(bytes.len() as u64) as usize;
                    bytes[off] ^= 1 << self.rng.below(8);
                    return Mutation::BitFlip(off);
                }
                let off = self.rng.below(bytes.len() as u64 - 3) as usize;
                let value: u32 = if self.rng.below(2) == 0 {
                    0xffff_fff0 | self.rng.below(16) as u32
                } else {
                    self.rng.below(8) as u32
                };
                bytes[off..off + 4].copy_from_slice(&value.to_le_bytes());
                Mutation::LengthCorrupt(off)
            }
            _ => {
                // Splice: copy one window over another, possibly
                // overlapping — the section-overlap corruption class.
                let len = (1 + self.rng.below(64)) as usize;
                let len = len.min(bytes.len() / 2).max(1);
                let src = self.rng.below((bytes.len() - len + 1) as u64) as usize;
                let dst = self.rng.below((bytes.len() - len + 1) as u64) as usize;
                bytes.copy_within(src..src + len, dst);
                Mutation::Splice(src, dst, len)
            }
        }
    }
}

/// Fault-injection configuration for [`crate::run_hybrid`]: each
/// module's serialized rule file is corrupted with probability `rate`
/// before the integrity-checked load, using a per-module seed derived
/// from `seed` so results are independent of module iteration order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultInjection {
    /// Master seed for the deterministic mutation stream.
    pub seed: u64,
    /// Per-module corruption probability in `[0, 1]`.
    pub rate: f64,
}

impl FaultInjection {
    /// The per-module mutation seed: the master seed mixed with a hash
    /// of the module name, so adding or reordering modules does not
    /// perturb the faults injected into the others.
    pub fn module_seed(&self, module: &str) -> u64 {
        self.seed ^ janitizer_obj::checksum64(module.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn mutations_are_reproducible_and_in_bounds() {
        let base: Vec<u8> = (0..251u32).map(|i| (i * 7) as u8).collect();
        let mut m1 = Mutator::new(7);
        let mut m2 = Mutator::new(7);
        for _ in 0..500 {
            let mut a = base.clone();
            let mut b = base.clone();
            let ma = m1.mutate(&mut a);
            let mb = m2.mutate(&mut b);
            assert_eq!(ma, mb);
            assert_eq!(a, b);
            assert!(a.len() <= base.len());
        }
    }

    #[test]
    fn tiny_inputs_never_panic() {
        for len in 0..8usize {
            let mut m = Mutator::new(len as u64);
            for _ in 0..200 {
                let mut v = vec![0xaau8; len];
                m.mutate(&mut v);
            }
        }
    }

    #[test]
    fn module_seed_depends_on_name_not_order() {
        let fi = FaultInjection { seed: 9, rate: 1.0 };
        assert_eq!(fi.module_seed("libc.so"), fi.module_seed("libc.so"));
        assert_ne!(fi.module_seed("libc.so"), fi.module_seed("ld.so"));
    }

    #[test]
    fn chance_respects_extremes() {
        let mut r = SplitMix64::new(1);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }
}
