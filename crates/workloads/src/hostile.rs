//! The hostile-module gauntlet: small executables built to defeat naive
//! disassembly the way stripped and obfuscated production binaries do.
//!
//! Each module carries its own ground truth: `gt<N>`/`gt<N>_end` label
//! pairs bracket the bytes that really are instructions, recorded from
//! the symbol table *before* the image is stripped. A disassembly
//! backend's static coverage on a hostile module is measured against
//! exactly these ranges, so missed code and mis-decoded data both count
//! against it.
//!
//! Four classes, one per way real binaries go hostile:
//!
//! * `stripped` — functions reachable only through a function-pointer
//!   table, all local symbols removed. Each target starts with the
//!   JX-64 landing-pad anchor so the `cet-anchor` backend can prove
//!   them.
//! * `data-island` — a byte blob in `.text` that decodes as plausible
//!   instructions, is fallen into by a never-taken branch, and is read
//!   as data at run time.
//! * `overlap` — one byte region with two valid decodings at different
//!   offsets; the decoy swallows the real code as immediate payload.
//!   The real entry performs a heap overflow, so detection must survive
//!   whatever the backend decides about the region.
//! * `jump-table` — an indirect dispatch whose table base lives in a
//!   different register than the jump, outside the analyzer's
//!   pattern-match window, with the case blocks stripped.

use crate::build_exe;
use janitizer_minic::CompileOptions;
use janitizer_obj::Image;

/// One hostile executable plus the oracle needed to judge a backend on
/// it.
pub struct HostileModule {
    /// Module (and store) name, e.g. `hostile-stripped`.
    pub name: &'static str,
    /// Hostility class: `stripped`, `data-island`, `overlap` or
    /// `jump-table`.
    pub class: &'static str,
    /// What makes the module hostile, for reports.
    pub describe: &'static str,
    /// The stripped image as it would ship.
    pub image: Image,
    /// Ground-truth instruction byte ranges `[start, end)`, from the
    /// pre-strip `gt<N>`/`gt<N>_end` labels.
    pub code_ranges: Vec<(u64, u64)>,
    /// Whether a JASan run of the module must report a violation (the
    /// fig10-class detection that has to survive degradation).
    pub expect_violation: bool,
}

impl HostileModule {
    /// Total ground-truth instruction bytes.
    pub fn code_bytes(&self) -> u64 {
        self.code_ranges.iter().map(|&(s, e)| e - s).sum()
    }
}

/// Address of a (possibly local) defined label in an unstripped image.
fn label(image: &Image, name: &str) -> u64 {
    image
        .symbols
        .iter()
        .find(|s| s.name == name && !s.is_undefined())
        .map(|s| s.value)
        .unwrap_or_else(|| panic!("hostile module is missing label `{name}`"))
}

/// Collects the `gt<N>`/`gt<N>_end` bracket pairs from an unstripped
/// image.
fn ground_truth(image: &Image) -> Vec<(u64, u64)> {
    let mut ranges = Vec::new();
    for n in 0.. {
        let start = format!("gt{n}");
        if !image.symbols.iter().any(|s| s.name == start) {
            break;
        }
        ranges.push((label(image, &start), label(image, &format!("gt{n}_end"))));
    }
    assert!(!ranges.is_empty(), "hostile module has no gt brackets");
    ranges
}

fn build(name: &'static str, asm: &str) -> (Image, Vec<(u64, u64)>) {
    let image = build_exe(name, "", Some(asm), &CompileOptions::default(), false, false);
    let ranges = ground_truth(&image);
    (image.to_stripped(), ranges)
}

/// `stripped`: three helpers dispatched through a `.rodata` pointer
/// table, every local symbol removed. Each helper opens with the
/// landing-pad anchor (`test r0, 0x414c50`).
fn stripped_module() -> HostileModule {
    let asm = "\
.section text
.global main
main:
gt0:
 la r1, fptab
 mov r2, 0
fploop:
 cmp r2, 3
 jge fpdone
 ld8 r3, [r1+r2*8]
 call r3
 add r2, 1
 jmp fploop
fpdone:
 mov r0, 0
 ret
gt0_end:
helper0:
gt1:
 test r0, 0x414c50
 mov r4, 1
 ret
helper1:
 test r0, 0x414c50
 mov r4, 2
 ret
helper2:
 test r0, 0x414c50
 mov r4, 3
 ret
gt1_end:
.section rodata
.align 8
fptab:
 .quad helper0
 .quad helper1
 .quad helper2
";
    let (image, code_ranges) = build("hostile-stripped", asm);
    HostileModule {
        name: "hostile-stripped",
        class: "stripped",
        describe: "pointer-table dispatch to anchored helpers, all local symbols stripped",
        image,
        code_ranges,
        expect_violation: false,
    }
}

/// `data-island`: an 18-byte blob in `.text` that decodes as padding
/// plus a `mov`, sits on the fall-through edge of a never-taken branch,
/// and is loaded as data at run time.
fn data_island_module() -> HostileModule {
    let asm = "\
.section text
.global main
main:
gt0:
 la r1, island
 ld8 r2, [r1]
 cmp r2, 0
 je skip
gt0_end:
island:
 .byte 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00
 .byte 0x11, 0x05, 0x4a, 0x41, 0x4e, 0x49, 0x54, 0x49, 0x5a, 0x52
skip:
gt1:
 mov r0, 0
 ret
gt1_end:
";
    let (image, code_ranges) = build("hostile-island", asm);
    HostileModule {
        name: "hostile-island",
        class: "data-island",
        describe: "validly-decoding data blob in .text, branch-adjacent and read as data",
        image,
        code_ranges,
        expect_violation: false,
    }
}

/// `overlap`: the decoy decoding at `ovl_region` is a `mov r9, imm64`
/// whose 8 immediate bytes are exactly the real chain at `ovl_region+2`
/// (`st8`/`nop`/`ret`), followed by a bare `ret` byte. The real entry
/// writes one word past an 8-byte heap allocation.
fn overlap_module() -> HostileModule {
    let asm = "\
.section text
.global main
main:
gt0:
 mov r0, 8
 call malloc
 mov r9, r0
 la r1, otab
 ld8 r2, [r1]
 call r2
 mov r0, 0
 ret
gt0_end:
ovl_region:
 .byte 0x11, 0x09
ovl_entry:
gt1:
 st8 [r9+8], r9
 nop
 ret
gt1_end:
 .byte 0x6c
.section rodata
.align 8
otab:
 .quad ovl_entry
 .quad ovl_entry
 .quad ovl_region
";
    let (image, code_ranges) = build("hostile-overlap", asm);
    HostileModule {
        name: "hostile-overlap",
        class: "overlap",
        describe: "two valid decodings of one byte region; real entry overflows a heap chunk",
        image,
        code_ranges,
        expect_violation: true,
    }
}

/// `jump-table`: bounds-checked indirect dispatch whose table base is
/// materialized into a different register than the jump operand, so the
/// analyzer's backward pattern window never matches; case blocks are
/// stripped.
fn jump_table_module() -> HostileModule {
    let asm = "\
.section text
.global main
main:
gt0:
 mov r3, 1
 cmp r3, 3
 jae jt_done
 la r1, jtab
 ld8 r2, [r1+r3*8]
 jmp r2
jt_done:
 mov r0, 0
 ret
gt0_end:
case0:
gt1:
 mov r4, 10
 jmp jt_done
case1:
 mov r4, 11
 jmp jt_done
case2:
 mov r4, 12
 jmp jt_done
gt1_end:
.section rodata
.align 8
jtab:
 .quad case0
 .quad case1
 .quad case2
";
    let (image, code_ranges) = build("hostile-jumptab", asm);
    HostileModule {
        name: "hostile-jumptab",
        class: "jump-table",
        describe: "split-register jump-table dispatch outside the recovery pattern, cases stripped",
        image,
        code_ranges,
        expect_violation: false,
    }
}

/// Builds the full gauntlet, one module per hostility class.
pub fn hostile_suite() -> Vec<HostileModule> {
    vec![
        stripped_module(),
        data_island_module(),
        overlap_module(),
        jump_table_module(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauntlet_builds_with_ground_truth() {
        let suite = hostile_suite();
        assert_eq!(suite.len(), 4);
        let classes: Vec<&str> = suite.iter().map(|m| m.class).collect();
        assert_eq!(
            classes,
            ["stripped", "data-island", "overlap", "jump-table"]
        );
        for m in &suite {
            assert!(m.code_bytes() > 0, "{}: empty ground truth", m.name);
            for &(s, e) in &m.code_ranges {
                assert!(s < e, "{}: inverted gt range", m.name);
            }
            // Stripped as shipped: no local labels left to lean on.
            assert!(
                m.image
                    .symbols
                    .iter()
                    .all(|s| s.bind == janitizer_obj::SymBind::Global),
                "{}: local symbols survived the strip",
                m.name
            );
        }
    }

    #[test]
    fn anchors_only_in_stripped_class() {
        for m in hostile_suite() {
            let anchors = m.image.anchor_addrs();
            if m.class == "stripped" {
                assert_eq!(anchors.len(), 3, "one anchor per helper");
            } else {
                assert!(anchors.is_empty(), "{}: unexpected anchors", m.name);
            }
        }
    }
}
