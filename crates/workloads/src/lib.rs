//! # The guest world
//!
//! Everything the evaluation runs: the guest C library (`libjc.so`), the
//! libgfortran-like low-level library (`libjf.so`), the dynamic loader
//! (`ld.so`), the sanitizer runtimes, 27 SPEC CPU2006-shaped workload
//! programs ([`all_workloads`], the 28 the paper's figures cover) and the
//! Juliet-like CWE-122 suite
//! ([`juliet_suite`]).
//!
//! [`build_world`] compiles and links the whole universe into a
//! [`ModuleStore`]; [`build_case`] builds a single small program against
//! the same libraries (used by the Juliet harness).

mod hostile;
mod juliet;
mod libc;
mod programs;

pub use hostile::{hostile_suite, HostileModule};

pub use juliet::{
    juliet_suite, JulietCase, JulietCategory, N_HEAP, N_HEAP_TO_STACK, N_HEAP_WIDE,
    N_STACK_TO_HEAP, N_TOTAL,
};
pub use libc::{CRT0, LIBC_C, LIBC_SHIMS, LIBJF};
pub use programs::{all_workloads, Workload};

use janitizer_asm::{assemble, AsmOptions};
use janitizer_link::{link, LinkOptions};
use janitizer_minic::{compile, CanaryMode, CompileOptions};
use janitizer_obj::Image;
use janitizer_vm::{ModuleStore, MINIMAL_LD_SO};

/// World-building configuration.
#[derive(Clone, Debug)]
pub struct BuildOptions {
    /// Multiplier applied to every workload's default input argument.
    pub scale: f64,
    /// Compile the workloads with gcc's `ipa-ra`-style optimization
    /// (exercises the §4.1.2 liveness hazard in full runs).
    pub ipa_ra: bool,
}

impl Default for BuildOptions {
    fn default() -> BuildOptions {
        BuildOptions {
            scale: 1.0,
            ipa_ra: false,
        }
    }
}

/// A fully built guest universe.
#[derive(Clone, Debug)]
pub struct World {
    /// Module store with every executable and library.
    pub store: ModuleStore,
    /// Workload descriptions (executable names match workload names).
    pub workloads: Vec<Workload>,
    /// Scaled default argument per workload, by index.
    pub args: Vec<u64>,
}

fn build_libjc() -> Image {
    let c = compile(
        LIBC_C,
        &CompileOptions {
            canary: CanaryMode::Arrays,
            ..CompileOptions::default()
        },
    )
    .expect("libjc compiles");
    let o1 = assemble("libjc.c.s", &c, &AsmOptions { pic: true }).expect("libjc asm");
    let o2 = assemble("libjc_shims.s", LIBC_SHIMS, &AsmOptions { pic: true }).expect("shims");
    link(&[o1, o2], &LinkOptions::shared_object("libjc.so")).expect("libjc links")
}

fn build_libjf() -> Image {
    let o = assemble("libjf.s", LIBJF, &AsmOptions { pic: true }).expect("libjf asm");
    link(&[o], &LinkOptions::shared_object("libjf.so")).expect("libjf links")
}

fn build_ld_so() -> Image {
    let o = assemble("ld.s", MINIMAL_LD_SO, &AsmOptions { pic: true }).expect("ld.so asm");
    link(&[o], &LinkOptions::shared_object("ld.so")).expect("ld.so links")
}

/// Builds one executable from MiniC source (plus optional extra assembly)
/// against libjc (and optionally libjf).
///
/// # Panics
///
/// Panics on toolchain errors — the inputs are fixed sources, so failures
/// are bugs.
pub fn build_exe(
    name: &str,
    minic_source: &str,
    extra_asm: Option<&str>,
    copts: &CompileOptions,
    pie: bool,
    needs_jf: bool,
) -> Image {
    let aopts = AsmOptions { pic: pie };
    let mut objects = Vec::new();
    objects.push(assemble("crt0.s", CRT0, &aopts).expect("crt0"));
    if !minic_source.is_empty() {
        let asm_text = compile(minic_source, copts)
            .unwrap_or_else(|e| panic!("workload `{name}` failed to compile: {e}"));
        objects.push(
            assemble(&format!("{name}.c.s"), &asm_text, &aopts)
                .unwrap_or_else(|e| panic!("workload `{name}` failed to assemble: {e}")),
        );
    }
    if let Some(asm_src) = extra_asm {
        objects.push(
            assemble(&format!("{name}.s"), asm_src, &aopts)
                .unwrap_or_else(|e| panic!("workload `{name}` asm failed: {e}")),
        );
    }
    let mut lopts = if pie {
        LinkOptions::pie(name)
    } else {
        LinkOptions::executable(name)
    };
    lopts = lopts.needs("libjc.so");
    if needs_jf {
        lopts = lopts.needs("libjf.so");
    }
    link(&objects, &lopts).unwrap_or_else(|e| panic!("workload `{name}` failed to link: {e}"))
}

/// Builds the full world: libraries, runtimes and all 27 workloads.
pub fn build_world(opts: &BuildOptions) -> World {
    let mut store = ModuleStore::new();
    store.add(build_libjc());
    store.add(build_libjf());
    store.add(build_ld_so());
    store.add(janitizer_jasan::runtime_module());

    let workloads = all_workloads();
    let mut args = Vec::new();
    for w in &workloads {
        let copts = CompileOptions {
            canary: CanaryMode::Arrays,
            tables_in_text: w.tables_in_text,
            ipa_ra: opts.ipa_ra,
            ..CompileOptions::default()
        };
        let exe = build_exe(
            w.name,
            &w.source,
            w.extra_asm.as_deref(),
            &copts,
            w.pie,
            w.needs_jf,
        );
        store.add(exe);
        if let Some((pname, psrc)) = &w.plugin {
            let po = assemble(&format!("{pname}.s"), psrc, &AsmOptions { pic: true })
                .expect("plugin asm");
            store.add(link(&[po], &LinkOptions::shared_object(*pname)).expect("plugin links"));
        }
        args.push(((w.default_arg as f64 * opts.scale).round() as u64).max(1));
    }
    World {
        store,
        workloads,
        args,
    }
}

/// Builds a small standalone program (e.g. a Juliet case) against a
/// prebuilt library store: returns a fresh store containing the shared
/// libraries plus the case executable named `name`.
pub fn build_case(base: &ModuleStore, name: &str, source: &str) -> ModuleStore {
    let copts = CompileOptions {
        canary: CanaryMode::Arrays,
        ..CompileOptions::default()
    };
    let exe = build_exe(name, source, None, &copts, false, false);
    let mut store = base.clone();
    store.add(exe);
    store
}

/// The shared-library base store for Juliet cases (libjc + ld.so +
/// sanitizer runtime, no workloads).
pub fn library_base() -> ModuleStore {
    let mut store = ModuleStore::new();
    store.add(build_libjc());
    store.add(build_libjf());
    store.add(build_ld_so());
    store.add(janitizer_jasan::runtime_module());
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use janitizer_vm::{load_process, Exit, LoadOptions};

    fn run_workload(world: &World, idx: usize) -> (Exit, u64) {
        let w = &world.workloads[idx];
        let mut p = load_process(
            &world.store,
            w.name,
            &LoadOptions {
                args: vec![world.args[idx]],
                ..LoadOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: load failed: {e}", w.name));
        let exit = p.run_native(400_000_000);
        (exit, p.insns)
    }

    #[test]
    fn world_builds() {
        let world = build_world(&BuildOptions::default());
        assert_eq!(world.workloads.len(), 28);
        assert!(world.store.get("libjc.so").is_some());
        assert!(world.store.get("libjf.so").is_some());
        assert!(world.store.get("ld.so").is_some());
        assert!(world.store.get("perlbench").is_some());
        assert!(world.store.get("liblbm.so").is_some(), "lbm's plugin exists");
    }

    #[test]
    fn all_workloads_run_natively() {
        let world = build_world(&BuildOptions {
            scale: 0.2,
            ..BuildOptions::default()
        });
        for i in 0..world.workloads.len() {
            let name = world.workloads[i].name;
            let (exit, insns) = run_workload(&world, i);
            let Exit::Exited(code) = exit else {
                panic!("{name} did not exit cleanly: {exit:?}");
            };
            assert!((0..256).contains(&code), "{name}: exit {code}");
            assert!(insns > 1_000, "{name} too trivial: {insns} instructions");
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        let world = build_world(&BuildOptions {
            scale: 0.2,
            ..BuildOptions::default()
        });
        for i in [0usize, 3, 17, 26] {
            let (a, _) = run_workload(&world, i);
            let (b, _) = run_workload(&world, i);
            assert_eq!(a, b, "{}", world.workloads[i].name);
        }
    }

    #[test]
    fn flags_match_the_paper() {
        let world = build_world(&BuildOptions::default());
        let by_name = |n: &str| world.workloads.iter().find(|w| w.name == n).unwrap();
        // BinCFI failures: gamess and zeusmp (in-text tables).
        assert!(by_name("gamess").tables_in_text);
        assert!(by_name("zeusmp").tables_in_text);
        // Lockdown failures: omnetpp and dealII.
        assert!(by_name("omnetpp").lockdown_fails);
        assert!(by_name("dealII").lockdown_fails);
        // Dynamic-code outliers.
        assert!(by_name("cactusADM").extra_asm.is_some(), "JIT main");
        assert!(by_name("lbm").plugin.is_some(), "dlopen plugin");
        // RetroWrite's C-benchmark coverage is PIE.
        for n in ["perlbench", "bzip2", "gcc", "mcf", "sjeng", "libquantum", "h264ref", "milc", "lbm", "sphinx3"] {
            assert!(by_name(n).pie, "{n} should be PIE");
        }
        for n in ["omnetpp", "dealII", "povray", "tonto", "cactusADM"] {
            assert!(!by_name(n).pie, "{n} should be non-PIC");
        }
    }

    #[test]
    fn juliet_suite_shape() {
        let suite = juliet_suite();
        assert_eq!(suite.len(), 624);
        let count = |c: JulietCategory| suite.iter().filter(|x| x.category == c).count();
        assert_eq!(count(JulietCategory::HeapToHeap), N_HEAP);
        assert_eq!(count(JulietCategory::HeapToHeapWide), N_HEAP_WIDE);
        assert_eq!(count(JulietCategory::StackToHeap), N_STACK_TO_HEAP);
        assert_eq!(count(JulietCategory::HeapToStack), N_HEAP_TO_STACK);
    }

    #[test]
    fn juliet_good_variants_run_cleanly() {
        let base = library_base();
        let suite = juliet_suite();
        // Sample across categories.
        for case in suite.iter().step_by(53) {
            let store = build_case(&base, "case", &case.good);
            let mut p = load_process(&store, "case", &LoadOptions::default())
                .unwrap_or_else(|e| panic!("case {}: {e}", case.id));
            let exit = p.run_native(50_000_000);
            assert!(
                matches!(exit, Exit::Exited(_)),
                "good case {} must exit cleanly: {exit:?}",
                case.id
            );
        }
    }

    #[test]
    fn juliet_bad_variants_run_to_completion_natively() {
        // The violations are silent corruption natively (that is the
        // point); they must not crash the VM.
        let base = library_base();
        let suite = juliet_suite();
        for case in suite.iter().step_by(101) {
            let store = build_case(&base, "case", &case.bad);
            let mut p = load_process(&store, "case", &LoadOptions::default()).unwrap();
            let exit = p.run_native(50_000_000);
            assert!(
                matches!(exit, Exit::Exited(_)),
                "bad case {} should still exit natively: {exit:?}",
                case.id
            );
        }
    }
}
