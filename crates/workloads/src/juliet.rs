//! A Juliet-like CWE-122 (heap-based buffer overflow) test suite.
//!
//! 624 generated test cases, each with a *good* (well-behaved) and a
//! *bad* (violating) variant, mirroring the NIST Juliet methodology the
//! paper evaluates with (Figure 10). The category mix is chosen so the
//! by-design detector differences reproduce:
//!
//! * **heap-to-heap** — overflows into the adjacent redzone; caught by
//!   both JASan and Memcheck;
//! * **heap-to-heap (wide)** — overflows far enough to clear Memcheck's
//!   16-byte redzones and land in the *next allocation's data* while
//!   still inside JASan's 32-byte redzones: Memcheck misses these
//!   (the paper's 24 "fewer-than-actual" cases);
//! * **stack-to-heap** — a stack buffer copied into an undersized heap
//!   destination; the violating *write* is on the heap, so both catch it;
//! * **heap-to-stack** — heap data copied over a stack buffer, spilling
//!   into adjacent frame storage *without* touching the canary: invisible
//!   to JASan's frame-granularity stack policy and to Memcheck's
//!   untracked stack (the 96 false negatives of both).

/// Categories of generated cases.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum JulietCategory {
    /// Heap overflow into the adjacent redzone.
    HeapToHeap,
    /// Heap overflow past a 16-byte redzone into the next allocation.
    HeapToHeapWide,
    /// Stack source copied into an undersized heap destination.
    StackToHeap,
    /// Heap source copied over a stack buffer (intra-frame spill).
    HeapToStack,
}

/// One generated test case.
#[derive(Clone, Debug)]
pub struct JulietCase {
    /// Case index (0-based, stable).
    pub id: usize,
    /// Category.
    pub category: JulietCategory,
    /// Well-behaved variant (MiniC source).
    pub good: String,
    /// Violating variant (MiniC source).
    pub bad: String,
}

/// Number of plain heap-to-heap cases.
pub const N_HEAP: usize = 380;
/// Number of wide heap-to-heap cases (Memcheck misses).
pub const N_HEAP_WIDE: usize = 24;
/// Number of stack-to-heap cases.
pub const N_STACK_TO_HEAP: usize = 124;
/// Number of heap-to-stack cases (both miss, by policy).
pub const N_HEAP_TO_STACK: usize = 96;
/// Total cases (matching the paper's 624).
pub const N_TOTAL: usize = N_HEAP + N_HEAP_WIDE + N_STACK_TO_HEAP + N_HEAP_TO_STACK;

fn heap_case(id: usize) -> JulietCase {
    let elems = 3 + id % 13; // object of `elems` longs
    let sz = elems * 8;
    let write = id.is_multiple_of(2);
    let good_body = if write {
        format!(
            "long p = malloc({sz});\
             for (long i = 0; i < {elems}; i++) *(p + i * 8) = i;\
             long s = 0;\
             for (long i = 0; i < {elems}; i++) s += *(p + i * 8);\
             free(p);\
             return s % 100;"
        )
    } else {
        format!(
            "long p = malloc({sz});\
             for (long i = 0; i < {elems}; i++) *(p + i * 8) = i * 2;\
             long s = *(p + ({elems} - 1) * 8);\
             free(p);\
             return s % 100;"
        )
    };
    let bad_body = if write {
        format!(
            "long p = malloc({sz});\
             for (long i = 0; i <= {elems}; i++) *(p + i * 8) = i;\
             free(p);\
             return 0;"
        )
    } else {
        format!(
            "long p = malloc({sz});\
             *(p) = 1;\
             long s = *(p + {sz});\
             free(p);\
             return s % 100;"
        )
    };
    JulietCase {
        id,
        category: JulietCategory::HeapToHeap,
        good: format!("long main() {{ {good_body} }}"),
        bad: format!("long main() {{ {bad_body} }}"),
    }
}

fn heap_wide_case(id: usize) -> JulietCase {
    let elems = 2 + id % 6;
    let sz = elems * 8;
    // Offset sz+40 past the first object's start: beyond Memcheck's
    // 16+16-byte inter-object poison, inside JASan's 32+32.
    let off = sz + 40;
    let good = format!(
        "long main() {{\
           long p = malloc({sz}); long q = malloc({sz});\
           char *c = p;\
           c[{sz} - 1] = 1;\
           long s = c[{sz} - 1];\
           free(q); free(p);\
           return s;\
         }}"
    );
    let bad = format!(
        "long main() {{\
           long p = malloc({sz}); long q = malloc({sz});\
           char *c = p;\
           c[{off}] = 1;\
           free(q); free(p);\
           return 0;\
         }}"
    );
    JulietCase {
        id,
        category: JulietCategory::HeapToHeapWide,
        good,
        bad,
    }
}

fn stack_to_heap_case(id: usize) -> JulietCase {
    let src_len = 24 + (id % 4) * 8; // stack source
    let short = src_len - 8; // undersized heap destination
    let good = format!(
        "long main() {{\
           char src[{src_len}];\
           for (long i = 0; i < {src_len}; i++) src[i] = i + 1;\
           long dst = malloc({src_len});\
           memcpy(dst, src, {src_len});\
           char *d = dst;\
           long s = d[{src_len} - 1];\
           free(dst);\
           return s;\
         }}"
    );
    let bad = format!(
        "long main() {{\
           char src[{src_len}];\
           for (long i = 0; i < {src_len}; i++) src[i] = i + 1;\
           long dst = malloc({short});\
           memcpy(dst, src, {src_len});\
           free(dst);\
           return 0;\
         }}"
    );
    JulietCase {
        id,
        category: JulietCategory::StackToHeap,
        good,
        bad,
    }
}

fn heap_to_stack_case(id: usize) -> JulietCase {
    let dst_len = 16 + (id % 3) * 8;
    let over = dst_len + 8; // spills into the adjacent pad, not the canary
    let good = format!(
        "long main() {{\
           char pad[16];\
           char dst[{dst_len}];\
           pad[0] = 7;\
           long src = malloc({over});\
           char *s = src;\
           for (long i = 0; i < {over}; i++) s[i] = i;\
           memcpy(dst, src, {dst_len});\
           free(src);\
           return dst[{dst_len} - 1] + pad[0];\
         }}"
    );
    let bad = format!(
        "long main() {{\
           char pad[16];\
           char dst[{dst_len}];\
           pad[0] = 7;\
           long src = malloc({over});\
           char *s = src;\
           for (long i = 0; i < {over}; i++) s[i] = i;\
           memcpy(dst, src, {over});\
           free(src);\
           return dst[{dst_len} - 1] + pad[0];\
         }}"
    );
    JulietCase {
        id,
        category: JulietCategory::HeapToStack,
        good,
        bad,
    }
}

/// Generates the full 624-case suite.
pub fn juliet_suite() -> Vec<JulietCase> {
    let mut cases = Vec::with_capacity(N_TOTAL);
    let mut id = 0;
    for _ in 0..N_HEAP {
        cases.push(heap_case(id));
        id += 1;
    }
    for _ in 0..N_HEAP_WIDE {
        cases.push(heap_wide_case(id));
        id += 1;
    }
    for _ in 0..N_STACK_TO_HEAP {
        cases.push(stack_to_heap_case(id));
        id += 1;
    }
    for _ in 0..N_HEAP_TO_STACK {
        cases.push(heap_to_stack_case(id));
        id += 1;
    }
    debug_assert_eq!(cases.len(), N_TOTAL);
    cases
}
