//! The guest C library (`libjc.so`): syscall shims, a bump allocator,
//! string/memory routines, `qsort` with indirect-call comparators, and
//! the dynamic-loading wrappers.

/// MiniC portion of libjc.
pub const LIBC_C: &str = r#"
long malloc(long n) {
    if (n < 1) n = 1;
    /* chunk slack, as real allocators round requests up */
    return __sys_sbrk((n + 7) / 8 * 8 + 64);
}

long free(long p) {
    return 0;
}

long memset(long dst, long v, long n) {
    char *d = dst;
    for (long i = 0; i < n; i++) d[i] = v;
    return dst;
}

long memcpy(long dst, long src, long n) {
    char *d = dst;
    char *s = src;
    for (long i = 0; i < n; i++) d[i] = s[i];
    return dst;
}

long strlen(long s) {
    char *c = s;
    long n = 0;
    while (c[n]) n++;
    return n;
}

long strcmp(long a, long b) {
    char *x = a;
    char *y = b;
    long i = 0;
    while (x[i] && x[i] == y[i]) i++;
    return x[i] - y[i];
}

long puts(long s) {
    __sys_write(1, s, strlen(s));
    char nl[2];
    nl[0] = 10;
    __sys_write(1, nl, 1);
    return 0;
}

long print_num(long v) {
    char buf[24];
    long i = 23;
    long neg = 0;
    if (v < 0) { neg = 1; v = 0 - v; }
    if (v == 0) { buf[i] = '0'; i = i - 1; }
    while (v > 0) {
        buf[i] = '0' + v % 10;
        v = v / 10;
        i = i - 1;
    }
    if (neg) { buf[i] = '-'; i = i - 1; }
    __sys_write(1, buf + i + 1, 23 - i);
    return 0;
}

/* Sorts `n` 8-byte elements at `base` using the indirect comparator
   `cmp(a, b)` — the callback pattern whose CFI treatment separates
   Lockdown from JCFI (paper 6.2.2). */
long qsort(long base, long n, long cmp) {
    for (long i = 1; i < n; i++) {
        long j = i;
        while (j > 0) {
            long a = *(base + (j - 1) * 8);
            long b = *(base + j * 8);
            if (cmp(a, b) <= 0) break;
            *(base + (j - 1) * 8) = b;
            *(base + j * 8) = a;
            j = j - 1;
        }
    }
    return 0;
}

long dlopen(long name) {
    long h = __sys_dlopen(name, strlen(name));
    if (h == 0 - 1) return 0 - 1;
    long init = __sys_dlinit(h);
    if (init) {
        long f = init;
        f();
    }
    return h;
}

long dlsym(long h, long name) {
    return __sys_dlsym(h, name, strlen(name));
}

long getarg(long i) {
    return __sys_getarg(i);
}

long rand_next() {
    return __sys_rand();
}

long __stack_chk_fail() {
    __sys_abort();
    return 0;
}
"#;

/// Assembly shims translating the C-level calls into syscalls (argument
/// registers must be shuffled into the syscall convention).
pub const LIBC_SHIMS: &str = r#"
.section init
; libc initialization: runs before the program entry (the .init coverage
; the static analyzer must include, paper 3.3.1).
__libc_init:
    la r8, __libc_state
    mov r9, 1
    st8 [r8], r9
    ret
.section data
.global __libc_state
__libc_state: .quad 0
.section text
.global __libc_ready
__libc_ready:
    la r0, __libc_state
    ld8 r0, [r0]
    ret
.global __sys_sbrk
__sys_sbrk:
    mov r1, r0
    mov r0, 2
    syscall
    ret
.global __sys_write
__sys_write:
    mov r3, r2
    mov r2, r1
    mov r1, r0
    mov r0, 1
    syscall
    ret
.global __sys_dlopen
__sys_dlopen:
    mov r2, r1
    mov r1, r0
    mov r0, 5
    syscall
    ret
.global __sys_dlsym
__sys_dlsym:
    mov r3, r2
    mov r2, r1
    mov r1, r0
    mov r0, 6
    syscall
    ret
.global __sys_dlinit
__sys_dlinit:
    mov r1, r0
    mov r0, 7
    syscall
    ret
.global __sys_getarg
__sys_getarg:
    mov r1, r0
    mov r0, 9
    syscall
    ret
.global __sys_rand
__sys_rand:
    mov r0, 10
    syscall
    ret
.global __sys_mmap
__sys_mmap:
    mov r2, r1
    mov r1, r0
    mov r0, 3
    syscall
    ret
.global __sys_abort
__sys_abort:
    la r1, abort_msg
    mov r2, 23
    mov r0, 12
    syscall
    ret
.section rodata
abort_msg: .ascii "stack smashing detected"
"#;

/// Per-executable startup object: the entry point calls `main`, whose
/// return value the loader's bootstrap turns into the exit status.
pub const CRT0: &str = r#"
.section text
.global _start
_start:
    call main
    ret
"#;

/// The libgfortran-like low-level library (`libjf.so`): hand-written
/// assembly with the control-flow and convention abnormalities of
/// paper §4.1.2/§4.2.3 — callee-saved registers clobbered without
/// restore, and an address-taken entry point that is *not* at a detected
/// function boundary (handled by JCFI's allow list).
pub const LIBJF: &str = r#"
.section text
; jf_sum(ptr, n): sums n 8-byte elements. Deliberately clobbers the
; callee-saved r8-r11 without saving them (hand-written-assembly
; convention break).
.global jf_sum
jf_sum:
    mov r8, r0
    mov r9, 0
    mov r10, 0
jf_sum_loop:
    cmp r9, r1
    jge jf_sum_done
    ld8 r11, [r8+r9*8]
    add r10, r11
    add r9, 1
    jmp jf_sum_loop
jf_sum_done:
    mov r0, r10
    ret

; jf_scale(ptr, n, k): multiplies n elements in place.
.global jf_scale
jf_scale:
    mov r8, 0
jf_scale_loop:
    cmp r8, r1
    jge jf_scale_done
    ld8 r9, [r0+r8*8]
    mul r9, r2
    st8 [r0+r8*8], r9
    add r8, 1
    jmp jf_scale_loop
jf_scale_done:
    ret

; jf_kernel has a SECOND entry two bytes in (skipping setup `nop`s)
; whose address is taken in data below (an assembler-local label, so it
; never appears in the symbol table). Calls through that pointer land
; mid-function: not at a detected function boundary (4.2.3).
.global jf_kernel
jf_kernel:
    nop
    nop
.Ljf_fast:
    add r0, r1
    mul r0, 3
    ret

.section data
.global jf_entry_table
jf_entry_table: .quad .Ljf_fast
"#;
