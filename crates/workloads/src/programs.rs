//! The 28 SPEC CPU2006-shaped workload programs of the paper's figures.
//!
//! Each program mirrors the *behavioural signature* of its namesake that
//! matters to the paper's experiments: pointer chasing, jump-table
//! interpreters, virtual-style dispatch through function-pointer tables,
//! `qsort` callbacks (the Lockdown false-positive trigger), hand-written
//! assembly kernels with convention quirks, `dlopen`ed plugins, and
//! JIT-generated code. Input sizes scale with `getarg(0)`.

/// Static description of one workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name (SPEC CPU2006 namesake).
    pub name: &'static str,
    /// MiniC source of the program.
    pub source: String,
    /// Additional hand-written assembly linked into the executable.
    pub extra_asm: Option<String>,
    /// Links against the libgfortran-like `libjf.so`.
    pub needs_jf: bool,
    /// Compile/link position-independent (mirrors which benchmarks the
    /// published RetroWrite handles).
    pub pie: bool,
    /// Emit switch jump tables into `.text` (breaks static rewriters;
    /// mirrors the two benchmarks BinCFI could not run).
    pub tables_in_text: bool,
    /// A `dlopen`ed plugin `(module name, PIC asm source)` invisible to
    /// `ldd`-style static dependency discovery.
    pub plugin: Option<(&'static str, String)>,
    /// Mirrors the paper: Lockdown failed to run omnetpp and dealII.
    pub lockdown_fails: bool,
    /// Default scale argument (`getarg(0)`).
    pub default_arg: u64,
}

impl Workload {
    fn minic(name: &'static str, default_arg: u64, source: impl Into<String>) -> Workload {
        Workload {
            name,
            source: source.into(),
            extra_asm: None,
            needs_jf: false,
            pie: false,
            tables_in_text: false,
            plugin: None,
            lockdown_fails: false,
            default_arg,
        }
    }

    fn pie(mut self) -> Workload {
        self.pie = true;
        self
    }

    fn with_jf(mut self) -> Workload {
        self.needs_jf = true;
        self
    }

    fn with_text_tables(mut self) -> Workload {
        self.tables_in_text = true;
        self
    }

    fn lockdown_broken(mut self) -> Workload {
        self.lockdown_fails = true;
        self
    }
}

/// All 28 workloads, in the paper's figure order.
pub fn all_workloads() -> Vec<Workload> {
    vec![
        perlbench(),
        bzip2(),
        gcc(),
        mcf(),
        gobmk(),
        hmmer(),
        sjeng(),
        libquantum(),
        h264ref(),
        omnetpp(),
        astar(),
        xalancbmk(),
        bwaves(),
        gamess(),
        milc(),
        zeusmp(),
        gromacs(),
        cactusadm(),
        leslie3d(),
        namd(),
        dealii(),
        soplex(),
        povray(),
        calculix(),
        gemsfdtd(),
        tonto(),
        lbm(),
        sphinx3(),
    ]
}

fn perlbench() -> Workload {
    // String hashing and tokenizing: call-heavy, byte loads everywhere.
    Workload::minic(
        "perlbench",
        220,
        r#"
long hash_str(long s, long n) {
    char *c = s;
    long h = 5381;
    for (long i = 0; i < n; i++) h = h * 33 + c[i];
    return h;
}
long tokenize(long s, long n, long *out) {
    char *c = s;
    long count = 0;
    long start = 0;
    for (long i = 0; i <= n; i++) {
        if (i == n || c[i] == ' ') {
            if (i > start) { out[count] = hash_str(s + start, i - start); count++; }
            start = i + 1;
        }
    }
    return count;
}
long main() {
    long reps = getarg(0);
    long text = malloc(256);
    char *t = text;
    for (long i = 0; i < 255; i++) t[i] = (i % 7 == 0) ? ' ' : ('a' + i % 26);
    long toks = malloc(64 * 8);
    long acc = 0;
    for (long r = 0; r < reps; r++) {
        long n = tokenize(text, 255, toks);
        for (long i = 0; i < n; i++) acc += *(toks + i * 8);
        acc = acc % 1000003;
    }
    free(toks); free(text);
    return acc % 256;
}
"#,
    )
    .pie()
}

fn bzip2() -> Workload {
    // Run-length compression / decompression round trips.
    Workload::minic(
        "bzip2",
        60,
        r#"
long rle_compress(long src, long n, long dst) {
    char *s = src; char *d = dst;
    long o = 0;
    long i = 0;
    while (i < n) {
        long run = 1;
        while (i + run < n && s[i + run] == s[i] && run < 255) run++;
        d[o] = run; d[o + 1] = s[i];
        o += 2; i += run;
    }
    return o;
}
long rle_expand(long src, long n, long dst) {
    char *s = src; char *d = dst;
    long o = 0;
    for (long i = 0; i < n; i += 2) {
        long run = s[i];
        for (long j = 0; j < run; j++) { d[o] = s[i + 1]; o++; }
    }
    return o;
}
long main() {
    long reps = getarg(0);
    long n = 1600;
    long buf = malloc(n);
    char *b = buf;
    for (long i = 0; i < n; i++) b[i] = (i / 13) % 5;
    long comp = malloc(2 * n);
    long back = malloc(n + 16);
    long check = 0;
    for (long r = 0; r < reps; r++) {
        long c = rle_compress(buf, n, comp);
        long e = rle_expand(comp, c, back);
        check += (e == n);
    }
    free(back); free(comp); free(buf);
    return check % 256;
}
"#,
    )
    .pie()
}

fn gcc() -> Workload {
    // A bytecode interpreter with a dense dispatch switch (jump table)
    // — the shape of gcc's giant switches.
    Workload::minic(
        "gcc",
        160,
        r#"
long run_vm(long code, long n, long x) {
    char *c = code;
    long acc = x;
    long pc = 0;
    long steps = 0;
    while (pc < n && steps < 100000) {
        long op = c[pc];
        steps++;
        switch (op) {
            case 0: acc += 1; pc++;
            case 1: acc -= 1; pc++;
            case 2: acc *= 3; pc++;
            case 3: acc /= 2; pc++;
            case 4: acc ^= 21845; pc++;
            case 5: acc <<= 1; pc++;
            case 6: acc >>= 2; pc++;
            case 7: acc %= 65537; pc++;
            default: pc += 2;
        }
    }
    return acc;
}
long main() {
    long reps = getarg(0);
    long n = 512;
    long code = malloc(n);
    char *c = code;
    for (long i = 0; i < n; i++) c[i] = (i * 7 + 3) % 9;
    long acc = 0;
    for (long r = 0; r < reps; r++) acc = (acc + run_vm(code, n, r)) % 1000003;
    free(code);
    return acc % 256;
}
"#,
    )
    .pie()
}

fn mcf() -> Workload {
    // Pointer chasing over linked nodes (network simplex flavour).
    Workload::minic(
        "mcf",
        90,
        r#"
long main() {
    long reps = getarg(0);
    long n = 600;
    long nodes = malloc(n * 24); /* [next, cost, potential] */
    for (long i = 0; i < n; i++) {
        long node = nodes + i * 24;
        *(node) = nodes + ((i * 37 + 11) % n) * 24;
        *(node + 8) = (i * 13) % 97;
        *(node + 16) = 0;
    }
    long total = 0;
    for (long r = 0; r < reps; r++) {
        long cur = nodes;
        for (long s = 0; s < 500; s++) {
            long cost = *(cur + 8);
            *(cur + 16) = *(cur + 16) + cost;
            total += cost;
            cur = *(cur);
        }
    }
    free(nodes);
    return total % 256;
}
"#,
    )
    .pie()
}

fn gobmk() -> Workload {
    // Recursive board evaluation over a 2D array.
    Workload::minic(
        "gobmk",
        7,
        r#"
long board[361];
long flood(long pos, long depth, long color) {
    if (depth == 0) return 1;
    if (pos < 0 || pos >= 361) return 0;
    if (board[pos] != color) return 0;
    long s = 1;
    s += flood(pos - 1, depth - 1, color);
    s += flood(pos + 1, depth - 1, color);
    s += flood(pos - 19, depth - 1, color);
    s += flood(pos + 19, depth - 1, color);
    return s;
}
long main() {
    long reps = getarg(0);
    long acc = 0;
    for (long i = 0; i < 361; i++) board[i] = (i * 31 + 7) % 3;
    for (long r = 0; r < reps; r++) {
        for (long p = 20; p < 340; p += 11) acc += flood(p, 6, board[p]);
        acc = acc % 1000003;
    }
    return acc % 256;
}
"#,
    )
    .pie()
}

fn hmmer() -> Workload {
    // Viterbi-style dynamic programming over a matrix.
    Workload::minic(
        "hmmer",
        24,
        r#"
long main() {
    long reps = getarg(0);
    long states = 32;
    long steps = 160;
    long dp = malloc(2 * states * 8);
    long emit = malloc(states * 8);
    for (long i = 0; i < states; i++) *(emit + i * 8) = (i * 17 + 3) % 29;
    long best = 0;
    for (long r = 0; r < reps; r++) {
        for (long i = 0; i < states; i++) *(dp + i * 8) = 0;
        for (long t = 1; t < steps; t++) {
            long cur = (t % 2) * states;
            long prev = ((t + 1) % 2) * states;
            for (long s = 0; s < states; s++) {
                long stay = *(dp + (prev + s) * 8);
                long from = *(dp + (prev + (s + states - 1) % states) * 8);
                long m = stay > from ? stay : from;
                *(dp + (cur + s) * 8) = m + *(emit + ((s + t) % states) * 8);
            }
        }
        best = (best + *(dp + 5 * 8)) % 1000003;
    }
    free(emit); free(dp);
    return best % 256;
}
"#,
    )
    .pie()
}

fn sjeng() -> Workload {
    // Alpha-beta minimax over a synthetic game tree.
    Workload::minic(
        "sjeng",
        6,
        r#"
long eval(long s) { return (s * 2654435761) % 4093 - 2046; }
long minimax(long state, long depth, long maxing) {
    if (depth == 0) return eval(state);
    long best = maxing ? -100000 : 100000;
    for (long m = 0; m < 4; m++) {
        long child = state * 5 + m + 1;
        long v = minimax(child, depth - 1, !maxing);
        if (maxing) { if (v > best) best = v; }
        else { if (v < best) best = v; }
    }
    return best;
}
long main() {
    long reps = getarg(0);
    long acc = 0;
    for (long r = 0; r < reps; r++) acc = (acc + minimax(r + 1, 6, 1)) % 1000003;
    return acc % 256;
}
"#,
    )
    .pie()
}

fn libquantum() -> Workload {
    // Bit-twiddling over a register array (quantum gate simulation).
    Workload::minic(
        "libquantum",
        140,
        r#"
long main() {
    long reps = getarg(0);
    long n = 1024;
    long reg = malloc(n * 8);
    for (long i = 0; i < n; i++) *(reg + i * 8) = i;
    long acc = 0;
    for (long r = 0; r < reps; r++) {
        for (long i = 0; i < n; i++) {
            long v = *(reg + i * 8);
            v ^= 1 << (i % 16);
            v = (v << 3) | (v >> 13);
            *(reg + i * 8) = v & 65535;
        }
        acc = (acc + *(reg + (r % n) * 8)) % 1000003;
    }
    free(reg);
    return acc % 256;
}
"#,
    )
    .pie()
}

fn h264ref() -> Workload {
    // Block transform + the qsort-comparator callback that trips
    // Lockdown's strong policy (paper §6.2.2).
    Workload::minic(
        "h264ref",
        40,
        r#"
static long cmp_cost(long a, long b) { return a % 997 - b % 997; }
long main() {
    long reps = getarg(0);
    long n = 64;
    long blocks = malloc(n * 8);
    long acc = 0;
    for (long r = 0; r < reps; r++) {
        for (long i = 0; i < n; i++) {
            long px = (i * 73 + r * 31) % 256;
            *(blocks + i * 8) = (px * px + (px << 2)) % 9973;
        }
        qsort(blocks, n, &cmp_cost);
        for (long i = 1; i < n; i++) acc += *(blocks + i * 8) - *(blocks + (i - 1) * 8);
        acc = acc % 1000003;
    }
    free(blocks);
    return acc % 256;
}
"#,
    )
    .pie()
}

fn omnetpp() -> Workload {
    // Discrete-event simulation with virtual-style dispatch through a
    // function-pointer table. Lockdown cannot run it (as in the paper).
    Workload::minic(
        "omnetpp",
        110,
        r#"
long q_time[128];
long q_kind[128];
long handle_arrive(long t) { return t + 3; }
long handle_depart(long t) { return t + 7; }
long handle_timer(long t) { return t + 1; }
long vtable[] = {&handle_arrive, &handle_depart, &handle_timer};
long main() {
    long reps = getarg(0);
    long clock = 0;
    for (long r = 0; r < reps; r++) {
        long head = 0; long tail = 0;
        q_time[0] = clock; q_kind[0] = 0; tail = 1;
        long processed = 0;
        while (head != tail && processed < 64) {
            long t = q_time[head]; long k = q_kind[head];
            head = (head + 1) % 128;
            long h = vtable[k];
            long nt = h(t);
            q_time[tail] = nt; q_kind[tail] = (k + nt) % 3;
            tail = (tail + 1) % 128;
            processed++;
            clock = nt;
        }
        clock = clock % 1000003;
    }
    return clock % 256;
}
"#,
    )
    .lockdown_broken()
}

fn astar() -> Workload {
    // Grid pathfinding: frontier expansion over a 2D cost field.
    Workload::minic(
        "astar",
        26,
        r#"
long main() {
    long reps = getarg(0);
    long w = 48;
    long grid = malloc(w * w * 8);
    long dist = malloc(w * w * 8);
    for (long i = 0; i < w * w; i++) *(grid + i * 8) = (i * 19 + 5) % 9 + 1;
    long acc = 0;
    for (long r = 0; r < reps; r++) {
        for (long i = 0; i < w * w; i++) *(dist + i * 8) = 1000000;
        *(dist) = 0;
        for (long sweep = 0; sweep < 3; sweep++) {
            for (long y = 0; y < w; y++) {
                for (long x = 0; x < w; x++) {
                    long idx = y * w + x;
                    long d = *(dist + idx * 8);
                    if (x + 1 < w) {
                        long c = d + *(grid + (idx + 1) * 8);
                        if (c < *(dist + (idx + 1) * 8)) *(dist + (idx + 1) * 8) = c;
                    }
                    if (y + 1 < w) {
                        long c = d + *(grid + (idx + w) * 8);
                        if (c < *(dist + (idx + w) * 8)) *(dist + (idx + w) * 8) = c;
                    }
                }
            }
        }
        acc = (acc + *(dist + (w * w - 1) * 8)) % 1000003;
    }
    free(dist); free(grid);
    return acc % 256;
}
"#,
    )
}

fn xalancbmk() -> Workload {
    // Tree transformation with per-node-type handlers through function
    // pointers (C++ virtual dispatch flavour).
    Workload::minic(
        "xalancbmk",
        60,
        r#"
long node_kind[512];
long node_val[512];
long xform_text(long v) { return v * 2 + 1; }
long xform_elem(long v) { return v + 17; }
long xform_attr(long v) { return v ^ 255; }
long xform_comment(long v) { return v; }
long handlers[] = {&xform_text, &xform_elem, &xform_attr, &xform_comment};
long walk(long i, long depth) {
    if (i >= 512 || depth > 8) return 0;
    long h = handlers[node_kind[i]];
    long v = h(node_val[i]);
    return v + walk(2 * i + 1, depth + 1) + walk(2 * i + 2, depth + 1);
}
long main() {
    long reps = getarg(0);
    for (long i = 0; i < 512; i++) {
        node_kind[i] = (i * 7 + 1) % 4;
        node_val[i] = i * 3;
    }
    long acc = 0;
    for (long r = 0; r < reps; r++) {
        acc = (acc + walk(0, 0)) % 1000003;
        node_val[r % 512] = acc % 4096;
    }
    return acc % 256;
}
"#,
    )
}

fn bwaves() -> Workload {
    // Blast-wave stencil using the hand-written libjf kernels.
    Workload::minic(
        "bwaves",
        30,
        r#"
long main() {
    long reps = getarg(0);
    long n = 512;
    long grid = malloc(n * 8);
    for (long i = 0; i < n; i++) *(grid + i * 8) = (i * 11) % 101;
    long acc = 0;
    for (long r = 0; r < reps; r++) {
        for (long i = 1; i < n - 1; i++) {
            long l = *(grid + (i - 1) * 8);
            long c = *(grid + i * 8);
            long rr = *(grid + (i + 1) * 8);
            *(grid + i * 8) = (l + 2 * c + rr) / 4;
        }
        acc = (acc + jf_sum(grid, n)) % 1000003;
    }
    free(grid);
    return acc % 256;
}
"#,
    )
    .with_jf()
}

fn gamess() -> Workload {
    // Quantum-chemistry-flavoured loops; compiled with jump tables in
    // .text (the configuration BinCFI's rewriting cannot handle).
    Workload::minic(
        "gamess",
        28,
        r#"
long contract(long kind, long a, long b) {
    switch (kind) {
        case 0: return a + b;
        case 1: return a - b;
        case 2: return a * b % 10007;
        case 3: return (a << 1) + b;
        case 4: return a ^ b;
        case 5: return a % (b + 1);
        default: return 0;
    }
}
long main() {
    long reps = getarg(0);
    long n = 128;
    long ints = malloc(n * 8);
    for (long i = 0; i < n; i++) *(ints + i * 8) = i * i % 4099;
    long acc = 0;
    for (long r = 0; r < reps; r++) {
        for (long i = 0; i < n; i++)
            for (long j = 0; j < 6; j++)
                acc = (acc + contract(j, *(ints + i * 8), i + j)) % 1000003;
    }
    free(ints);
    return acc % 256;
}
"#,
    )
    .with_jf()
    .with_text_tables()
}

fn milc() -> Workload {
    // Lattice sweep with libjf scaling.
    Workload::minic(
        "milc",
        26,
        r#"
long main() {
    long reps = getarg(0);
    long n = 1024;
    long lat = malloc(n * 8);
    for (long i = 0; i < n; i++) *(lat + i * 8) = (i * 7 + 1) % 61;
    long acc = 0;
    for (long r = 0; r < reps; r++) {
        jf_scale(lat, n, 3);
        for (long i = 0; i < n; i++) {
            long v = *(lat + i * 8) % 1009;
            *(lat + i * 8) = v;
            acc += v;
        }
        acc = acc % 1000003;
    }
    free(lat);
    return acc % 256;
}
"#,
    )
    .pie()
    .with_jf()
}

fn zeusmp() -> Workload {
    // Magnetohydrodynamics-flavoured staged update with in-text tables
    // (the second BinCFI failure).
    Workload::minic(
        "zeusmp",
        22,
        r#"
long stage(long s, long v) {
    switch (s) {
        case 0: return v + 11;
        case 1: return v * 3 % 8191;
        case 2: return v ^ 4095;
        case 3: return v >> 1;
        case 4: return v + (v >> 3);
        default: return v;
    }
}
long main() {
    long reps = getarg(0);
    long n = 640;
    long field = malloc(n * 8);
    for (long i = 0; i < n; i++) *(field + i * 8) = i * 5 % 769;
    long acc = 0;
    for (long r = 0; r < reps; r++) {
        for (long s = 0; s < 5; s++)
            for (long i = 0; i < n; i++)
                *(field + i * 8) = stage(s, *(field + i * 8));
        acc = (acc + jf_sum(field, n)) % 1000003;
    }
    free(field);
    return acc % 256;
}
"#,
    )
    .with_jf()
    .with_text_tables()
}

fn gromacs() -> Workload {
    // Particle force accumulation with neighbour lists.
    Workload::minic(
        "gromacs",
        18,
        r#"
long main() {
    long reps = getarg(0);
    long n = 256;
    long pos = malloc(n * 8);
    long force = malloc(n * 8);
    long nbr = malloc(n * 8);
    for (long i = 0; i < n; i++) {
        *(pos + i * 8) = (i * 29 + 7) % 1000;
        *(nbr + i * 8) = (i * 17 + 3) % n;
    }
    long acc = 0;
    for (long r = 0; r < reps; r++) {
        for (long i = 0; i < n; i++) *(force + i * 8) = 0;
        for (long i = 0; i < n; i++) {
            long j = *(nbr + i * 8);
            long d = *(pos + i * 8) - *(pos + j * 8);
            if (d < 0) d = 0 - d;
            long f = 10000 / (d + 1);
            *(force + i * 8) = *(force + i * 8) + f;
            *(force + j * 8) = *(force + j * 8) - f;
        }
        acc = (acc + jf_sum(force, n) + *(force + (r % n) * 8)) % 1000003;
    }
    free(nbr); free(force); free(pos);
    return acc % 256;
}
"#,
    )
    .with_jf()
}

fn cactusadm() -> Workload {
    // Computational-kernel JIT: the main program *generates* its stencil
    // kernels at run time and spends almost all its blocks in them —
    // the 92.4% dynamically-discovered-code outlier of Figure 14.
    let asm = r#"
.section text
.global main
main:
    push fp
    mov fp, sp
    sub sp, 48
    ; reps = getarg(0)
    mov r0, 9
    mov r1, 0
    syscall
    st8 [fp-8], r0
    ; jit = mmap(4096, exec)
    mov r0, 3
    mov r1, 4096
    mov r2, 1
    syscall
    st8 [fp-16], r0
    ; Generate 96 kernels: each is `add r0, K; mul r0, 3; ret`
    mov r8, 0            ; kernel index
gen_loop:
    cmp r8, 96
    jge gen_done
    ld8 r9, [fp-16]
    mov r10, r8
    mul r10, 16          ; 16 bytes per kernel slot
    add r9, r10          ; kernel base
    ; add r0, K  (opcode 0x40, reg byte 0, imm32 = 7*k+1)
    mov r11, 0x40
    st1 [r9], r11
    mov r11, 0
    st1 [r9+1], r11
    mov r11, r8
    mul r11, 7
    add r11, 1
    st4 [r9+2], r11
    ; mul r0, 3 (opcode 0x42, reg 0, imm32 3)
    mov r11, 0x42
    st1 [r9+6], r11
    mov r11, 0
    st1 [r9+7], r11
    mov r11, 3
    st4 [r9+8], r11
    ; ret (0x6c)
    mov r11, 0x6c
    st1 [r9+12], r11
    add r8, 1
    jmp gen_loop
gen_done:
    ; acc = 0; run all kernels reps times
    mov r12, 0           ; acc
    mov r13, 0           ; r
run_loop:
    ld8 r9, [fp-8]
    cmp r13, r9
    jge run_done
    mov r8, 0
kern_loop:
    cmp r8, 96
    jge kern_done
    ld8 r9, [fp-16]
    mov r10, r8
    mul r10, 16
    add r9, r10
    mov r0, r12
    call r9              ; indirect call into generated code
    mov r12, r0
    mod r12, 1000003
    add r8, 1
    jmp kern_loop
kern_done:
    add r13, 1
    jmp run_loop
run_done:
    mov r0, r12
    mod r0, 256
    mov sp, fp
    pop fp
    ret
"#;
    Workload {
        name: "cactusADM",
        source: String::new(),
        extra_asm: Some(asm.to_string()),
        needs_jf: false,
        pie: false,
        tables_in_text: false,
        plugin: None,
        lockdown_fails: false,
        default_arg: 60,
    }
}

fn leslie3d() -> Workload {
    Workload::minic(
        "leslie3d",
        16,
        r#"
long main() {
    long reps = getarg(0);
    long n = 24;
    long a = malloc(n * n * 8);
    for (long i = 0; i < n * n; i++) *(a + i * 8) = (i * 13) % 211;
    long acc = 0;
    for (long r = 0; r < reps; r++) {
        for (long y = 1; y < n - 1; y++)
            for (long x = 1; x < n - 1; x++) {
                long idx = y * n + x;
                long v = *(a + idx * 8) * 4
                       + *(a + (idx - 1) * 8) + *(a + (idx + 1) * 8)
                       + *(a + (idx - n) * 8) + *(a + (idx + n) * 8);
                *(a + idx * 8) = v / 8;
            }
        acc = (acc + jf_sum(a, n * n)) % 1000003;
    }
    free(a);
    return acc % 256;
}
"#,
    )
    .with_jf()
}

fn namd() -> Workload {
    Workload::minic(
        "namd",
        20,
        r#"
long main() {
    long reps = getarg(0);
    long n = 200;
    long x = malloc(n * 8);
    long v = malloc(n * 8);
    for (long i = 0; i < n; i++) { *(x + i * 8) = i * 37 % 500; *(v + i * 8) = 0; }
    long acc = 0;
    for (long r = 0; r < reps; r++) {
        for (long i = 0; i < n; i++) {
            long xi = *(x + i * 8);
            long f = 0;
            for (long j = i + 1; j < n && j < i + 8; j++) {
                long d = xi - *(x + j * 8);
                if (d < 0) d = 0 - d;
                f += 5000 / (d * d + 1);
            }
            *(v + i * 8) = (*(v + i * 8) + f) % 100000;
        }
        for (long i = 0; i < n; i++)
            *(x + i * 8) = (*(x + i * 8) + *(v + i * 8) / 100) % 500;
        acc = (acc + *(x + (r % n) * 8)) % 1000003;
    }
    free(v); free(x);
    return acc % 256;
}
"#,
    )
}

fn dealii() -> Workload {
    // Sparse matrix-vector products (CG flavour); Lockdown fails on it.
    Workload::minic(
        "dealII",
        24,
        r#"
long main() {
    long reps = getarg(0);
    long n = 160;
    long nnz = n * 5;
    long col = malloc(nnz * 8);
    long val = malloc(nnz * 8);
    long x = malloc(n * 8);
    long y = malloc(n * 8);
    for (long i = 0; i < nnz; i++) {
        *(col + i * 8) = (i * 31 + 7) % n;
        *(val + i * 8) = (i * 3 + 1) % 17;
    }
    for (long i = 0; i < n; i++) *(x + i * 8) = i + 1;
    long acc = 0;
    for (long r = 0; r < reps; r++) {
        for (long i = 0; i < n; i++) {
            long s = 0;
            for (long k = 0; k < 5; k++) {
                long e = i * 5 + k;
                s += *(val + e * 8) * *(x + *(col + e * 8) * 8);
            }
            *(y + i * 8) = s;
        }
        for (long i = 0; i < n; i++) *(x + i * 8) = *(y + i * 8) % 10007;
        acc = (acc + *(x + (r % n) * 8)) % 1000003;
    }
    free(y); free(x); free(val); free(col);
    return acc % 256;
}
"#,
    )
    .lockdown_broken()
}

fn soplex() -> Workload {
    Workload::minic(
        "soplex",
        18,
        r#"
long main() {
    long reps = getarg(0);
    long rows = 40;
    long cols = 60;
    long tab = malloc(rows * cols * 8);
    for (long i = 0; i < rows * cols; i++) *(tab + i * 8) = (i * 23 + 11) % 199 - 99;
    long acc = 0;
    for (long r = 0; r < reps; r++) {
        /* find the most negative entry in row 0, pivot on its column */
        long best = 0; long bi = 0;
        for (long j = 0; j < cols; j++) {
            long v = *(tab + j * 8);
            if (v < best) { best = v; bi = j; }
        }
        for (long i = 1; i < rows; i++) {
            long piv = *(tab + (i * cols + bi) * 8);
            if (piv == 0) piv = 1;
            for (long j = 0; j < cols; j++) {
                long v = *(tab + (i * cols + j) * 8);
                *(tab + (i * cols + j) * 8) = (v * 3 - piv) % 10007;
            }
        }
        acc = (acc + *(tab + bi * 8)) % 1000003;
    }
    free(tab);
    return acc % 256;
}
"#,
    )
}

fn povray() -> Workload {
    // Fixed-point ray/sphere intersection tests.
    Workload::minic(
        "povray",
        30,
        r#"
long isqrt(long v) {
    if (v < 0) return 0;
    long x = v; long y = 1;
    while (x > y) { x = (x + y) / 2; y = v / (x + 1) + 1; if (y > x) y = x; }
    return x;
}
long main() {
    long reps = getarg(0);
    long spheres = 24;
    long cx[32]; long cy[32]; long cr[32];
    for (long i = 0; i < spheres; i++) {
        cx[i] = (i * 97) % 400 - 200;
        cy[i] = (i * 61) % 400 - 200;
        cr[i] = 20 + i % 30;
    }
    long hits = 0;
    for (long r = 0; r < reps; r++) {
        for (long ray = 0; ray < 64; ray++) {
            long ox = (ray * 13 + r) % 400 - 200;
            long oy = (ray * 7 + r * 3) % 400 - 200;
            for (long s = 0; s < spheres; s++) {
                long dx = ox - cx[s]; long dy = oy - cy[s];
                long d2 = dx * dx + dy * dy;
                if (isqrt(d2) < cr[s]) hits++;
            }
        }
        hits = hits % 1000003;
    }
    return hits % 256;
}
"#,
    )
}

fn calculix() -> Workload {
    Workload::minic(
        "calculix",
        20,
        r#"
long main() {
    long reps = getarg(0);
    long n = 96;
    long k = malloc(n * n * 8);
    long u = malloc(n * 8);
    long f = malloc(n * 8);
    for (long i = 0; i < n; i++) {
        *(u + i * 8) = 0;
        *(f + i * 8) = (i * 7 + 1) % 53;
        for (long j = 0; j < n; j++)
            *(k + (i * n + j) * 8) = (i == j) ? 4 : ((i - j == 1 || j - i == 1) ? 1 : 0);
    }
    long acc = 0;
    for (long r = 0; r < reps; r++) {
        /* one Jacobi sweep */
        for (long i = 0; i < n; i++) {
            long s = *(f + i * 8) * 100;
            if (i > 0) s -= *(u + (i - 1) * 8);
            if (i < n - 1) s -= *(u + (i + 1) * 8);
            *(u + i * 8) = s / 4;
        }
        acc = (acc + jf_sum(u, n)) % 1000003;
    }
    free(f); free(u); free(k);
    return acc % 256;
}
"#,
    )
    .with_jf()
}

fn gemsfdtd() -> Workload {
    Workload::minic(
        "GemsFDTD",
        14,
        r#"
long main() {
    long reps = getarg(0);
    long n = 20;
    long e = malloc(n * n * 8);
    long h = malloc(n * n * 8);
    for (long i = 0; i < n * n; i++) { *(e + i * 8) = i % 11; *(h + i * 8) = 0; }
    long acc = 0;
    for (long r = 0; r < reps; r++) {
        for (long y = 0; y < n - 1; y++)
            for (long x = 0; x < n - 1; x++) {
                long idx = y * n + x;
                *(h + idx * 8) = *(h + idx * 8)
                    + (*(e + (idx + 1) * 8) - *(e + idx * 8))
                    - (*(e + (idx + n) * 8) - *(e + idx * 8));
            }
        for (long y = 1; y < n; y++)
            for (long x = 1; x < n; x++) {
                long idx = y * n + x;
                *(e + idx * 8) = (*(e + idx * 8)
                    + (*(h + idx * 8) - *(h + (idx - 1) * 8)) / 2) % 100003;
            }
        acc = (acc + jf_sum(e, n * n)) % 1000003;
    }
    free(h); free(e);
    return acc % 256;
}
"#,
    )
    .with_jf()
}

fn tonto() -> Workload {
    // Integral tables driven through the libjf mid-function entry point
    // (the §4.2.3 allow-list case).
    Workload::minic(
        "tonto",
        40,
        r#"
long main() {
    long reps = getarg(0);
    long n = 128;
    long shells = malloc(n * 8);
    for (long i = 0; i < n; i++) *(shells + i * 8) = (i * 19 + 5) % 77;
    long fast = *(&jf_entry_table);
    long acc = 0;
    for (long r = 0; r < reps; r++) {
        for (long i = 0; i < n; i++) {
            long v = *(shells + i * 8);
            acc = (acc + fast(v, i)) % 1000003;
        }
        jf_scale(shells, n, 2);
        for (long i = 0; i < n; i++) *(shells + i * 8) = *(shells + i * 8) % 97;
    }
    free(shells);
    return acc % 256;
}
"#,
    )
    .with_jf()
}

fn lbm() -> Workload {
    // Lattice-Boltzmann: the collision kernel lives in a dlopen'ed
    // plugin — invisible to ldd and therefore to the static analyzer;
    // only two basic blocks, but they dominate lbm's dynamic-block
    // fraction (Figure 14).
    let plugin_asm = r#"
.section text
.global lbm_collide
lbm_collide:
    ; collide(cell, weight): one mixing step with a relaxation branch
    mov r2, r0
    mul r2, 3
    add r2, r1
    cmp r2, 65536
    jl lbm_small
    mod r2, 131071
lbm_small:
    mov r0, r2
    ret
"#;
    Workload {
        name: "lbm",
        source: r#"
long main() {
    long reps = getarg(0);
    long n = 400;
    long cells = malloc(n * 8);
    for (long i = 0; i < n; i++) *(cells + i * 8) = (i * 3 + 1) % 577;
    long h = dlopen("liblbm.so");
    long collide = dlsym(h, "lbm_collide");
    long acc = 0;
    for (long r = 0; r < reps; r++) {
        for (long i = 0; i < n; i++) {
            long c = collide(*(cells + i * 8), i % 9);
            *(cells + i * 8) = c;
            acc += c;
        }
        acc = acc % 1000003;
    }
    free(cells);
    return acc % 256;
}
"#
        .into(),
        extra_asm: None,
        needs_jf: false,
        pie: true,
        tables_in_text: false,
        plugin: Some(("liblbm.so", plugin_asm.to_string())),
        lockdown_fails: false,
        default_arg: 70,
    }
}

fn sphinx3() -> Workload {
    Workload::minic(
        "sphinx3",
        24,
        r#"
long main() {
    long reps = getarg(0);
    long states = 48;
    long frames = 64;
    long score = malloc(states * 8);
    long model = malloc(states * 8);
    for (long i = 0; i < states; i++) {
        *(score + i * 8) = 0;
        *(model + i * 8) = (i * 41 + 13) % 83;
    }
    long best = 0;
    for (long r = 0; r < reps; r++) {
        for (long t = 0; t < frames; t++) {
            long obs = (t * 29 + r * 7) % 97;
            for (long s = 0; s < states; s++) {
                long m = *(model + s * 8);
                long d = obs - m;
                if (d < 0) d = 0 - d;
                *(score + s * 8) = (*(score + s * 8) + 100 - d) % 100003;
            }
        }
        long mx = 0;
        for (long s = 0; s < states; s++)
            if (*(score + s * 8) > mx) mx = *(score + s * 8);
        best = (best + mx) % 1000003;
    }
    free(model); free(score);
    return best % 256;
}
"#,
    )
    .pie()
}
