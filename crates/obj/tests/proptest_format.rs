//! Property tests: arbitrary objects and images survive serialization,
//! and corrupted containers never panic the decoder.

use janitizer_obj::*;
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = SectionKind> {
    prop::sample::select(SectionKind::LAYOUT_ORDER.to_vec())
}

fn arb_section() -> impl Strategy<Value = Section> {
    (
        arb_kind(),
        0u64..0x1_0000,
        prop::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(kind, addr, data)| {
            let mut s = if kind == SectionKind::Bss {
                Section::zeroed(kind, data.len() as u64 + 8)
            } else {
                Section::new(kind, data)
            };
            s.addr = addr;
            s
        })
}

fn arb_symbol() -> impl Strategy<Value = Symbol> {
    (
        "[a-zA-Z_][a-zA-Z0-9_]{0,14}",
        any::<bool>(),
        any::<bool>(),
        prop::option::of(arb_kind()),
        0u64..0x1_0000,
        0u64..256,
    )
        .prop_map(|(name, func, global, section, value, size)| Symbol {
            name,
            kind: if func { SymKind::Func } else { SymKind::Object },
            bind: if global { SymBind::Global } else { SymBind::Local },
            section,
            value,
            size,
        })
}

fn arb_reloc() -> impl Strategy<Value = Reloc> {
    (
        arb_kind(),
        0u64..0x1000,
        prop::sample::select(vec![
            RelocKind::Abs64,
            RelocKind::Pc32,
            RelocKind::GotPc32,
            RelocKind::Plt32,
        ]),
        "[a-z_][a-z0-9_]{0,10}",
        -1000i64..1000,
    )
        .prop_map(|(section, offset, kind, symbol, addend)| Reloc {
            section,
            offset,
            kind,
            symbol,
            addend,
        })
}

fn arb_object() -> impl Strategy<Value = Object> {
    (
        "[a-z][a-z0-9_.]{0,12}",
        prop::collection::vec(arb_section(), 0..6),
        prop::collection::vec(arb_symbol(), 0..12),
        prop::collection::vec(arb_reloc(), 0..12),
    )
        .prop_map(|(name, sections, symbols, relocs)| Object {
            name,
            sections,
            symbols,
            relocs,
        })
}

fn arb_image() -> impl Strategy<Value = Image> {
    (
        arb_object(),
        any::<bool>(),
        any::<bool>(),
        prop::collection::vec("[a-z]{1,8}\\.so", 0..4),
        prop::collection::vec((0u64..0x1000, "[a-z]{1,8}", any::<bool>()), 0..6),
    )
        .prop_map(|(obj, pic, shared, needed, rels)| {
            let mut img = Image::new(obj.name.clone(), pic, shared);
            img.sections = obj.sections;
            img.symbols = obj.symbols;
            img.needed = needed;
            img.entry = 0x40;
            img.init = Some(0x80);
            img.dyn_relocs = rels
                .into_iter()
                .map(|(offset, sym, by_symbol)| DynReloc {
                    offset,
                    target: if by_symbol {
                        DynTarget::Symbol(sym)
                    } else {
                        DynTarget::Base(offset)
                    },
                })
                .collect();
            img
        })
}

proptest! {
    #[test]
    fn object_roundtrip(obj in arb_object()) {
        let back = Object::from_bytes(&obj.to_bytes()).unwrap();
        prop_assert_eq!(obj, back);
    }

    #[test]
    fn image_roundtrip(img in arb_image()) {
        let back = Image::from_bytes(&img.to_bytes()).unwrap();
        prop_assert_eq!(img, back);
    }

    /// Decoding arbitrary garbage never panics.
    #[test]
    fn decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Object::from_bytes(&bytes);
        let _ = Image::from_bytes(&bytes);
    }

    /// Truncating a valid encoding at any point errors instead of
    /// misparsing.
    #[test]
    fn truncation_always_detected(obj in arb_object(), frac in 0.0f64..1.0) {
        let bytes = obj.to_bytes();
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            prop_assert!(Object::from_bytes(&bytes[..cut]).is_err());
        }
    }
}
