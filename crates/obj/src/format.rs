//! Little-endian binary (de)serialization helpers shared by [`crate::Object`],
//! [`crate::Image`] and the rewrite-rule files in `janitizer-rules`.

use std::fmt;

/// Error produced when deserializing a JOF container or rule file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FormatError {
    /// The magic bytes at the start of the buffer are wrong.
    BadMagic {
        /// Magic that was expected.
        expected: [u8; 4],
        /// Magic actually present.
        found: [u8; 4],
    },
    /// The format version is unsupported.
    BadVersion(u32),
    /// The buffer ended in the middle of a field.
    Truncated,
    /// A string field is not valid UTF-8.
    BadString,
    /// An enum discriminant is out of range.
    BadTag {
        /// Name of the field being decoded.
        what: &'static str,
        /// Offending discriminant.
        value: u32,
    },
    /// A structurally well-formed field carries a value that violates a
    /// format invariant (overlong spans, overflowing ranges, checksum
    /// mismatches). Decoders reject these up front so every consumer can
    /// do address arithmetic on decoded values without overflow checks.
    Invalid {
        /// Name of the violated invariant.
        what: &'static str,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            FormatError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            FormatError::Truncated => write!(f, "truncated input"),
            FormatError::BadString => write!(f, "invalid UTF-8 in string field"),
            FormatError::BadTag { what, value } => write!(f, "invalid {what} tag {value}"),
            FormatError::Invalid { what } => write!(f, "invalid {what}"),
        }
    }
}

impl std::error::Error for FormatError {}

/// FNV-1a (64-bit) over a byte slice: the content checksum used by the
/// rule-file integrity header and the module fingerprint. Not
/// cryptographic — it guards against corruption and staleness, not
/// adversarial collision.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Safe preallocation size for a decoder about to read `count` records of
/// at least `min_record_bytes` each: never more than the remaining input
/// could actually hold, so a corrupted length field cannot force a huge
/// allocation before the (inevitable) truncation error surfaces.
pub fn cap_alloc(count: u32, remaining: usize, min_record_bytes: usize) -> usize {
    (count as usize).min(remaining / min_record_bytes.max(1))
}

/// Append-only little-endian writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Creates a writer that begins with `magic` and a version word.
    pub fn with_header(magic: &[u8; 4], version: u32) -> Writer {
        let mut w = Writer::new();
        w.buf.extend_from_slice(magic);
        w.put_u32(version);
        w
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed byte blob.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Finishes and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Checked little-endian reader over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps `buf` for reading.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    /// Wraps `buf`, checking a 4-byte magic and returning the version word.
    ///
    /// # Errors
    ///
    /// Fails if the buffer is too short or the magic does not match.
    pub fn with_header(buf: &'a [u8], magic: &[u8; 4]) -> Result<(Reader<'a>, u32), FormatError> {
        if buf.len() < 8 {
            return Err(FormatError::Truncated);
        }
        let found: [u8; 4] = buf[..4].try_into().unwrap();
        if &found != magic {
            return Err(FormatError::BadMagic {
                expected: *magic,
                found,
            });
        }
        let mut r = Reader { buf: &buf[4..] };
        let version = r.u32()?;
        Ok((r, version))
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
        if self.buf.len() < n {
            return Err(FormatError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, FormatError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, FormatError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, FormatError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64, FormatError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed string.
    pub fn str(&mut self) -> Result<String, FormatError> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| FormatError::BadString)
    }

    /// Reads a length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<Vec<u8>, FormatError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_str("hello");
        w.put_bytes(&[1, 2, 3]);
        let b = w.into_bytes();
        let mut r = Reader::new(&b);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn header_check() {
        let w = Writer::with_header(b"TEST", 3);
        let b = w.into_bytes();
        let (_, v) = Reader::with_header(&b, b"TEST").unwrap();
        assert_eq!(v, 3);
        assert!(matches!(
            Reader::with_header(&b, b"NOPE"),
            Err(FormatError::BadMagic { .. })
        ));
        assert!(matches!(
            Reader::with_header(&b[..6], b"TEST"),
            Err(FormatError::Truncated)
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = Writer::new();
        w.put_u64(1);
        let b = w.into_bytes();
        let mut r = Reader::new(&b[..5]);
        assert_eq!(r.u64().unwrap_err(), FormatError::Truncated);
        // A string whose length prefix exceeds the remaining bytes.
        let mut w2 = Writer::new();
        w2.put_u32(1000);
        let b2 = w2.into_bytes();
        let mut r2 = Reader::new(&b2);
        assert_eq!(r2.str().unwrap_err(), FormatError::Truncated);
    }
}
