//! Relocatable objects: sections, symbols and relocations.

use crate::format::{cap_alloc, FormatError, Reader, Writer};
use crate::{MAX_IMAGE_SPAN, OBJ_MAGIC};

const OBJ_VERSION: u32 = 1;

/// The role of a section, which determines placement and permissions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum SectionKind {
    /// Initialization code, run before `main` (like ELF `.init`).
    Init = 0,
    /// Procedure-linkage-table stubs (linker-synthesized).
    Plt = 1,
    /// Ordinary program code.
    Text = 2,
    /// Finalization code, run at exit (like ELF `.fini`).
    Fini = 3,
    /// Read-only data.
    Rodata = 4,
    /// Global-offset table (linker-synthesized).
    Got = 5,
    /// Initialized writable data.
    Data = 6,
    /// Zero-initialized writable data (occupies no file bytes).
    Bss = 7,
}

impl SectionKind {
    /// All kinds, in their canonical layout order within an image.
    pub const LAYOUT_ORDER: [SectionKind; 8] = [
        SectionKind::Init,
        SectionKind::Plt,
        SectionKind::Text,
        SectionKind::Fini,
        SectionKind::Rodata,
        SectionKind::Got,
        SectionKind::Data,
        SectionKind::Bss,
    ];

    /// Whether the section holds executable code.
    pub fn is_code(self) -> bool {
        matches!(
            self,
            SectionKind::Init | SectionKind::Plt | SectionKind::Text | SectionKind::Fini
        )
    }

    /// Whether the section is writable at run time.
    pub fn is_writable(self) -> bool {
        matches!(self, SectionKind::Got | SectionKind::Data | SectionKind::Bss)
    }

    /// Conventional section name (`.text`, `.data`, ...).
    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Init => ".init",
            SectionKind::Plt => ".plt",
            SectionKind::Text => ".text",
            SectionKind::Fini => ".fini",
            SectionKind::Rodata => ".rodata",
            SectionKind::Got => ".got",
            SectionKind::Data => ".data",
            SectionKind::Bss => ".bss",
        }
    }

    fn from_u8(v: u8) -> Result<SectionKind, FormatError> {
        Self::LAYOUT_ORDER
            .iter()
            .copied()
            .find(|k| *k as u8 == v)
            .ok_or(FormatError::BadTag {
                what: "section kind",
                value: v as u32,
            })
    }
}

/// A named chunk of bytes within an [`Object`] or [`crate::Image`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Section {
    /// Role of the section.
    pub kind: SectionKind,
    /// Start address. Section-relative 0 in objects; module-relative (PIC)
    /// or absolute (non-PIC executable) in images.
    pub addr: u64,
    /// Contents. Empty for `.bss`.
    pub data: Vec<u8>,
    /// Size in memory; equals `data.len()` except for `.bss`.
    pub mem_size: u64,
}

impl Section {
    /// Decode-time invariants for a section read from untrusted bytes:
    /// the span must fit in [`MAX_IMAGE_SPAN`] without overflow and the
    /// file bytes must not exceed the memory size. Enforced by both
    /// [`Object::from_bytes`] and [`crate::Image::from_bytes`] so every
    /// consumer can rely on `addr + mem_size` arithmetic being safe.
    pub(crate) fn validate(&self) -> Result<(), FormatError> {
        match self.addr.checked_add(self.mem_size) {
            Some(end) if end <= MAX_IMAGE_SPAN => {}
            _ => return Err(FormatError::Invalid { what: "section span" }),
        }
        if self.data.len() as u64 > self.mem_size {
            return Err(FormatError::Invalid {
                what: "section data size",
            });
        }
        Ok(())
    }

    /// Creates a section whose memory size equals its data length.
    pub fn new(kind: SectionKind, data: Vec<u8>) -> Section {
        let mem_size = data.len() as u64;
        Section {
            kind,
            addr: 0,
            data,
            mem_size,
        }
    }

    /// Creates a `.bss`-style section of `size` zero bytes.
    pub fn zeroed(kind: SectionKind, size: u64) -> Section {
        Section {
            kind,
            addr: 0,
            data: Vec::new(),
            mem_size: size,
        }
    }

    /// Address one past the section's last byte.
    pub fn end(&self) -> u64 {
        self.addr + self.mem_size
    }

    /// Whether `addr` falls inside this section.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.addr && addr < self.end()
    }
}

/// Whether a symbol names code or data.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum SymKind {
    /// A function entry point.
    Func = 0,
    /// A data object.
    Object = 1,
}

/// Symbol binding/visibility.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum SymBind {
    /// Visible only within the defining module.
    Local = 0,
    /// Visible across modules; participates in dynamic linking.
    Global = 1,
}

/// A symbol-table entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Code or data.
    pub kind: SymKind,
    /// Local or global.
    pub bind: SymBind,
    /// Defining section, or `None` for undefined (imported) symbols.
    pub section: Option<SectionKind>,
    /// Value: section-relative in objects, module-relative in images.
    pub value: u64,
    /// Size in bytes (0 when unknown).
    pub size: u64,
}

impl Symbol {
    /// Whether the symbol is undefined and must be resolved at link or
    /// load time.
    pub fn is_undefined(&self) -> bool {
        self.section.is_none()
    }

    /// Decode-time invariant for a symbol read from untrusted bytes: its
    /// `[value, value + size]` range must fit in [`MAX_IMAGE_SPAN`], so
    /// range queries like [`crate::Image::function_containing`] cannot
    /// overflow.
    pub(crate) fn validate(&self) -> Result<(), FormatError> {
        match self.value.checked_add(self.size) {
            Some(end) if end < MAX_IMAGE_SPAN => Ok(()),
            _ => Err(FormatError::Invalid { what: "symbol range" }),
        }
    }
}

/// Relocation kinds understood by the linker and loader.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum RelocKind {
    /// Patch 8 bytes with the absolute address `S + A`.
    Abs64 = 0,
    /// Patch 4 bytes with `S + A - P` where `P` is the address *after* the
    /// 4 patched bytes (matching JX-64's end-of-instruction-relative
    /// branches and `lea pc` displacements).
    Pc32 = 1,
    /// Like [`RelocKind::Pc32`], but `S` is the address of the symbol's GOT
    /// slot; forces the linker to allocate one.
    GotPc32 = 2,
    /// Like [`RelocKind::Pc32`], but `S` is the symbol's PLT stub when the
    /// symbol is (or may be) defined in another module.
    Plt32 = 3,
}

impl RelocKind {
    fn from_u8(v: u8) -> Result<RelocKind, FormatError> {
        Ok(match v {
            0 => RelocKind::Abs64,
            1 => RelocKind::Pc32,
            2 => RelocKind::GotPc32,
            3 => RelocKind::Plt32,
            _ => {
                return Err(FormatError::BadTag {
                    what: "relocation kind",
                    value: v as u32,
                })
            }
        })
    }
}

/// A relocation record in a relocatable object.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Reloc {
    /// Section whose contents are patched.
    pub section: SectionKind,
    /// Offset of the patched bytes within that section.
    pub offset: u64,
    /// How to patch.
    pub kind: RelocKind,
    /// Name of the referenced symbol.
    pub symbol: String,
    /// Constant addend.
    pub addend: i64,
}

/// A relocatable object file: the assembler's output, the linker's input.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Object {
    /// Object name (usually the source file name).
    pub name: String,
    /// Sections present in this object (at most one per [`SectionKind`]).
    pub sections: Vec<Section>,
    /// Symbol table.
    pub symbols: Vec<Symbol>,
    /// Relocations to apply at link time.
    pub relocs: Vec<Reloc>,
}

impl Object {
    /// Creates an empty object with the given name.
    pub fn new(name: impl Into<String>) -> Object {
        Object {
            name: name.into(),
            ..Object::default()
        }
    }

    /// Returns the section of the given kind, if present.
    pub fn section(&self, kind: SectionKind) -> Option<&Section> {
        self.sections.iter().find(|s| s.kind == kind)
    }

    /// Returns a defined symbol by name.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Serializes the object.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_header(OBJ_MAGIC, OBJ_VERSION);
        w.put_str(&self.name);
        w.put_u32(self.sections.len() as u32);
        for s in &self.sections {
            w.put_u8(s.kind as u8);
            w.put_u64(s.addr);
            w.put_u64(s.mem_size);
            w.put_bytes(&s.data);
        }
        w.put_u32(self.symbols.len() as u32);
        for s in &self.symbols {
            w.put_str(&s.name);
            w.put_u8(s.kind as u8);
            w.put_u8(s.bind as u8);
            match s.section {
                Some(k) => {
                    w.put_u8(1);
                    w.put_u8(k as u8);
                }
                None => {
                    w.put_u8(0);
                    w.put_u8(0);
                }
            }
            w.put_u64(s.value);
            w.put_u64(s.size);
        }
        w.put_u32(self.relocs.len() as u32);
        for r in &self.relocs {
            w.put_u8(r.section as u8);
            w.put_u64(r.offset);
            w.put_u8(r.kind as u8);
            w.put_str(&r.symbol);
            w.put_i64(r.addend);
        }
        w.into_bytes()
    }

    /// Deserializes an object.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] on bad magic, truncation or invalid tags.
    pub fn from_bytes(bytes: &[u8]) -> Result<Object, FormatError> {
        let (mut r, version) = Reader::with_header(bytes, OBJ_MAGIC)?;
        if version != OBJ_VERSION {
            return Err(FormatError::BadVersion(version));
        }
        let name = r.str()?;
        let nsec = r.u32()?;
        // Preallocations are capped by what the remaining input could
        // actually encode: a corrupted count field yields a clean
        // `Truncated` error, never a monster allocation.
        let mut sections = Vec::with_capacity(cap_alloc(nsec, r.remaining(), 21));
        for _ in 0..nsec {
            let kind = SectionKind::from_u8(r.u8()?)?;
            let addr = r.u64()?;
            let mem_size = r.u64()?;
            let data = r.bytes()?;
            let s = Section {
                kind,
                addr,
                data,
                mem_size,
            };
            s.validate()?;
            sections.push(s);
        }
        let nsym = r.u32()?;
        let mut symbols = Vec::with_capacity(cap_alloc(nsym, r.remaining(), 24));
        for _ in 0..nsym {
            let name = r.str()?;
            let kind = match r.u8()? {
                0 => SymKind::Func,
                1 => SymKind::Object,
                v => {
                    return Err(FormatError::BadTag {
                        what: "symbol kind",
                        value: v as u32,
                    })
                }
            };
            let bind = match r.u8()? {
                0 => SymBind::Local,
                1 => SymBind::Global,
                v => {
                    return Err(FormatError::BadTag {
                        what: "symbol binding",
                        value: v as u32,
                    })
                }
            };
            let has_section = r.u8()? != 0;
            let raw_kind = r.u8()?;
            let section = if has_section {
                Some(SectionKind::from_u8(raw_kind)?)
            } else {
                None
            };
            let value = r.u64()?;
            let size = r.u64()?;
            let sym = Symbol {
                name,
                kind,
                bind,
                section,
                value,
                size,
            };
            sym.validate()?;
            symbols.push(sym);
        }
        let nrel = r.u32()?;
        let mut relocs = Vec::with_capacity(cap_alloc(nrel, r.remaining(), 22));
        for _ in 0..nrel {
            let section = SectionKind::from_u8(r.u8()?)?;
            let offset = r.u64()?;
            if offset > MAX_IMAGE_SPAN {
                return Err(FormatError::Invalid {
                    what: "relocation offset",
                });
            }
            let kind = RelocKind::from_u8(r.u8()?)?;
            let symbol = r.str()?;
            let addend = r.i64()?;
            relocs.push(Reloc {
                section,
                offset,
                kind,
                symbol,
                addend,
            });
        }
        Ok(Object {
            name,
            sections,
            symbols,
            relocs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_object() -> Object {
        let mut o = Object::new("sample.jo");
        o.sections.push(Section::new(SectionKind::Text, vec![0x6c, 0x00]));
        o.sections.push(Section::new(SectionKind::Data, vec![0; 16]));
        o.sections.push(Section::zeroed(SectionKind::Bss, 64));
        o.symbols.push(Symbol {
            name: "main".into(),
            kind: SymKind::Func,
            bind: SymBind::Global,
            section: Some(SectionKind::Text),
            value: 0,
            size: 2,
        });
        o.symbols.push(Symbol {
            name: "puts".into(),
            kind: SymKind::Func,
            bind: SymBind::Global,
            section: None,
            value: 0,
            size: 0,
        });
        o.relocs.push(Reloc {
            section: SectionKind::Text,
            offset: 1,
            kind: RelocKind::Plt32,
            symbol: "puts".into(),
            addend: 0,
        });
        o
    }

    #[test]
    fn object_roundtrip() {
        let o = sample_object();
        let bytes = o.to_bytes();
        let back = Object::from_bytes(&bytes).unwrap();
        assert_eq!(o, back);
    }

    #[test]
    fn undefined_symbol_detection() {
        let o = sample_object();
        assert!(!o.symbol("main").unwrap().is_undefined());
        assert!(o.symbol("puts").unwrap().is_undefined());
        assert!(o.symbol("nope").is_none());
    }

    #[test]
    fn section_kind_properties() {
        assert!(SectionKind::Text.is_code());
        assert!(SectionKind::Plt.is_code());
        assert!(!SectionKind::Data.is_code());
        assert!(SectionKind::Data.is_writable());
        assert!(!SectionKind::Rodata.is_writable());
        assert_eq!(SectionKind::Text.name(), ".text");
    }

    #[test]
    fn section_contains() {
        let mut s = Section::new(SectionKind::Text, vec![0; 10]);
        s.addr = 100;
        assert!(s.contains(100));
        assert!(s.contains(109));
        assert!(!s.contains(110));
        assert!(!s.contains(99));
        assert_eq!(s.end(), 110);
    }

    #[test]
    fn corrupt_input_rejected() {
        let o = sample_object();
        let mut bytes = o.to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Object::from_bytes(&bytes),
            Err(FormatError::BadMagic { .. })
        ));
        let bytes = o.to_bytes();
        assert!(Object::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }
}
