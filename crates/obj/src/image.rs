//! Linked images: executables and shared objects ready to be loaded.

use crate::format::{checksum64, FormatError, Reader, Writer};
use crate::object::{Section, SectionKind, SymBind, SymKind, Symbol};
use crate::{IMG_MAGIC, MAX_IMAGE_SPAN};

const IMG_VERSION: u32 = 1;

/// Alignment of each section within an image's address space.
pub const SECTION_ALIGN: u64 = 0x40;

/// The CET-style landing-pad anchor: the encoding of
/// `test r0, 0x414c50` — a flags-only instruction with a magic
/// immediate (`"PLA"`), executable as a no-op at any indirect-entry
/// point, analogous to x86 `ENDBR64`. Toolchains that opt in place it at
/// indirect-call/jump targets; [`Image::anchor_addrs`] scans for it and
/// anchor-aware disassembly backends treat the hits as sound
/// indirect-target ground truth.
pub const ANCHOR_SEQ: [u8; 6] = [0x4c, 0x00, 0x50, 0x4c, 0x41, 0x00];

/// One procedure-linkage-table stub within an [`Image`].
///
/// A PLT stub is the local, statically-known entry point for a function
/// that may live in another module; calls to it go through the GOT slot at
/// `got_offset`, which the loader binds either eagerly or lazily.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PltEntry {
    /// Imported symbol name.
    pub symbol: String,
    /// Module-relative address of the stub in `.plt`.
    pub plt_offset: u64,
    /// Module-relative address of the associated GOT slot.
    pub got_offset: u64,
}

/// What a dynamic relocation resolves to.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DynTarget {
    /// The load-time address of a named symbol (searched across modules).
    Symbol(String),
    /// `module_load_base + offset` — a module-local pointer that only needs
    /// rebasing (PIC images only).
    Base(u64),
}

/// An 8-byte slot the loader must patch when the module is loaded.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DynReloc {
    /// Module-relative address of the slot.
    pub offset: u64,
    /// Value to store.
    pub target: DynTarget,
}

/// A linked module: the loader's unit of mapping, and the static
/// analyzer's unit of analysis.
///
/// Position-independent images have `pic == true` and addresses relative
/// to 0; position-dependent executables have `pic == false` and absolute
/// addresses starting at [`crate::IMAGE_BASE`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Image {
    /// Module name (e.g. `a.out`, `libjc.so`).
    pub name: String,
    /// Whether the image is position-independent.
    pub pic: bool,
    /// Whether this is a shared object (as opposed to the main executable).
    pub shared: bool,
    /// Whether the full symbol table was stripped, leaving only exports.
    /// JCFI falls back to a weaker policy for stripped modules (§4.2.2).
    pub stripped: bool,
    /// Entry point (for executables): address of `_start`.
    pub entry: u64,
    /// Address of the `.init` routine to run at load, if any.
    pub init: Option<u64>,
    /// Address of the `.fini` routine to run at exit, if any.
    pub fini: Option<u64>,
    /// Sections with their final (module-relative or absolute) addresses.
    pub sections: Vec<Section>,
    /// Symbol table (module-relative values). Contains at least the
    /// exported symbols; full function symbols unless `stripped`.
    pub symbols: Vec<Symbol>,
    /// Names of shared objects this module depends on (like `DT_NEEDED`).
    pub needed: Vec<String>,
    /// PLT stubs for imported functions.
    pub plt: Vec<PltEntry>,
    /// Dynamic relocations the loader applies at load time.
    pub dyn_relocs: Vec<DynReloc>,
}

impl Image {
    /// Creates an empty image.
    pub fn new(name: impl Into<String>, pic: bool, shared: bool) -> Image {
        Image {
            name: name.into(),
            pic,
            shared,
            stripped: false,
            entry: 0,
            init: None,
            fini: None,
            sections: Vec::new(),
            symbols: Vec::new(),
            needed: Vec::new(),
            plt: Vec::new(),
            dyn_relocs: Vec::new(),
        }
    }

    /// Returns the section of the given kind, if present.
    pub fn section(&self, kind: SectionKind) -> Option<&Section> {
        self.sections.iter().find(|s| s.kind == kind)
    }

    /// Returns the section containing `addr` (module-relative/absolute,
    /// matching the image's own address space).
    pub fn section_containing(&self, addr: u64) -> Option<&Section> {
        self.sections.iter().find(|s| s.contains(addr))
    }

    /// Iterates over the executable sections in layout order.
    pub fn code_sections(&self) -> impl Iterator<Item = &Section> {
        self.sections.iter().filter(|s| s.kind.is_code())
    }

    /// Total bytes of executable code (the `S` denominator of the static
    /// AIR metric).
    pub fn code_bytes(&self) -> u64 {
        self.code_sections().map(|s| s.mem_size).sum()
    }

    /// One past the highest address used by any section.
    pub fn image_end(&self) -> u64 {
        self.sections.iter().map(Section::end).max().unwrap_or(0)
    }

    /// Looks up a defined symbol by name.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name && !s.is_undefined())
    }

    /// Looks up an *exported* (global, defined) symbol by name — the set
    /// visible to other modules at load time.
    pub fn export(&self, name: &str) -> Option<&Symbol> {
        self.symbols
            .iter()
            .find(|s| s.name == name && s.bind == SymBind::Global && !s.is_undefined())
    }

    /// Iterates over all exported symbols.
    pub fn exports(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols
            .iter()
            .filter(|s| s.bind == SymBind::Global && !s.is_undefined())
    }

    /// Iterates over defined function symbols — the function-boundary
    /// information JCFI's static analysis uses (§4.2.1).
    pub fn functions(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols
            .iter()
            .filter(|s| s.kind == SymKind::Func && !s.is_undefined())
    }

    /// Names of functions this module imports through its PLT.
    pub fn imported_functions(&self) -> impl Iterator<Item = &str> {
        self.plt.iter().map(|p| p.symbol.as_str())
    }

    /// Returns the function symbol whose `[value, value+size)` range
    /// contains `addr`, if any.
    pub fn function_containing(&self, addr: u64) -> Option<&Symbol> {
        self.functions()
            .find(|s| addr >= s.value && addr < s.value + s.size.max(1))
    }

    /// Returns the nearest defined function symbol at or preceding `addr`
    /// together with the offset from its start. This is the symbolizer's
    /// fallback when no symbol's `[value, value+size)` range contains the
    /// address (assembler-produced symbols often carry size 0); ties on
    /// `value` break toward the lexically smallest name so lookups are
    /// deterministic.
    pub fn nearest_symbol(&self, addr: u64) -> Option<(&Symbol, u64)> {
        self.functions()
            .filter(|s| s.value <= addr)
            .max_by(|a, b| a.value.cmp(&b.value).then(b.name.cmp(&a.name)))
            .map(|s| (s, addr - s.value))
    }

    /// Returns the PLT entry whose stub contains the module-relative
    /// `addr`. A stub extends from its `plt_offset` to the next entry's
    /// (or the end of the section holding it), so any pc inside the stub
    /// resolves to the imported symbol.
    pub fn plt_entry_containing(&self, addr: u64) -> Option<&PltEntry> {
        let entry = self
            .plt
            .iter()
            .filter(|p| p.plt_offset <= addr)
            .max_by_key(|p| p.plt_offset)?;
        let next = self
            .plt
            .iter()
            .map(|p| p.plt_offset)
            .filter(|&o| o > entry.plt_offset)
            .min();
        let end = next.or_else(|| self.section_containing(entry.plt_offset).map(Section::end))?;
        (addr < end).then_some(entry)
    }

    /// Produces a stripped copy: local and function symbols removed,
    /// keeping only exported globals (what `strip` leaves in `.dynsym`).
    pub fn to_stripped(&self) -> Image {
        let mut img = self.clone();
        img.stripped = true;
        img.symbols.retain(|s| s.bind == SymBind::Global && !s.is_undefined());
        img
    }

    /// Addresses of every landing-pad anchor ([`ANCHOR_SEQ`]) in the
    /// image's code sections. CET-style disassembly backends treat these
    /// as sound indirect-entry ground truth: the marker is a flags-only
    /// `test` with a magic immediate (the ENDBR analogue), so executing
    /// through it is a no-op and scanning for it cannot be confused by
    /// ordinary immediates shorter than the full 6-byte pattern.
    pub fn anchor_addrs(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for sec in &self.sections {
            if !sec.kind.is_code() {
                continue;
            }
            let mut off = 0usize;
            while off + ANCHOR_SEQ.len() <= sec.data.len() {
                if sec.data[off..off + ANCHOR_SEQ.len()] == ANCHOR_SEQ {
                    out.push(sec.addr + off as u64);
                }
                off += 1;
            }
        }
        out
    }

    /// Content fingerprint of the module: a checksum over the text
    /// section and the symbol table. Stored in every rule file's
    /// integrity header so the hybrid driver can detect stale rules —
    /// rules computed for a *different build* of a same-named module —
    /// and degrade that module to dynamic-only mode instead of applying
    /// wrong-address rewrites.
    pub fn fingerprint(&self) -> u64 {
        let mut w = Writer::new();
        if let Some(text) = self.section(SectionKind::Text) {
            w.put_u64(text.addr);
            w.put_u64(text.mem_size);
            w.put_bytes(&text.data);
        }
        for s in &self.symbols {
            w.put_str(&s.name);
            w.put_u8(s.kind as u8);
            w.put_u8(s.bind as u8);
            w.put_u8(s.section.map(|k| k as u8 + 1).unwrap_or(0));
            w.put_u64(s.value);
            w.put_u64(s.size);
        }
        checksum64(&w.into_bytes())
    }

    /// Serializes the image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_header(IMG_MAGIC, IMG_VERSION);
        w.put_str(&self.name);
        w.put_u8(self.pic as u8);
        w.put_u8(self.shared as u8);
        w.put_u8(self.stripped as u8);
        w.put_u64(self.entry);
        w.put_u8(self.init.is_some() as u8);
        w.put_u64(self.init.unwrap_or(0));
        w.put_u8(self.fini.is_some() as u8);
        w.put_u64(self.fini.unwrap_or(0));
        w.put_u32(self.sections.len() as u32);
        for s in &self.sections {
            w.put_u8(s.kind as u8);
            w.put_u64(s.addr);
            w.put_u64(s.mem_size);
            w.put_bytes(&s.data);
        }
        w.put_u32(self.symbols.len() as u32);
        for s in &self.symbols {
            w.put_str(&s.name);
            w.put_u8(s.kind as u8);
            w.put_u8(s.bind as u8);
            w.put_u8(s.section.is_some() as u8);
            w.put_u8(s.section.map(|k| k as u8).unwrap_or(0));
            w.put_u64(s.value);
            w.put_u64(s.size);
        }
        w.put_u32(self.needed.len() as u32);
        for n in &self.needed {
            w.put_str(n);
        }
        w.put_u32(self.plt.len() as u32);
        for p in &self.plt {
            w.put_str(&p.symbol);
            w.put_u64(p.plt_offset);
            w.put_u64(p.got_offset);
        }
        w.put_u32(self.dyn_relocs.len() as u32);
        for d in &self.dyn_relocs {
            w.put_u64(d.offset);
            match &d.target {
                DynTarget::Symbol(s) => {
                    w.put_u8(0);
                    w.put_str(s);
                    w.put_u64(0);
                }
                DynTarget::Base(off) => {
                    w.put_u8(1);
                    w.put_str("");
                    w.put_u64(*off);
                }
            }
        }
        w.into_bytes()
    }

    /// Deserializes an image.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] on bad magic, truncation or invalid tags.
    pub fn from_bytes(bytes: &[u8]) -> Result<Image, FormatError> {
        let (mut r, version) = Reader::with_header(bytes, IMG_MAGIC)?;
        if version != IMG_VERSION {
            return Err(FormatError::BadVersion(version));
        }
        let name = r.str()?;
        let pic = r.u8()? != 0;
        let shared = r.u8()? != 0;
        let stripped = r.u8()? != 0;
        let entry = r.u64()?;
        let has_init = r.u8()? != 0;
        let init_v = r.u64()?;
        let has_fini = r.u8()? != 0;
        let fini_v = r.u64()?;
        let mut img = Image::new(name, pic, shared);
        img.stripped = stripped;
        img.entry = entry;
        img.init = has_init.then_some(init_v);
        img.fini = has_fini.then_some(fini_v);
        for (what, v) in [
            ("entry point", entry),
            ("init address", if has_init { init_v } else { 0 }),
            ("fini address", if has_fini { fini_v } else { 0 }),
        ] {
            if v > MAX_IMAGE_SPAN {
                return Err(FormatError::Invalid { what });
            }
        }
        let nsec = r.u32()?;
        for _ in 0..nsec {
            let kind_raw = r.u8()?;
            let kind = SectionKind::LAYOUT_ORDER
                .iter()
                .copied()
                .find(|k| *k as u8 == kind_raw)
                .ok_or(FormatError::BadTag {
                    what: "section kind",
                    value: kind_raw as u32,
                })?;
            let addr = r.u64()?;
            let mem_size = r.u64()?;
            let data = r.bytes()?;
            let s = Section {
                kind,
                addr,
                data,
                mem_size,
            };
            s.validate()?;
            img.sections.push(s);
        }
        let nsym = r.u32()?;
        for _ in 0..nsym {
            let name = r.str()?;
            let kind = match r.u8()? {
                0 => SymKind::Func,
                1 => SymKind::Object,
                v => {
                    return Err(FormatError::BadTag {
                        what: "symbol kind",
                        value: v as u32,
                    })
                }
            };
            let bind = match r.u8()? {
                0 => SymBind::Local,
                1 => SymBind::Global,
                v => {
                    return Err(FormatError::BadTag {
                        what: "symbol binding",
                        value: v as u32,
                    })
                }
            };
            let has_section = r.u8()? != 0;
            let raw = r.u8()?;
            let section = if has_section {
                Some(
                    SectionKind::LAYOUT_ORDER
                        .iter()
                        .copied()
                        .find(|k| *k as u8 == raw)
                        .ok_or(FormatError::BadTag {
                            what: "symbol section",
                            value: raw as u32,
                        })?,
                )
            } else {
                None
            };
            let value = r.u64()?;
            let size = r.u64()?;
            let sym = Symbol {
                name,
                kind,
                bind,
                section,
                value,
                size,
            };
            sym.validate()?;
            img.symbols.push(sym);
        }
        let nneed = r.u32()?;
        for _ in 0..nneed {
            img.needed.push(r.str()?);
        }
        let nplt = r.u32()?;
        for _ in 0..nplt {
            let symbol = r.str()?;
            let plt_offset = r.u64()?;
            let got_offset = r.u64()?;
            if plt_offset > MAX_IMAGE_SPAN || got_offset > MAX_IMAGE_SPAN {
                return Err(FormatError::Invalid { what: "plt entry" });
            }
            img.plt.push(PltEntry {
                symbol,
                plt_offset,
                got_offset,
            });
        }
        let nrel = r.u32()?;
        for _ in 0..nrel {
            let offset = r.u64()?;
            if offset > MAX_IMAGE_SPAN {
                return Err(FormatError::Invalid {
                    what: "dyn reloc offset",
                });
            }
            let tag = r.u8()?;
            let sym = r.str()?;
            let off = r.u64()?;
            let target = match tag {
                0 => DynTarget::Symbol(sym),
                1 if off > MAX_IMAGE_SPAN => {
                    return Err(FormatError::Invalid {
                        what: "dyn reloc base offset",
                    })
                }
                1 => DynTarget::Base(off),
                v => {
                    return Err(FormatError::BadTag {
                        what: "dyn reloc target",
                        value: v as u32,
                    })
                }
            };
            img.dyn_relocs.push(DynReloc { offset, target });
        }
        Ok(img)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image() -> Image {
        let mut img = Image::new("libdemo.so", true, true);
        let mut text = Section::new(SectionKind::Text, vec![0x6c; 32]);
        text.addr = 0x100;
        let mut plt = Section::new(SectionKind::Plt, vec![0x00; 16]);
        plt.addr = 0x80;
        let mut got = Section::new(SectionKind::Got, vec![0; 24]);
        got.addr = 0x200;
        let mut data = Section::zeroed(SectionKind::Bss, 128);
        data.addr = 0x300;
        img.sections.extend([plt, text, got, data]);
        img.entry = 0x100;
        img.init = Some(0x100);
        img.symbols.push(Symbol {
            name: "helper".into(),
            kind: SymKind::Func,
            bind: SymBind::Global,
            section: Some(SectionKind::Text),
            value: 0x110,
            size: 16,
        });
        img.symbols.push(Symbol {
            name: "internal".into(),
            kind: SymKind::Func,
            bind: SymBind::Local,
            section: Some(SectionKind::Text),
            value: 0x100,
            size: 16,
        });
        img.needed.push("libjc.so".into());
        img.plt.push(PltEntry {
            symbol: "puts".into(),
            plt_offset: 0x80,
            got_offset: 0x208,
        });
        img.dyn_relocs.push(DynReloc {
            offset: 0x208,
            target: DynTarget::Symbol("puts".into()),
        });
        img.dyn_relocs.push(DynReloc {
            offset: 0x210,
            target: DynTarget::Base(0x110),
        });
        img
    }

    #[test]
    fn image_roundtrip() {
        let img = sample_image();
        let back = Image::from_bytes(&img.to_bytes()).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn lookup_helpers() {
        let img = sample_image();
        assert!(img.section(SectionKind::Text).is_some());
        assert_eq!(img.section_containing(0x105).unwrap().kind, SectionKind::Text);
        assert_eq!(img.section_containing(0x84).unwrap().kind, SectionKind::Plt);
        assert!(img.section_containing(0x4000).is_none());
        assert_eq!(img.code_bytes(), 48);
        assert_eq!(img.image_end(), 0x300 + 128);
    }

    #[test]
    fn export_visibility() {
        let img = sample_image();
        assert!(img.export("helper").is_some());
        assert!(img.export("internal").is_none(), "locals are not exported");
        assert_eq!(img.exports().count(), 1);
        assert_eq!(img.functions().count(), 2);
        assert_eq!(img.imported_functions().collect::<Vec<_>>(), vec!["puts"]);
    }

    #[test]
    fn function_containing_respects_ranges() {
        let img = sample_image();
        assert_eq!(img.function_containing(0x118).unwrap().name, "helper");
        assert_eq!(img.function_containing(0x100).unwrap().name, "internal");
        assert!(img.function_containing(0x90).is_none());
    }

    #[test]
    fn stripping_removes_locals() {
        let img = sample_image().to_stripped();
        assert!(img.stripped);
        assert!(img.symbol("internal").is_none());
        assert!(img.symbol("helper").is_some());
    }
}
