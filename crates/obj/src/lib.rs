//! # JOF: the Janitizer object format
//!
//! An ELF-like container for JX-64 code, with the two shapes a real
//! toolchain produces:
//!
//! * [`Object`] — a *relocatable* object, the assembler's output: named
//!   sections holding bytes, a symbol table with section-relative values,
//!   and relocation records.
//! * [`Image`] — a *linked module*, the linker's output and the loader's
//!   input: either a position-dependent executable (laid out at
//!   [`IMAGE_BASE`]) or a position-independent shared object (laid out at
//!   offset 0 and rebased at load time). Images carry the dynamic
//!   information Janitizer's mechanisms depend on: needed libraries,
//!   exported/imported symbols, PLT entries, GOT layout and dynamic
//!   relocations.
//!
//! Both shapes serialize to a stable little-endian binary encoding
//! ([`Object::to_bytes`], [`Image::to_bytes`]) so that the static analyzer
//! can run as a separate step over module files, exactly as the paper's
//! workflow does (rewrite rules "are recorded in separate files for each
//! binary module", §3.3.1).

mod format;
mod image;
mod object;

pub use format::{cap_alloc, checksum64, FormatError, Reader, Writer};
pub use image::{DynReloc, DynTarget, Image, PltEntry, ANCHOR_SEQ, SECTION_ALIGN};
pub use object::{Object, Reloc, RelocKind, Section, SectionKind, SymBind, SymKind, Symbol};

/// Load address of position-dependent executables.
pub const IMAGE_BASE: u64 = 0x0040_0000;

/// Upper bound on any address or span decoded from an untrusted JOF
/// container (1 TiB — far beyond any real module, far below overflow).
/// Decoders reject sections, symbols and relocation slots outside this
/// range, so downstream `load_base + addr` arithmetic can never wrap
/// even for hostile inputs.
pub const MAX_IMAGE_SPAN: u64 = 1 << 40;

/// Magic prefix of serialized relocatable objects.
pub const OBJ_MAGIC: &[u8; 4] = b"JOBJ";
/// Magic prefix of serialized linked images.
pub const IMG_MAGIC: &[u8; 4] = b"JIMG";
