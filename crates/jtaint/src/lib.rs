//! # JTaint: dynamic taint tracking on Janitizer
//!
//! The paper's §3.3.3 provides "SSA-level diffuse-chain tracing ... to
//! monitor the flow of untrusted data as seen in taint-tracking
//! mechanisms" as a generic building block and closes hoping Janitizer
//! "will pave the way for many more" techniques. JTaint is that third
//! technique: a whole-program taint tracker built on the same plugin API
//! as JASan and JCFI.
//!
//! * **Sources** — values produced by the input syscalls (`getarg`,
//!   `rand`): everything derived from program input is untrusted.
//! * **Propagation** — per-instruction: ALU results inherit taint from
//!   their operands, loads from their memory granule, stores write their
//!   value's taint to memory. Memory taint is tracked per 8-byte granule.
//! * **Sink** — indirect control transfers: a `call`/`jmp` through a
//!   tainted register (or a `ret` to a tainted return-address slot) is a
//!   control-flow hijack in the making and reports
//!   `tainted-control-transfer`.
//!
//! The hybrid split: the **static pass** precomputes each instruction's
//! propagation action (and proves instructions with neither register defs
//! nor memory effects action-free) so rule-driven probes stay cheap; the
//! **dynamic fallback** re-derives actions per block, at fallback cost —
//! the same static-speeds-up-dynamic pattern as JASan.

use janitizer_core::{Probe, ProbeResult, Report, RuleId, SecurityPlugin, StaticContext};
use janitizer_dbt::{DecodedBlock, ProbeClass, ProbeSite, SiteOrigin, TbItem, ViolationKind};
use janitizer_isa::{Instr, Reg};
use janitizer_obj::Image;
use janitizer_rules::RewriteRule;
use janitizer_vm::Process;
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

/// Rule: apply the propagation action encoded in `data[0]` (see
/// [`Action`]) at this instruction.
pub const RULE_PROPAGATE: RuleId = 20;
/// Rule: verify the indirect-CTI operand is untainted before transfer.
pub const RULE_SINK_CHECK: RuleId = 21;

/// Per-instruction taint action, encoded into rewrite-rule payloads.
///
/// Layout of the packed `u64`: bits 0–15 source-register mask, bits
/// 16–31 destination-register mask, bit 32 = load, bit 33 = store,
/// bit 34 = syscall-source.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Action {
    /// Registers whose taint feeds the result.
    pub src_mask: u16,
    /// Registers written by the instruction.
    pub dst_mask: u16,
    /// The instruction loads from memory (taint flows memory → dest).
    pub is_load: bool,
    /// The instruction stores to memory (taint flows value → memory).
    pub is_store: bool,
    /// The instruction is an input syscall (taints `r0`).
    pub is_source: bool,
}

impl Action {
    /// Derives the action for one instruction.
    pub fn of(insn: &Instr) -> Action {
        let m = insn.mem_access();
        Action {
            src_mask: insn.uses(),
            dst_mask: insn.defs(),
            is_load: m.map(|m| !m.is_store).unwrap_or(false),
            is_store: m.map(|m| m.is_store).unwrap_or(false),
            is_source: matches!(insn, Instr::Syscall),
        }
    }

    /// Whether the instruction can affect taint state at all.
    pub fn is_noop(&self) -> bool {
        self.dst_mask == 0 && !self.is_store && !self.is_source
    }

    /// Packs the action into a rule payload.
    pub fn pack(&self) -> u64 {
        self.src_mask as u64
            | (self.dst_mask as u64) << 16
            | (self.is_load as u64) << 32
            | (self.is_store as u64) << 33
            | (self.is_source as u64) << 34
    }

    /// Unpacks a rule payload.
    pub fn unpack(v: u64) -> Action {
        Action {
            src_mask: v as u16,
            dst_mask: (v >> 16) as u16,
            is_load: v >> 32 & 1 != 0,
            is_store: v >> 33 & 1 != 0,
            is_source: v >> 34 & 1 != 0,
        }
    }
}

/// Shared taint state.
#[derive(Debug, Default)]
pub struct TaintState {
    /// Per-register taint bits.
    pub regs: u16,
    /// Tainted 8-byte memory granules (by granule index, `addr >> 3`).
    pub mem: HashSet<u64>,
    /// Propagation probe executions (cost accounting/diagnostics).
    pub propagations: u64,
    /// Values tainted at sources.
    pub sourced: u64,
}

impl TaintState {
    /// Whether the 8-byte granule containing `addr` is tainted.
    pub fn mem_tainted(&self, addr: u64) -> bool {
        self.mem.contains(&(addr >> 3))
    }

    fn set_mem(&mut self, addr: u64, tainted: bool) {
        if tainted {
            self.mem.insert(addr >> 3);
        } else {
            self.mem.remove(&(addr >> 3));
        }
    }

    fn reg_tainted(&self, mask: u16) -> bool {
        self.regs & mask != 0
    }
}

/// Taint-relevant input syscall numbers (`getarg`, `rand`).
const SOURCE_SYSCALLS: [u64; 2] = [9, 10];

// Probe costs (cycles): rule-driven propagation is an inline
// couple-of-ops sequence; the fallback re-derives the action.
const PROP_COST_STATIC: u64 = 3;
const PROP_COST_DYN: u64 = 5;
const SINK_COST: u64 = 6;

/// The JTaint plugin.
#[derive(Debug)]
pub struct Jtaint {
    /// Shared taint state (inspect after a run).
    pub state: Rc<RefCell<TaintState>>,
    /// Report sinks as violations (else just count silently).
    pub enforce: bool,
}

impl Jtaint {
    /// Creates an enforcing taint tracker.
    pub fn new() -> Jtaint {
        Jtaint {
            state: Rc::new(RefCell::new(TaintState::default())),
            enforce: true,
        }
    }

    fn propagate_probe(
        &self,
        pc: u64,
        insn: Instr,
        action: Action,
        cost: u64,
        origin: SiteOrigin,
    ) -> TbItem {
        let state = Rc::clone(&self.state);
        TbItem::Probe(Probe {
            cost,
            run: Box::new(move |p: &mut Process| {
                let mut st = state.borrow_mut();
                st.propagations += 1;
                if action.is_source {
                    // Syscall: taint the result iff it is an input source;
                    // other syscalls produce trusted values.
                    let n = p.cpu.reg(Reg::R0);
                    st.regs &= !Reg::R0.bit();
                    if SOURCE_SYSCALLS.contains(&n) {
                        st.regs |= Reg::R0.bit();
                        st.sourced += 1;
                    }
                    return ProbeResult::Ok;
                }
                let mut tainted = st.reg_tainted(action.src_mask);
                if let Some(m) = insn.mem_access() {
                    let mut addr = p.cpu.reg(m.base).wrapping_add(m.disp as i64 as u64);
                    if let Some(idx) = m.idx {
                        addr = addr.wrapping_add(p.cpu.reg(idx) << m.scale);
                    }
                    if action.is_load {
                        tainted = st.mem_tainted(addr);
                    } else if action.is_store {
                        let v_tainted = st.reg_tainted(
                            insn.mem_access()
                                .map(|_| match insn {
                                    Instr::St { rs, .. } | Instr::StIdx { rs, .. } => rs.bit(),
                                    _ => 0,
                                })
                                .unwrap_or(0),
                        );
                        st.set_mem(addr, v_tainted);
                        return ProbeResult::Ok;
                    }
                }
                if action.dst_mask != 0 {
                    if tainted {
                        st.regs |= action.dst_mask;
                    } else {
                        st.regs &= !action.dst_mask;
                    }
                }
                ProbeResult::Ok
            }),
            site: Some(ProbeSite {
                tool: "jtaint",
                kind: "propagate",
                pc,
                class: ProbeClass::Inline,
                origin,
            }),
        })
    }

    fn sink_probe(&self, pc: u64, insn: Instr, origin: SiteOrigin) -> TbItem {
        let state = Rc::clone(&self.state);
        let enforce = self.enforce;
        TbItem::Probe(Probe {
            cost: SINK_COST,
            run: Box::new(move |p: &mut Process| {
                let st = state.borrow();
                let bad = match insn {
                    Instr::CallInd { rs } | Instr::JmpInd { rs } => st.reg_tainted(rs.bit()),
                    Instr::Ret => st.mem_tainted(p.cpu.reg(Reg::SP)),
                    _ => false,
                };
                if bad && enforce {
                    ProbeResult::Violation(Report {
                        pc,
                        kind: ViolationKind::TaintedControlTransfer,
                        details: format!("indirect transfer controlled by untrusted input: {insn}"),
                    })
                } else {
                    ProbeResult::Ok
                }
            }),
            site: Some(ProbeSite {
                tool: "jtaint",
                kind: "sink-check",
                pc,
                class: ProbeClass::Inline,
                origin,
            }),
        })
    }

    fn instrument(&mut self, block: &DecodedBlock, cost: u64) -> Vec<TbItem> {
        let mut items = Vec::new();
        for &(pc, insn, next) in &block.insns {
            if insn.is_indirect_cti() {
                items.push(self.sink_probe(pc, insn, SiteOrigin::Dynamic));
            }
            let action = Action::of(&insn);
            if !action.is_noop() {
                items.push(self.propagate_probe(pc, insn, action, cost, SiteOrigin::Dynamic));
            }
            items.push(TbItem::Guest(pc, insn, next));
        }
        items
    }
}

impl Default for Jtaint {
    fn default() -> Jtaint {
        Jtaint::new()
    }
}

impl SecurityPlugin for Jtaint {
    fn name(&self) -> &str {
        "jtaint"
    }

    fn static_pass(&self, _image: &Image, ctx: &StaticContext) -> Vec<RewriteRule> {
        let mut rules = Vec::new();
        for block in ctx.cfg.blocks.values() {
            for (addr, insn) in &block.insns {
                if insn.is_indirect_cti() {
                    rules.push(RewriteRule::new(RULE_SINK_CHECK, block.start, *addr));
                }
                let action = Action::of(insn);
                if !action.is_noop() {
                    rules.push(
                        RewriteRule::new(RULE_PROPAGATE, block.start, *addr)
                            .with_data(0, action.pack()),
                    );
                }
            }
        }
        rules
    }

    fn instrument_static(
        &mut self,
        _proc: &mut Process,
        block: &DecodedBlock,
        rules: &janitizer_core::BlockRules<'_>,
    ) -> Vec<TbItem> {
        let mut items = Vec::new();
        for &(pc, insn, next) in &block.insns {
            for rule in rules.rules_for(pc) {
                match rule.id {
                    RULE_SINK_CHECK => {
                        items.push(self.sink_probe(pc, insn, SiteOrigin::Static));
                    }
                    RULE_PROPAGATE => {
                        let action = Action::unpack(rule.data[0]);
                        items.push(self.propagate_probe(
                            pc,
                            insn,
                            action,
                            PROP_COST_STATIC,
                            SiteOrigin::Static,
                        ));
                    }
                    _ => {}
                }
            }
            items.push(TbItem::Guest(pc, insn, next));
        }
        items
    }

    fn instrument_dynamic(&mut self, proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
        // Fallback: derive actions per block at translation time.
        proc.cycles += 10 * block.insns.len() as u64;
        self.instrument(block, PROP_COST_DYN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_pack_roundtrip() {
        for insn in [
            Instr::MovRr { rd: Reg::R1, rs: Reg::R2 },
            Instr::Ld {
                size: janitizer_isa::MemSize::B8,
                rd: Reg::R3,
                base: Reg::R4,
                disp: 8,
            },
            Instr::St {
                size: janitizer_isa::MemSize::B4,
                rs: Reg::R5,
                base: Reg::R6,
                disp: -8,
            },
            Instr::Syscall,
            Instr::AluRi {
                op: janitizer_isa::AluOp::Add,
                rd: Reg::R7,
                imm: 1,
            },
        ] {
            let a = Action::of(&insn);
            assert_eq!(Action::unpack(a.pack()), a, "{insn}");
        }
    }

    #[test]
    fn noop_actions() {
        assert!(Action::of(&Instr::Nop).is_noop());
        assert!(Action::of(&Instr::Jmp { rel: 4 }).is_noop());
        assert!(!Action::of(&Instr::Syscall).is_noop());
        assert!(!Action::of(&Instr::MovRr { rd: Reg::R0, rs: Reg::R1 }).is_noop());
    }

    #[test]
    fn taint_state_granules() {
        let mut st = TaintState::default();
        st.set_mem(0x1004, true);
        assert!(st.mem_tainted(0x1000));
        assert!(st.mem_tainted(0x1007));
        assert!(!st.mem_tainted(0x1008));
        st.set_mem(0x1000, false);
        assert!(!st.mem_tainted(0x1004));
    }
}
