//! End-to-end taint-tracking tests.

use janitizer_asm::{assemble, AsmOptions};
use janitizer_core::{run_hybrid, HybridOptions, RunOutcome};
use janitizer_jtaint::Jtaint;
use janitizer_link::{link, LinkOptions};
use janitizer_vm::{LoadOptions, ModuleStore};

fn store_for(src: &str) -> ModuleStore {
    let o = assemble("t.s", src, &AsmOptions::default()).unwrap();
    let mut store = ModuleStore::new();
    store.add(link(&[o], &LinkOptions::executable("t")).unwrap());
    store
}

fn run(store: &ModuleStore, args: Vec<u64>, dynamic_only: bool) -> janitizer_core::HybridRun {
    let opts = HybridOptions {
        load: LoadOptions {
            args,
            ..Default::default()
        },
        dynamic_only,
        ..Default::default()
    };
    run_hybrid(store, "t", Jtaint::new(), &opts).unwrap()
}

/// Input flows through arithmetic into an indirect call target: caught.
const TAINTED_CALL: &str = ".section text\n.global _start\n_start:\n\
    mov r0, 9\n mov r1, 0\n syscall\n\
    ; r0 = getarg(0) -- attacker controlled\n\
    mov r8, r0\n\
    add r8, 0x400000\n\
    call r8\n\
    mov r0, 0\n ret\n";

#[test]
fn tainted_indirect_call_detected() {
    let store = store_for(TAINTED_CALL);
    // getarg(0) = offset of _start's own entry so the target would even be
    // "valid" — taint tracking flags it regardless.
    let run = run(&store, vec![0x40], false);
    let RunOutcome::Violation(r) = &run.outcome else {
        panic!("expected taint violation, got {:?}", run.outcome);
    };
    assert_eq!(r.kind.as_str(), "tainted-control-transfer");
}

#[test]
fn tainted_call_detected_dynamic_only_too() {
    let store = store_for(TAINTED_CALL);
    let run = run(&store, vec![0x40], true);
    assert!(
        matches!(&run.outcome, RunOutcome::Violation(r) if r.kind.as_str() == "tainted-control-transfer"),
        "{:?}",
        run.outcome
    );
}

#[test]
fn untainted_indirect_call_passes() {
    let src = ".section text\n.global _start\n_start:\n\
        la r8, target\n call r8\n ret\n\
        target:\n mov r0, 5\n ret\n";
    let store = store_for(src);
    let run = run(&store, vec![], false);
    assert_eq!(run.outcome.code(), Some(5), "{:?}", run.outcome);
    assert!(run.engine.reports.is_empty());
}

#[test]
fn constant_overwrite_clears_taint() {
    // Input read, then the register is wholly overwritten by a constant
    // before the indirect call: no taint reaches the sink.
    let src = ".section text\n.global _start\n_start:\n\
        mov r0, 9\n mov r1, 0\n syscall\n\
        mov r8, r0\n\
        la r8, target\n\
        call r8\n ret\n\
        target:\n mov r0, 7\n ret\n";
    let store = store_for(src);
    let run = run(&store, vec![999], false);
    assert_eq!(run.outcome.code(), Some(7), "{:?}", run.outcome);
}

#[test]
fn taint_flows_through_memory() {
    // Input stored to memory, reloaded, used as a jump target: caught.
    let src = ".section text\n.global _start\n_start:\n\
        mov r0, 9\n mov r1, 0\n syscall\n\
        la r8, slot\n st8 [r8], r0\n\
        mov r0, 0\n\
        ld8 r9, [r8]\n\
        add r9, 0x400000\n\
        jmp r9\n\
        .section data\nslot: .quad 0\n";
    let store = store_for(src);
    let run = run(&store, vec![0x10], false);
    assert!(
        matches!(&run.outcome, RunOutcome::Violation(r) if r.kind.as_str() == "tainted-control-transfer"),
        "{:?}",
        run.outcome
    );
}

#[test]
fn clean_store_scrubs_memory_taint() {
    let src = ".section text\n.global _start\n_start:\n\
        mov r0, 9\n mov r1, 0\n syscall\n\
        la r8, slot\n st8 [r8], r0\n\
        mov r9, 0\n st8 [r8], r9\n\
        ld8 r10, [r8]\n\
        la r11, target\n jmp r11\n\
        target:\n mov r0, 3\n ret\n\
        .section data\nslot: .quad 0\n";
    let store = store_for(src);
    let run = run(&store, vec![5], false);
    assert_eq!(run.outcome.code(), Some(3), "{:?}", run.outcome);
}

#[test]
fn hybrid_is_cheaper_than_dynamic_only() {
    // A compute loop under taint tracking: rule-driven propagation beats
    // per-block re-derivation.
    let src = ".section text\n.global _start\n_start:\n\
        mov r0, 9\n mov r1, 0\n syscall\n\
        mov r2, r0\n mov r0, 0\n\
        loop:\n add r0, r2\n sub r2, 1\n cmp r2, 0\n jne loop\n\
        mod r0, 256\n ret\n";
    let store = store_for(src);
    let hybrid = run(&store, vec![200], false);
    let dynamic = run(&store, vec![200], true);
    assert_eq!(hybrid.outcome.code(), dynamic.outcome.code());
    assert!(
        hybrid.cycles < dynamic.cycles,
        "hybrid {} vs dyn {}",
        hybrid.cycles,
        dynamic.cycles
    );
}

#[test]
fn taint_statistics_recorded() {
    let src = ".section text\n.global _start\n_start:\n\
        mov r0, 9\n mov r1, 0\n syscall\n\
        mov r0, 0\n ret\n";
    let store = store_for(src);
    let plugin = Jtaint::new();
    let state = std::rc::Rc::clone(&plugin.state);
    let opts = HybridOptions {
        load: LoadOptions {
            args: vec![42],
            ..Default::default()
        },
        ..Default::default()
    };
    let out = run_hybrid(&store, "t", plugin, &opts).unwrap();
    assert!(matches!(out.outcome, RunOutcome::Exited(_)));
    let st = state.borrow();
    assert!(st.propagations > 0);
    assert_eq!(st.sourced, 1, "one getarg source");
}
