//! # Evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§6) on
//! the synthetic substrate: run [`build_eval_world`] once, then each
//! `figN` function produces a [`FigResult`] whose rows mirror the paper's
//! series. The `janitizer-eval` binary prints them; `EXPERIMENTS.md`
//! records paper-vs-measured values.

use janitizer_baselines::{
    bincfi_static_air, lockdown_costs, memcheck_costs, memcheck_runtime, retrowrite_applicable,
    static_rewriter_costs, CfiBaseline, CfiPolicy, Memcheck, Retrowrite, MEMCHECK_RT,
};
use janitizer_core::{
    run_hybrid, run_native, EngineOptions, FaultInjection, HybridOptions, HybridRun, RuleCache,
    RunOutcome, RunProfile, SecurityPlugin, StaticContext, TbItem, ViolationReport,
};
use janitizer_dbt::DecodedBlock;
use janitizer_jasan::{Jasan, RT_MODULE};
use janitizer_jcfi::{static_air, CtiKind, Jcfi};
use janitizer_obj::Image;
use janitizer_rules::RewriteRule;
use janitizer_vm::{LoadOptions, ModuleStore, Process};
use janitizer_workloads::{build_case, build_world, juliet_suite, BuildOptions, JulietCategory, World};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

#[cfg(test)]
mod tests;

/// One figure/table reproduction: named columns over per-workload rows.
#[derive(Clone, Debug)]
pub struct FigResult {
    /// Figure identifier and caption.
    pub title: String,
    /// Column (series) names.
    pub columns: Vec<String>,
    /// `(workload, value-per-column)`; `None` renders as the paper's ✗.
    pub rows: Vec<(String, Vec<Option<f64>>)>,
    /// Whether higher is better (AIR) or lower (slowdown).
    pub higher_is_better: bool,
    /// Summarize with the arithmetic mean (percent figures) instead of
    /// geometric means.
    pub use_mean: bool,
}

impl FigResult {
    /// Geometric mean per column over rows where the column has a value.
    pub fn geomean(&self) -> Vec<Option<f64>> {
        (0..self.columns.len())
            .map(|c| {
                let vals: Vec<f64> = self
                    .rows
                    .iter()
                    .filter_map(|(_, vs)| vs[c])
                    .filter(|v| *v > 0.0)
                    .collect();
                if vals.is_empty() {
                    None
                } else {
                    Some((vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp())
                }
            })
            .collect()
    }

    /// Geometric mean restricted to rows where *every* column has a value
    /// (the paper's `geomean-x`).
    pub fn geomean_x(&self) -> Vec<Option<f64>> {
        let full: Vec<&Vec<Option<f64>>> = self
            .rows
            .iter()
            .filter(|(_, vs)| vs.iter().all(Option::is_some))
            .map(|(_, vs)| vs)
            .collect();
        (0..self.columns.len())
            .map(|c| {
                let vals: Vec<f64> = full.iter().filter_map(|vs| vs[c]).collect();
                if vals.is_empty() {
                    None
                } else {
                    Some((vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp())
                }
            })
            .collect()
    }

    /// Arithmetic mean per column (used for percentage figures).
    pub fn mean(&self) -> Vec<Option<f64>> {
        (0..self.columns.len())
            .map(|c| {
                let vals: Vec<f64> = self.rows.iter().filter_map(|(_, vs)| vs[c]).collect();
                if vals.is_empty() {
                    None
                } else {
                    Some(vals.iter().sum::<f64>() / vals.len() as f64)
                }
            })
            .collect()
    }

    /// Renders an aligned text table (the harness output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let _ = write!(out, "{:<12}", "benchmark");
        for c in &self.columns {
            let _ = write!(out, "{c:>16}");
        }
        let _ = writeln!(out);
        let fmt = |v: &Option<f64>| match v {
            Some(x) => format!("{x:.3}"),
            None => "x".into(),
        };
        for (name, vs) in &self.rows {
            let _ = write!(out, "{name:<12}");
            for v in vs {
                let _ = write!(out, "{:>16}", fmt(v));
            }
            let _ = writeln!(out);
        }
        if self.use_mean {
            let means: Vec<Option<f64>> = (0..self.columns.len())
                .map(|c| {
                    let vals: Vec<f64> =
                        self.rows.iter().filter_map(|(_, vs)| vs[c]).collect();
                    if vals.is_empty() {
                        None
                    } else {
                        Some(vals.iter().sum::<f64>() / vals.len() as f64)
                    }
                })
                .collect();
            let _ = write!(out, "{:<12}", "mean");
            for v in &means {
                let _ = write!(out, "{:>16}", fmt(v));
            }
            let _ = writeln!(out);
        } else {
            let _ = write!(out, "{:<12}", "geomean");
            for v in &self.geomean() {
                let _ = write!(out, "{:>16}", fmt(v));
            }
            let _ = writeln!(out);
            let _ = write!(out, "{:<12}", "geomean-x");
            for v in &self.geomean_x() {
                let _ = write!(out, "{:>16}", fmt(v));
            }
            let _ = writeln!(out);
        }
        out
    }

    /// JSON rendering (for archival next to the CSVs).
    pub fn to_json(&self) -> String {
        use janitizer_telemetry::json::Json;
        Json::obj([
            ("title", Json::str(self.title.clone())),
            (
                "columns",
                Json::Arr(self.columns.iter().map(|c| Json::str(c.clone())).collect()),
            ),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|(name, vs)| {
                            Json::Arr(vec![
                                Json::str(name.clone()),
                                Json::Arr(vs.iter().map(|v| Json::from(*v)).collect()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("higher_is_better", Json::Bool(self.higher_is_better)),
            ("use_mean", Json::Bool(self.use_mean)),
        ])
        .render_pretty()
    }

    /// CSV rendering for downstream plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "benchmark,{}", self.columns.join(","));
        for (name, vs) in &self.rows {
            let cells: Vec<String> = vs
                .iter()
                .map(|v| v.map(|x| format!("{x:.4}")).unwrap_or_default())
                .collect();
            let _ = writeln!(out, "{name},{}", cells.join(","));
        }
        out
    }
}

/// A pass-through plugin measuring pure engine overhead (the figures'
/// "Null client").
#[derive(Debug, Default)]
pub struct NullPlugin;

impl SecurityPlugin for NullPlugin {
    fn name(&self) -> &str {
        "null"
    }
    fn static_pass(&self, _image: &Image, _ctx: &StaticContext) -> Vec<RewriteRule> {
        Vec::new()
    }
    fn instrument_static(
        &mut self,
        _proc: &mut Process,
        block: &DecodedBlock,
        _rules: &janitizer_core::BlockRules<'_>,
    ) -> Vec<TbItem> {
        block
            .insns
            .iter()
            .map(|&(pc, i, n)| TbItem::Guest(pc, i, n))
            .collect()
    }
    fn instrument_dynamic(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
        block
            .insns
            .iter()
            .map(|&(pc, i, n)| TbItem::Guest(pc, i, n))
            .collect()
    }
}

/// The tool configurations of the paper's figures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ToolConfig {
    /// Native execution (the baseline denominator).
    Native,
    /// DynamoRIO-style null client.
    NullClient,
    /// Valgrind/Memcheck-like dynamic-only sanitizer.
    Valgrind,
    /// JASan without static analysis.
    JasanDyn,
    /// RetroWrite-like static-only sanitizer.
    Retrowrite,
    /// JASan hybrid, conservative save/restore (Figure 8 "base").
    JasanHybridBase,
    /// JASan hybrid with liveness optimization (the headline config).
    JasanHybrid,
    /// Lockdown with its strong policy.
    LockdownStrong,
    /// Lockdown with its weak policy.
    LockdownWeak,
    /// JCFI without static analysis.
    JcfiDyn,
    /// JCFI hybrid.
    JcfiHybrid,
    /// JCFI forward-edge only (Figure 11).
    JcfiForwardOnly,
    /// BinCFI-like static CFI.
    BinCfi,
}

impl ToolConfig {
    /// Stable label used in profile artifacts and result keys.
    pub fn label(&self) -> &'static str {
        match self {
            ToolConfig::Native => "native",
            ToolConfig::NullClient => "null-client",
            ToolConfig::Valgrind => "valgrind",
            ToolConfig::JasanDyn => "jasan-dyn",
            ToolConfig::Retrowrite => "retrowrite",
            ToolConfig::JasanHybridBase => "jasan-hybrid-base",
            ToolConfig::JasanHybrid => "jasan-hybrid",
            ToolConfig::LockdownStrong => "lockdown-strong",
            ToolConfig::LockdownWeak => "lockdown-weak",
            ToolConfig::JcfiDyn => "jcfi-dyn",
            ToolConfig::JcfiHybrid => "jcfi-hybrid",
            ToolConfig::JcfiForwardOnly => "jcfi-forward",
            ToolConfig::BinCfi => "bincfi",
        }
    }
}

/// Result of one tool×workload run.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Slowdown relative to native cycles.
    pub slowdown: f64,
    /// Exit code (for cross-checking against native).
    pub code: Option<i64>,
    /// Security reports raised.
    pub reports: usize,
    /// Fraction of blocks only seen dynamically (percent).
    pub dynamic_fraction: f64,
    /// Dynamic AIR (CFI tools only).
    pub dair: Option<f64>,
    /// Dynamic AIR for indirect jumps only.
    pub dair_jumps: Option<f64>,
}

/// The evaluation world: workloads plus the extra runtimes the baselines
/// need.
pub struct EvalWorld {
    /// The guest universe.
    pub world: World,
    /// Analyze-once rule cache shared by every run of the invocation:
    /// each (module, plugin configuration) pair is statically analyzed at
    /// most once no matter how many figure cells execute it.
    pub cache: Arc<RuleCache>,
    /// When set (`--inject-faults`), every figure run routes its rule
    /// files through the untrusted serialize-verify-load path with seeded
    /// corruption, exercising the degraded dynamic-only mode under the
    /// real evaluation workloads. `None` (the default) keeps the trusted
    /// in-memory fast path and byte-identical figure output.
    pub inject: Option<FaultInjection>,
}

/// Builds the evaluation world at the given input scale.
pub fn build_eval_world(scale: f64) -> EvalWorld {
    let mut world = build_world(&BuildOptions {
        scale,
        ..BuildOptions::default()
    });
    world.store.add(memcheck_runtime());
    EvalWorld {
        world,
        cache: Arc::new(RuleCache::new()),
        inject: None,
    }
}

/// Parses the `--inject-faults` argument: `seed=N,rate=R` in either
/// order (`rate` defaults to 1.0 when omitted).
pub fn parse_inject(spec: &str) -> Option<FaultInjection> {
    let mut fi = FaultInjection { seed: 0, rate: 1.0 };
    let mut saw_seed = false;
    for part in spec.split(',') {
        let (key, value) = part.split_once('=')?;
        match key.trim() {
            "seed" => {
                fi.seed = value.trim().parse().ok()?;
                saw_seed = true;
            }
            "rate" => {
                fi.rate = value.trim().parse().ok()?;
                if !(0.0..=1.0).contains(&fi.rate) {
                    return None;
                }
            }
            _ => return None,
        }
    }
    saw_seed.then_some(fi)
}

/// Process-wide tally of degraded module loads, keyed by
/// `(module, reason)`. Fed by every hybrid run the figures execute;
/// read back by the CLI to print the degradation summary line.
static DEGRADED: Mutex<BTreeMap<(String, String), u64>> = Mutex::new(BTreeMap::new());

fn note_degraded(run: &HybridRun) {
    if run.degraded.is_empty() {
        return;
    }
    let mut map = DEGRADED.lock().unwrap_or_else(|e| e.into_inner());
    for d in &run.degraded {
        *map.entry((d.module.clone(), d.reason.as_str().to_string()))
            .or_insert(0) += 1;
    }
}

/// Snapshot of the degraded-module tally as `(module, reason, count)`
/// rows in module order.
pub fn degraded_summary() -> Vec<(String, String, u64)> {
    DEGRADED
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|((m, r), n)| (m.clone(), r.clone(), *n))
        .collect()
}

/// Whether figure runs collect overhead-attribution profiles.
static PROFILING: AtomicBool = AtomicBool::new(false);

/// Process-wide profile sink keyed by `(workload, config-label)`. Each
/// cell merges only runs of the same workload (one address space, one
/// deterministic layout), so merged profiles are byte-identical at any
/// thread count: merging is a commutative sum and the key order is
/// fixed.
static PROFILES: Mutex<BTreeMap<(String, String), RunProfile>> = Mutex::new(BTreeMap::new());

/// Turns profile collection on or off for subsequent figure runs
/// (`explain` and `--profile` set this before running).
pub fn set_profiling(on: bool) {
    PROFILING.store(on, Ordering::Relaxed);
}

/// Whether profile collection is armed.
pub fn profiling() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Whether figure runs use the host-side trace machinery (direct-branch
/// chaining, superblock formation, probe-fusion precompute). On by
/// default; `--no-traces` clears it. Host-only: figure results are
/// byte-identical either way (test-enforced), only wall time moves.
static TRACES: AtomicBool = AtomicBool::new(true);

/// Superblock hotness-threshold override for figure runs; `0` keeps the
/// engine default.
static TRACE_THRESHOLD: AtomicU32 = AtomicU32::new(0);

/// Enables or disables trace machinery for subsequent figure runs.
pub fn set_traces(on: bool) {
    TRACES.store(on, Ordering::Relaxed);
}

/// Whether trace machinery is armed.
pub fn traces() -> bool {
    TRACES.load(Ordering::Relaxed)
}

/// Overrides the superblock hotness threshold (`0` = engine default).
pub fn set_trace_threshold(threshold: u32) {
    TRACE_THRESHOLD.store(threshold, Ordering::Relaxed);
}

fn note_profile(workload: &str, label: &str, prof: RunProfile) {
    let mut map = PROFILES.lock().unwrap_or_else(|e| e.into_inner());
    match map.entry((workload.to_string(), label.to_string())) {
        std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(&prof),
        std::collections::btree_map::Entry::Vacant(v) => {
            v.insert(prof);
        }
    }
}

/// Drains the accumulated profiles: `(workload, config-label) → profile`
/// in deterministic key order.
pub fn take_profiles() -> BTreeMap<(String, String), RunProfile> {
    std::mem::take(&mut *PROFILES.lock().unwrap_or_else(|e| e.into_inner()))
}

// The atomic writer moved into `janitizer-store` (every persistent
// artifact — store entries, journal, result files — now shares the one
// crash-safe primitive); re-exported here to keep the eval API stable.
pub use janitizer_store::atomic::{write_atomic, write_atomic_with};

/// Worker-thread override for the parallel figure fan-out (0 = one
/// worker per available core).
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the evaluation worker-thread count; `0` restores auto-detection.
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// The effective worker-thread count.
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Maps `f` over `items` on [`threads`] scoped OS threads, returning the
/// results **in item order** — the output is identical to a serial
/// `items.iter().map(f).collect()`, whatever the interleaving, so callers
/// stay byte-deterministic. Work is handed out through an atomic index
/// (no chunking) to keep long-running cells from serializing a chunk.
fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let out: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(item);
                *out[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("worker filled its slot")
        })
        .collect()
}

const FUEL: u64 = 30_000_000_000;

fn base_opts(ew: &EvalWorld, load: LoadOptions) -> HybridOptions {
    HybridOptions {
        load,
        fuel: FUEL,
        rule_cache: Some(Arc::clone(&ew.cache)),
        inject_faults: ew.inject,
        profile: profiling(),
        no_traces: !traces(),
        trace_threshold: TRACE_THRESHOLD.load(Ordering::Relaxed),
        ..HybridOptions::default()
    }
}

/// Runs one workload under one tool configuration. `None` means the tool
/// is inapplicable to this binary (the figures' ✗ marks).
pub fn run_config(ew: &EvalWorld, idx: usize, cfg: ToolConfig) -> Option<RunSummary> {
    let w = &ew.world.workloads[idx];
    let args = vec![ew.world.args[idx]];
    let store = &ew.world.store;
    let plain_load = LoadOptions {
        args: args.clone(),
        ..LoadOptions::default()
    };
    let jasan_load = LoadOptions {
        args: args.clone(),
        preload: vec![RT_MODULE.into()],
        ..LoadOptions::default()
    };
    let memcheck_load = LoadOptions {
        args: args.clone(),
        preload: vec![MEMCHECK_RT.into()],
        ..LoadOptions::default()
    };

    let (native_exit, native_proc) = run_native(store, w.name, &plain_load, FUEL).ok()?;
    let native_cycles = native_proc.cycles.max(1);
    let native_code = native_exit.code();

    let summarize = |mut run: HybridRun, dair: Option<f64>, dair_jumps: Option<f64>| {
        note_degraded(&run);
        if let Some(mut prof) = run.profile.take() {
            prof.native_cycles = Some(native_cycles);
            note_profile(w.name, cfg.label(), prof);
        }
        RunSummary {
            slowdown: run.cycles as f64 / native_cycles as f64,
            code: run.outcome.code(),
            reports: run.engine.reports.len(),
            dynamic_fraction: run.coverage.dynamic_fraction(),
            dair,
            dair_jumps,
        }
    };

    let result = match cfg {
        ToolConfig::Native => RunSummary {
            slowdown: 1.0,
            code: native_code,
            reports: 0,
            dynamic_fraction: 0.0,
            dair: None,
            dair_jumps: None,
        },
        ToolConfig::NullClient => {
            let run = run_hybrid(store, w.name, NullPlugin, &base_opts(ew, plain_load)).ok()?;
            summarize(run, None, None)
        }
        ToolConfig::Valgrind => {
            let opts = HybridOptions {
                dynamic_only: true,
                engine: EngineOptions {
                    costs: memcheck_costs(),
                    ..Default::default()
                },
                ..base_opts(ew, memcheck_load)
            };
            let run = run_hybrid(store, w.name, Memcheck::new(), &opts).ok()?;
            summarize(run, None, None)
        }
        ToolConfig::JasanDyn => {
            let opts = HybridOptions {
                dynamic_only: true,
                ..base_opts(ew, jasan_load)
            };
            let mut plugin = Jasan::hybrid();
            plugin.opts.fuse_checks = traces();
            let run = run_hybrid(store, w.name, plugin, &opts).ok()?;
            summarize(run, None, None)
        }
        ToolConfig::Retrowrite => {
            // Applicability: the main executable and the libraries it is
            // statically linked against must be PIC and reassembleable.
            let exe = store.get(w.name)?;
            retrowrite_applicable(&[&exe]).ok()?;
            let opts = HybridOptions {
                engine: EngineOptions {
                    costs: static_rewriter_costs(),
                    ..Default::default()
                },
                ..base_opts(ew, jasan_load)
            };
            let run = run_hybrid(store, w.name, Retrowrite::new(), &opts).ok()?;
            summarize(run, None, None)
        }
        ToolConfig::JasanHybridBase => {
            let mut plugin = Jasan::hybrid_base();
            plugin.opts.fuse_checks = traces();
            let run = run_hybrid(store, w.name, plugin, &base_opts(ew, jasan_load)).ok()?;
            summarize(run, None, None)
        }
        ToolConfig::JasanHybrid => {
            let mut plugin = Jasan::hybrid();
            plugin.opts.fuse_checks = traces();
            let run = run_hybrid(store, w.name, plugin, &base_opts(ew, jasan_load)).ok()?;
            summarize(run, None, None)
        }
        ToolConfig::LockdownStrong | ToolConfig::LockdownWeak => {
            if w.lockdown_fails {
                return None;
            }
            let policy = if cfg == ToolConfig::LockdownStrong {
                CfiPolicy::LockdownStrong
            } else {
                CfiPolicy::LockdownWeak
            };
            let tool = CfiBaseline::new(policy);
            let state = std::rc::Rc::clone(&tool.state);
            let opts = HybridOptions {
                dynamic_only: true,
                engine: EngineOptions {
                    costs: lockdown_costs(),
                    halt_on_violation: false, // log-and-continue for FPs
                    ..Default::default()
                },
                ..base_opts(ew, plain_load)
            };
            let run = run_hybrid(store, w.name, tool, &opts).ok()?;
            let dair = state.borrow().dynamic_air();
            summarize(run, Some(dair), None)
        }
        ToolConfig::JcfiDyn | ToolConfig::JcfiHybrid | ToolConfig::JcfiForwardOnly => {
            let tool = if cfg == ToolConfig::JcfiForwardOnly {
                Jcfi::forward_only()
            } else {
                Jcfi::hybrid()
            };
            let state = std::rc::Rc::clone(&tool.state);
            let opts = HybridOptions {
                dynamic_only: cfg == ToolConfig::JcfiDyn,
                ..base_opts(ew, plain_load)
            };
            let run = run_hybrid(store, w.name, tool, &opts).ok()?;
            let (dair, dj) = {
                let st = state.borrow();
                (st.dynamic_air(), st.dynamic_air_of(CtiKind::Jump))
            };
            summarize(run, Some(dair), dj)
        }
        ToolConfig::BinCfi => {
            let exe = store.get(w.name)?;
            if !janitizer_baselines::reassembly_sound(&exe) {
                return None;
            }
            let tool = CfiBaseline::new(CfiPolicy::BinCfi);
            let state = std::rc::Rc::clone(&tool.state);
            let opts = HybridOptions {
                engine: EngineOptions {
                    costs: static_rewriter_costs(),
                    ..Default::default()
                },
                ..base_opts(ew, plain_load)
            };
            let run = run_hybrid(store, w.name, tool, &opts).ok()?;
            let dair = state.borrow().dynamic_air();
            summarize(run, Some(dair), None)
        }
    };
    Some(result)
}

fn fig_over_workloads(
    ew: &EvalWorld,
    title: &str,
    configs: &[(&str, ToolConfig)],
    metric: impl Fn(&RunSummary) -> Option<f64> + Sync,
    higher_is_better: bool,
) -> FigResult {
    // Every (workload, config) cell is an independent deterministic run;
    // fan them out and reassemble in fixed index order, so the table is
    // byte-identical to the serial nested loop at any thread count.
    let cells: Vec<(usize, ToolConfig)> = (0..ew.world.workloads.len())
        .flat_map(|i| configs.iter().map(move |(_, cfg)| (i, *cfg)))
        .collect();
    let vals = par_map(&cells, |&(i, cfg)| {
        run_config(ew, i, cfg).and_then(|s| metric(&s))
    });
    let rows = ew
        .world
        .workloads
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let start = i * configs.len();
            (w.name.to_string(), vals[start..start + configs.len()].to_vec())
        })
        .collect();
    FigResult {
        title: title.into(),
        columns: configs.iter().map(|(n, _)| n.to_string()).collect(),
        rows,
        higher_is_better,
        use_mean: false,
    }
}

/// Figure 7: JASan overhead vs Valgrind, JASan-dyn, RetroWrite.
pub fn fig7(ew: &EvalWorld) -> FigResult {
    fig_over_workloads(
        ew,
        "Figure 7: JASan (binary ASan) slowdown on SPEC-shaped workloads",
        &[
            ("Valgrind", ToolConfig::Valgrind),
            ("JASan-dyn", ToolConfig::JasanDyn),
            ("Retrowrite", ToolConfig::Retrowrite),
            ("JASan-hybrid", ToolConfig::JasanHybrid),
        ],
        |s| Some(s.slowdown),
        false,
    )
}

/// Figure 8: JASan overhead breakdown.
pub fn fig8(ew: &EvalWorld) -> FigResult {
    fig_over_workloads(
        ew,
        "Figure 8: JASan overhead breakdown",
        &[
            ("Null-client", ToolConfig::NullClient),
            ("Hybrid-base", ToolConfig::JasanHybridBase),
            ("Hybrid-full", ToolConfig::JasanHybrid),
            ("JASan-dyn", ToolConfig::JasanDyn),
        ],
        |s| Some(s.slowdown),
        false,
    )
}

/// Figure 9: JCFI overhead vs Lockdown and BinCFI.
pub fn fig9(ew: &EvalWorld) -> FigResult {
    fig_over_workloads(
        ew,
        "Figure 9: JCFI slowdown vs Lockdown and BinCFI",
        &[
            ("Lockdown", ToolConfig::LockdownStrong),
            ("JCFI-dyn", ToolConfig::JcfiDyn),
            ("JCFI-hybrid", ToolConfig::JcfiHybrid),
            ("BinCFI", ToolConfig::BinCfi),
        ],
        |s| Some(s.slowdown),
        false,
    )
}

/// Figure 11: forward-only vs full JCFI.
pub fn fig11(ew: &EvalWorld) -> FigResult {
    fig_over_workloads(
        ew,
        "Figure 11: forward/backward contribution to JCFI overhead",
        &[
            ("Null-client", ToolConfig::NullClient),
            ("+Forward", ToolConfig::JcfiForwardOnly),
            ("+Backward", ToolConfig::JcfiHybrid),
        ],
        |s| Some(s.slowdown),
        false,
    )
}

/// Figure 12: dynamic AIR.
pub fn fig12(ew: &EvalWorld) -> FigResult {
    let mut r = fig_over_workloads(
        ew,
        "Figure 12: dynamic AIR (%) — higher is better",
        &[
            ("Lockdown(S)", ToolConfig::LockdownStrong),
            ("JCFI-dyn", ToolConfig::JcfiDyn),
            ("JCFI-hybrid", ToolConfig::JcfiHybrid),
            ("Lockdown(W)", ToolConfig::LockdownWeak),
        ],
        |s| s.dair,
        true,
    );
    r.use_mean = true;
    r
}

/// Figure 13: static AIR, JCFI vs BinCFI.
pub fn fig13(ew: &EvalWorld) -> FigResult {
    let mut rows = Vec::new();
    let libs: Vec<Image> = ["libjc.so", "libjf.so"]
        .iter()
        .filter_map(|n| ew.world.store.get(n).map(|a| (*a).clone()))
        .collect();
    for w in &ew.world.workloads {
        let Some(exe) = ew.world.store.get(w.name) else {
            rows.push((w.name.to_string(), vec![None, None]));
            continue;
        };
        let mut images: Vec<&Image> = vec![&exe];
        images.extend(libs.iter());
        let jcfi = Some(static_air(&images));
        let bincfi = if janitizer_baselines::reassembly_sound(&exe) {
            Some(bincfi_static_air(&images))
        } else {
            None
        };
        rows.push((w.name.to_string(), vec![jcfi, bincfi]));
    }
    FigResult {
        title: "Figure 13: static AIR (%) — higher is better".into(),
        columns: vec!["JCFI".into(), "BinCFI".into()],
        rows,
        higher_is_better: true,
        use_mean: true,
    }
}

/// Figure 14: fraction of basic blocks only discovered dynamically.
pub fn fig14(ew: &EvalWorld) -> FigResult {
    let mut r = fig_over_workloads(
        ew,
        "Figure 14: % of basic blocks seen only by the dynamic modifier",
        &[("Dynamic-code%", ToolConfig::JasanHybrid)],
        |s| Some(s.dynamic_fraction),
        false,
    );
    r.use_mean = true;
    r
}

/// Detector quality counts for the Juliet comparison (Figure 10).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JulietCounts {
    /// Good variants flagged (should be 0).
    pub false_positives: usize,
    /// Good variants passing.
    pub true_negatives: usize,
    /// Bad variants flagged.
    pub true_positives: usize,
    /// Bad variants missed.
    pub false_negatives: usize,
}

/// Figure 10: Juliet CWE-122 detector comparison.
#[derive(Clone, Debug)]
pub struct JulietResult {
    /// Valgrind/Memcheck counts.
    pub valgrind: JulietCounts,
    /// JASan counts.
    pub jasan: JulietCounts,
    /// Per-category JASan false negatives (diagnostics).
    pub jasan_fn_by_category: Vec<(JulietCategory, usize)>,
}

impl JulietResult {
    /// Renders the Figure 10 table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== Figure 10: Juliet CWE-122 (624 case pairs) ==");
        let _ = writeln!(out, "{:<28}{:>10}{:>10}", "", "Valgrind", "JASan");
        let _ = writeln!(
            out,
            "{:<28}{:>10}{:>10}",
            "good: False Positives", self.valgrind.false_positives, self.jasan.false_positives
        );
        let _ = writeln!(
            out,
            "{:<28}{:>10}{:>10}",
            "good: True Negatives", self.valgrind.true_negatives, self.jasan.true_negatives
        );
        let _ = writeln!(
            out,
            "{:<28}{:>10}{:>10}",
            "bad:  True Positives", self.valgrind.true_positives, self.jasan.true_positives
        );
        let _ = writeln!(
            out,
            "{:<28}{:>10}{:>10}",
            "bad:  False Negatives", self.valgrind.false_negatives, self.jasan.false_negatives
        );
        out
    }
}

/// Runs the Juliet suite under JASan-hybrid and Memcheck (Figure 10).
pub fn fig10(base: &ModuleStore) -> JulietResult {
    fig10_with(base, None, None)
}

/// [`fig10`] with forensics: when `reports_dir` is set, every JASan
/// violation additionally emits a forensic report pair
/// (`case<id>-<variant>-<report-id>.txt` / `.json`) into the directory.
/// `limit` truncates the suite (CI smoke runs); `None` runs all 624 case
/// pairs. The detection counts are identical with reporting on or off —
/// forensic capture is observation-only.
pub fn fig10_with(
    base: &ModuleStore,
    reports_dir: Option<&std::path::Path>,
    limit: Option<usize>,
) -> JulietResult {
    let mut base = base.clone();
    if base.get(MEMCHECK_RT).is_none() {
        base.add(memcheck_runtime());
    }
    if let Some(dir) = reports_dir {
        let _ = std::fs::create_dir_all(dir);
    }
    // Per-figure cache: the 624 case pairs all link against the same
    // shared libraries, whose static analysis is thus paid once instead
    // of once per case run.
    let cache = Arc::new(RuleCache::new());
    let mut suite = juliet_suite();
    if let Some(n) = limit {
        suite.truncate(n);
    }

    // Returns true when a violation is reported.
    let run_case = |store: &ModuleStore, tool_is_jasan: bool, tag: &str| -> bool {
        let result = if tool_is_jasan {
            let opts = HybridOptions {
                load: LoadOptions {
                    preload: vec![RT_MODULE.into()],
                    ..LoadOptions::default()
                },
                fuel: 200_000_000,
                rule_cache: Some(Arc::clone(&cache)),
                forensics: reports_dir.is_some(),
                ..HybridOptions::default()
            };
            run_hybrid(store, "case", Jasan::hybrid(), &opts)
        } else {
            let opts = HybridOptions {
                dynamic_only: true,
                load: LoadOptions {
                    preload: vec![MEMCHECK_RT.into()],
                    ..LoadOptions::default()
                },
                engine: EngineOptions {
                    costs: memcheck_costs(),
                    ..Default::default()
                },
                fuel: 200_000_000,
                ..HybridOptions::default()
            };
            run_hybrid(store, "case", Memcheck::new(), &opts)
        };
        match result {
            Ok(run) => {
                if let Some(dir) = reports_dir {
                    for rep in &run.reports {
                        let stem = dir.join(format!("{tag}-{}", rep.id));
                        let _ =
                            write_atomic(stem.with_extension("txt"), rep.render_text().as_bytes());
                        let _ = write_atomic(
                            stem.with_extension("json"),
                            rep.to_json().render_pretty().as_bytes(),
                        );
                    }
                }
                matches!(run.outcome, RunOutcome::Violation(_)) || !run.engine.reports.is_empty()
            }
            Err(_) => false,
        }
    };

    // Each case pair is an independent four-run experiment; fan the cases
    // out and fold the boolean verdicts back in suite order, so counts
    // match the serial loop exactly.
    let verdicts = par_map(&suite, |case| {
        let good_store = build_case(&base, "case", &case.good);
        let bad_store = build_case(&base, "case", &case.bad);
        let good_tag = format!("case{:04}-good", case.id);
        let bad_tag = format!("case{:04}-bad", case.id);
        let v = [
            run_case(&good_store, false, &good_tag),
            run_case(&bad_store, false, &bad_tag),
            run_case(&good_store, true, &good_tag),
            run_case(&bad_store, true, &bad_tag),
        ];
        // The throwaway per-case executable is dead after these runs;
        // evicting it keeps the cache bounded while the shared libraries
        // stay memoized.
        cache.evict_module("case");
        v
    });

    let mut valgrind = JulietCounts::default();
    let mut jasan = JulietCounts::default();
    let mut fn_by_cat: std::collections::HashMap<JulietCategory, usize> = Default::default();
    for (case, [good_val, bad_val, good_jas, bad_jas]) in suite.iter().zip(&verdicts) {
        for (flagged_good, flagged_bad, is_jasan, counts) in [
            (good_val, bad_val, false, &mut valgrind),
            (good_jas, bad_jas, true, &mut jasan),
        ] {
            if *flagged_good {
                counts.false_positives += 1;
            } else {
                counts.true_negatives += 1;
            }
            if *flagged_bad {
                counts.true_positives += 1;
            } else {
                counts.false_negatives += 1;
                if is_jasan {
                    *fn_by_cat.entry(case.category).or_default() += 1;
                }
            }
        }
    }
    let mut jasan_fn_by_category: Vec<(JulietCategory, usize)> = fn_by_cat.into_iter().collect();
    jasan_fn_by_category.sort_by_key(|(_, n)| *n);
    JulietResult {
        valgrind,
        jasan,
        jasan_fn_by_category,
    }
}

/// Runs one Juliet case's *bad* variant under JASan-hybrid with forensics
/// enabled and returns the assembled violation reports (`None` when the
/// case id is out of range or the run fails to load). Backs the
/// `eval report <case>` subcommand.
pub fn juliet_report(base: &ModuleStore, case_id: usize) -> Option<Vec<ViolationReport>> {
    let mut base = base.clone();
    if base.get(MEMCHECK_RT).is_none() {
        base.add(memcheck_runtime());
    }
    let case = juliet_suite().into_iter().find(|c| c.id == case_id)?;
    let store = build_case(&base, "case", &case.bad);
    let opts = HybridOptions {
        load: LoadOptions {
            preload: vec![RT_MODULE.into()],
            ..LoadOptions::default()
        },
        fuel: 200_000_000,
        forensics: true,
        ..HybridOptions::default()
    };
    let run = run_hybrid(&store, "case", Jasan::hybrid(), &opts).ok()?;
    Some(run.reports)
}

/// §6.2.2 soundness: which workloads draw Lockdown-strong false positives
/// while JCFI stays clean.
pub fn soundness(ew: &EvalWorld) -> Vec<(String, usize, usize)> {
    let mut rows = Vec::new();
    for (i, w) in ew.world.workloads.iter().enumerate() {
        let lockdown_fp = run_config(ew, i, ToolConfig::LockdownStrong)
            .map(|s| s.reports)
            .unwrap_or(0);
        let jcfi_fp = run_config(ew, i, ToolConfig::JcfiHybrid)
            .map(|s| s.reports)
            .unwrap_or(0);
        if lockdown_fp > 0 || jcfi_fp > 0 {
            rows.push((w.name.to_string(), lockdown_fp, jcfi_fp));
        }
    }
    rows
}

/// Configuration of the deterministic `serve` simulation.
#[derive(Clone, Copy, Debug)]
pub struct ServeSimConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests issued by each client.
    pub requests: usize,
    /// Seed of the per-client request streams.
    pub seed: u64,
    /// Per-request analysis work budget
    /// ([`janitizer_analysis::budget::UNLIMITED`] disarms the deadline).
    pub budget: u64,
}

/// Per-reply provenance tally of one serve simulation: how many replies
/// each fill tier served. *Which client* lands on which tier depends on
/// scheduling, but the per-tier totals do not: the `RuleCache` analyzes
/// each `(module, plugin)` key exactly once (the slot lock is held
/// across the analysis), so for a fixed request set exactly one reply
/// per key is `Analyzed`/`Store` and the rest are `Memory` — at any
/// thread count. The serve-metrics parity test enforces this.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ServeProvenance {
    /// Replies served from the in-memory cache.
    pub memory: u64,
    /// Replies served from the persistent store.
    pub store: u64,
    /// Replies that ran a fresh supervised analysis.
    pub analyzed: u64,
}

/// Everything one serve simulation produced: the byte-stable summary,
/// the supervision counters, per-tier provenance, and the service
/// metrics snapshots (deterministic + host + OpenMetrics text).
pub struct ServeSimRun {
    /// Deterministic human-readable summary (print to stdout).
    pub summary: String,
    /// Supervision counter snapshot (scheduling-dependent fields like
    /// `peak_in_flight` included — print to stderr).
    pub stats: janitizer_core::ServeStats,
    /// Per-tier reply provenance totals.
    pub provenance: ServeProvenance,
    /// `janitizer.serve-metrics/v1` — deterministic, byte-identical at
    /// any `--threads`.
    pub metrics_json: String,
    /// `janitizer.serve-metrics-host/v1` — wall-clock queue/latency
    /// truth, never diffed.
    pub host_metrics_json: String,
    /// OpenMetrics exposition of the deterministic metrics registry.
    pub openmetrics: String,
}

impl Default for ServeSimConfig {
    fn default() -> ServeSimConfig {
        ServeSimConfig {
            clients: 4,
            requests: 8,
            seed: 7,
            budget: janitizer_analysis::budget::UNLIMITED,
        }
    }
}

/// The `janitizer-eval serve` mode: a deterministic multi-client
/// simulation of the supervised analysis service. Each client thread
/// draws a seeded request stream over (module, plugin) pairs and asks
/// the shared [`janitizer_core::AnalysisService`] for rules; afterwards
/// every served rule file is compared byte-for-byte against a fresh
/// in-process analysis — the paper's distribute-many invariant: rules
/// served from memory, from the persistent store, or freshly analyzed
/// are indistinguishable to the client.
///
/// Returns a [`ServeSimRun`]: the summary is deterministic (same world,
/// same config → same bytes — print it to stdout); the stats include
/// scheduling-dependent counters (peak in-flight — print them to
/// stderr); the metrics snapshots come straight from the service.
pub fn serve_sim(ew: &EvalWorld, cfg: &ServeSimConfig) -> ServeSimRun {
    use janitizer_core::{AnalysisService, FillSource, SplitMix64, ServiceOptions};

    let mut modules: Vec<String> = ew
        .world
        .store
        .names()
        .into_iter()
        .map(str::to_string)
        .collect();
    modules.sort();
    // Named plugin factories: plugins are not `Send`, so each client
    // thread instantiates its own from these constructors.
    type PluginFactory = fn() -> Box<dyn SecurityPlugin>;
    let plugins: &[(&str, PluginFactory)] = &[
        ("jasan", || Box::new(Jasan::hybrid())),
        ("jcfi", || Box::new(Jcfi::hybrid())),
    ];
    let svc = AnalysisService::new(
        Arc::clone(&ew.cache),
        ServiceOptions {
            budget_units: cfg.budget,
            max_in_flight: threads().max(1),
            ..ServiceOptions::default()
        },
    );

    // `(module, plugin)` -> (requests, served bytes, degradation labels).
    type Tally = BTreeMap<(String, String), (u64, Option<Vec<u8>>, Vec<String>)>;
    let merged: Mutex<Tally> = Mutex::new(BTreeMap::new());
    let mismatches = AtomicUsize::new(0);
    let (from_memory, from_store, from_analysis) =
        (AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0));
    std::thread::scope(|scope| {
        for c in 0..cfg.clients {
            let svc = &svc;
            let modules = &modules;
            let merged = &merged;
            let mismatches = &mismatches;
            let (from_memory, from_store, from_analysis) =
                (&from_memory, &from_store, &from_analysis);
            scope.spawn(move || {
                // Plugins are built per client thread (they are not Send).
                let built: Vec<(&str, Box<dyn SecurityPlugin>)> =
                    plugins.iter().map(|(n, make)| (*n, make())).collect();
                let mut rng = SplitMix64::new(cfg.seed.wrapping_add(c as u64 + 1));
                let mut local: Tally = BTreeMap::new();
                for _ in 0..cfg.requests {
                    let m = (rng.next_u64() as usize) % modules.len();
                    let p = (rng.next_u64() as usize) % built.len();
                    let image = ew.world.store.get(&modules[m]).expect("listed module");
                    let reply = svc.request(&image, built[p].1.as_ref(), true);
                    match reply.source {
                        Some(FillSource::Memory) => from_memory.fetch_add(1, Ordering::Relaxed),
                        Some(FillSource::Store) => from_store.fetch_add(1, Ordering::Relaxed),
                        Some(FillSource::Analyzed { .. }) => {
                            from_analysis.fetch_add(1, Ordering::Relaxed)
                        }
                        None => 0,
                    };
                    let slot = local
                        .entry((modules[m].clone(), built[p].0.to_string()))
                        .or_insert((0, None, Vec::new()));
                    slot.0 += 1;
                    match (&reply.rules, &slot.1) {
                        (Some(file), Some(prev)) => {
                            // Every reply for one key must be byte-identical,
                            // whichever tier served it.
                            if &file.to_bytes() != prev {
                                mismatches.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        (Some(file), None) => slot.1 = Some(file.to_bytes()),
                        (None, _) => {}
                    }
                    if let Some(reason) = reply.degradation {
                        let label = reason.as_str().to_string();
                        if !slot.2.contains(&label) {
                            slot.2.push(label);
                        }
                    }
                }
                let mut all = merged.lock().unwrap_or_else(|e| e.into_inner());
                for (key, (n, bytes, mut labels)) in local {
                    let slot = all.entry(key).or_insert((0, None, Vec::new()));
                    slot.0 += n;
                    match (&bytes, &slot.1) {
                        (Some(b), Some(prev)) if b != prev => {
                            mismatches.fetch_add(1, Ordering::Relaxed);
                        }
                        (Some(b), None) => slot.1 = Some(b.clone()),
                        _ => {}
                    }
                    labels.retain(|l| !slot.2.contains(l));
                    slot.2.extend(labels);
                }
            });
        }
    });

    // Golden check: every served key against a fresh, storeless,
    // unbudgeted in-process analysis.
    let mut parity_ok = 0usize;
    let mut parity_bad = 0usize;
    let tally = merged.into_inner().unwrap_or_else(|e| e.into_inner());
    let mut out = String::new();
    let _ = writeln!(out, "== serve simulation ==");
    let _ = writeln!(
        out,
        "clients={} requests-per-client={} seed={}",
        cfg.clients, cfg.requests, cfg.seed
    );
    for ((module, plugin_name), (n, bytes, mut labels)) in tally {
        let verdict = match &bytes {
            Some(served) => {
                let image = ew.world.store.get(&module).expect("listed module");
                let make = plugins
                    .iter()
                    .find(|(n2, _)| *n2 == plugin_name)
                    .expect("known plugin");
                let fresh = janitizer_core::analyze_statically(&image, make.1().as_ref());
                if &fresh.to_bytes() == served {
                    parity_ok += 1;
                    "parity=ok"
                } else {
                    parity_bad += 1;
                    "parity=MISMATCH"
                }
            }
            None => "unserved",
        };
        labels.sort();
        let degr = if labels.is_empty() {
            String::new()
        } else {
            format!(" degraded[{}]", labels.join(","))
        };
        let _ = writeln!(
            out,
            "{module:<16} {plugin_name:<6} requests={n:<4} {verdict}{degr}"
        );
    }
    let stats = svc.stats();
    let _ = writeln!(
        out,
        "parity: {parity_ok} ok, {parity_bad} mismatched, {} cross-reply mismatches",
        mismatches.load(Ordering::Relaxed)
    );
    let provenance = ServeProvenance {
        memory: from_memory.load(Ordering::Relaxed),
        store: from_store.load(Ordering::Relaxed),
        analyzed: from_analysis.load(Ordering::Relaxed),
    };
    ServeSimRun {
        summary: out,
        stats,
        provenance,
        metrics_json: svc.serve_metrics_json(),
        host_metrics_json: svc.host_metrics_json(),
        openmetrics: janitizer_telemetry::export::to_openmetrics(&svc.metrics_registry()),
    }
}

/// Renders the serve-simulation summary JSON: request/parity totals,
/// per-reply [`FillSource`](janitizer_core::FillSource) provenance
/// counts, and the supervision counters
/// (`serve.{retries,timeouts,panics_isolated}`), so daemon behavior is
/// observable without reading logs.
pub fn serve_summary_json(
    cfg: &ServeSimConfig,
    stats: &janitizer_core::ServeStats,
    prov: &ServeProvenance,
    parity_mismatch: bool,
) -> String {
    use janitizer_telemetry::json::Json;
    Json::obj([
        ("schema", Json::str("janitizer.serve-summary/v1")),
        ("clients", Json::U64(cfg.clients as u64)),
        ("requests_per_client", Json::U64(cfg.requests as u64)),
        ("seed", Json::U64(cfg.seed)),
        ("parity_mismatch", Json::Bool(parity_mismatch)),
        (
            "provenance",
            Json::obj([
                ("memory", Json::U64(prov.memory)),
                ("store", Json::U64(prov.store)),
                ("analyzed", Json::U64(prov.analyzed)),
            ]),
        ),
        (
            "serve",
            Json::obj([
                ("served", Json::U64(stats.served)),
                ("degraded", Json::U64(stats.degraded)),
                ("retries", Json::U64(stats.retries)),
                ("timeouts", Json::U64(stats.timeouts)),
                ("panics_isolated", Json::U64(stats.panics_isolated)),
                ("store_failures", Json::U64(stats.store_failures)),
                ("peak_in_flight", Json::U64(stats.peak_in_flight)),
            ]),
        ),
    ])
    .render_pretty()
}

/// Schema tag stamped on every `BENCH_history.jsonl` line this build
/// appends. Lines written before the tag existed (the seed's first
/// line, which also lacks `figure_wall_ms`) are tolerated by
/// [`bench_trend`] and reported as pre-schema rather than parsed.
pub const BENCH_HISTORY_SCHEMA: &str = "janitizer.bench-history/v1";

/// Renders the wall-clock trend from `BENCH_history.jsonl` content: one
/// row per run (total wall ms and delta vs. the previous run), then the
/// last run's per-figure change. Pre-schema lines (no `figure_wall_ms`)
/// contribute their total but are skipped by the per-figure section;
/// unparseable lines are counted and skipped.
pub fn bench_trend(history: &str) -> String {
    use janitizer_telemetry::json::Json;
    let mut out = String::new();
    type TrendRow = (String, u64, f64, Option<BTreeMap<String, f64>>);
    let mut rows: Vec<TrendRow> = Vec::new();
    let mut skipped = 0usize;
    for line in history.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(doc) = Json::parse(line) else {
            skipped += 1;
            continue;
        };
        let date = doc
            .get("date")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        let threads = doc.get("threads").and_then(Json::as_u64).unwrap_or(0);
        let Some(total) = doc.get("total_wall_ms").and_then(Json::as_f64) else {
            skipped += 1;
            continue;
        };
        let figures = doc.get("figure_wall_ms").and_then(Json::as_obj).map(|obj| {
            obj.iter()
                .filter_map(|(k, v)| v.as_f64().map(|ms| (k.clone(), ms)))
                .collect::<BTreeMap<String, f64>>()
        });
        rows.push((date, threads, total, figures));
    }
    let _ = writeln!(
        out,
        "== bench trend: {} run(s){} ==",
        rows.len(),
        if skipped > 0 {
            format!(", {skipped} unparseable line(s) skipped")
        } else {
            String::new()
        }
    );
    let mut prev_total: Option<f64> = None;
    for (date, threads, total, figures) in &rows {
        let delta = match prev_total {
            Some(p) if p > 0.0 => format!("{:+.1}%", (total / p - 1.0) * 100.0),
            _ => "    -".to_string(),
        };
        let _ = writeln!(
            out,
            "{date}  threads={threads}  total {total:>12.1} ms  {delta}{}",
            if figures.is_none() { "  (pre-schema)" } else { "" }
        );
        prev_total = Some(*total);
    }
    // Per-figure change between the last two runs that carried figures.
    let with_figs: Vec<&BTreeMap<String, f64>> =
        rows.iter().filter_map(|(_, _, _, f)| f.as_ref()).collect();
    if with_figs.len() >= 2 {
        let (prev, last) = (with_figs[with_figs.len() - 2], with_figs[with_figs.len() - 1]);
        let _ = writeln!(out, "-- last run per figure --");
        for (fig, ms) in last {
            match prev.get(fig) {
                Some(p) if *p > 0.0 => {
                    let _ = writeln!(
                        out,
                        "  {fig:<8}{ms:>12.1} ms  {:+.1}%",
                        (ms / p - 1.0) * 100.0
                    );
                }
                _ => {
                    let _ = writeln!(out, "  {fig:<8}{ms:>12.1} ms  (new)");
                }
            }
        }
    }
    out
}

// =====================================================================
// Hostile-module gauntlet: soundness-tiered disassembly backends.
// =====================================================================

/// One `(hostile class, backend)` cell of the gauntlet.
#[derive(Clone, Debug)]
pub struct GauntletCell {
    /// Hostility class (`stripped`, `data-island`, `overlap`,
    /// `jump-table`).
    pub class: String,
    /// Module name in the store.
    pub module: String,
    /// Backend that produced this cell.
    pub backend: &'static str,
    /// Ground-truth instruction bytes in the module.
    pub code_bytes: u64,
    /// Ground-truth bytes inside statically instrumented
    /// (`Proven`/`Likely`) blocks.
    pub static_bytes: u64,
    /// Regions the backend degraded for contradictory code/data evidence.
    pub low_confidence: u64,
    /// Regions the backend degraded as overlap-resolution losers.
    pub conflicts: u64,
    /// Runtime blocks that fell back dynamically inside degraded regions.
    pub region_fallback_blocks: u64,
    /// `exited(0)` / `violation` / `error: ..` / `panic: ..`.
    pub outcome: String,
    /// A JASan violation was reported.
    pub detected: bool,
    /// The cell met its oracle: no crash, detection preserved exactly
    /// when expected.
    pub ok: bool,
}

impl GauntletCell {
    /// Static coverage of the ground-truth bytes, in percent.
    pub fn coverage_pct(&self) -> f64 {
        if self.code_bytes == 0 {
            return 0.0;
        }
        self.static_bytes as f64 * 100.0 / self.code_bytes as f64
    }
}

/// The full gauntlet: every hostile class under every registered
/// backend.
#[derive(Clone, Debug)]
pub struct GauntletResult {
    /// Cells, grouped by backend in registry order, classes in suite
    /// order.
    pub cells: Vec<GauntletCell>,
}

impl GauntletResult {
    /// Every cell met its oracle (the hard acceptance bar: no panics, no
    /// errors, detections preserved under degradation).
    pub fn all_ok(&self) -> bool {
        self.cells.iter().all(|c| c.ok)
    }

    /// Classes where the evidence backend's static coverage *strictly*
    /// exceeds the hybrid backend's.
    pub fn evidence_gains(&self) -> Vec<String> {
        let cov = |class: &str, backend: &str| {
            self.cells
                .iter()
                .find(|c| c.class == class && c.backend == backend)
                .map(|c| c.static_bytes)
        };
        let mut classes: Vec<String> = self
            .cells
            .iter()
            .map(|c| c.class.clone())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        classes.retain(|cl| match (cov(cl, "evidence"), cov(cl, "hybrid")) {
            (Some(e), Some(h)) => e > h,
            _ => false,
        });
        classes
    }

    /// Aligned table for stdout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== hostile-module gauntlet (disassembly backends) ==");
        let _ = writeln!(
            out,
            "{:<12}{:<12}{:>10}{:>12}{:>9}{:>9}{:>9}  {:<14}{:>7}{:>5}",
            "class",
            "backend",
            "coverage",
            "bytes",
            "lowconf",
            "conflict",
            "regdyn",
            "outcome",
            "detect",
            "ok"
        );
        for c in &self.cells {
            let _ = writeln!(
                out,
                "{:<12}{:<12}{:>9.1}%{:>12}{:>9}{:>9}{:>9}  {:<14}{:>7}{:>5}",
                c.class,
                c.backend,
                c.coverage_pct(),
                format!("{}/{}", c.static_bytes, c.code_bytes),
                c.low_confidence,
                c.conflicts,
                c.region_fallback_blocks,
                c.outcome,
                if c.detected { "yes" } else { "-" },
                if c.ok { "ok" } else { "FAIL" }
            );
        }
        let gains = self.evidence_gains();
        let _ = writeln!(
            out,
            "evidence backend strictly increases static coverage on {} class(es): {}",
            gains.len(),
            if gains.is_empty() { "-".into() } else { gains.join(", ") }
        );
        out
    }

    /// CSV mirror of the table.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "class,backend,code_bytes,static_bytes,coverage_pct,low_confidence,conflicts,\
             region_fallback_blocks,outcome,detected,ok\n",
        );
        for c in &self.cells {
            let _ = writeln!(
                out,
                "{},{},{},{},{:.2},{},{},{},{},{},{}",
                c.class,
                c.backend,
                c.code_bytes,
                c.static_bytes,
                c.coverage_pct(),
                c.low_confidence,
                c.conflicts,
                c.region_fallback_blocks,
                c.outcome,
                c.detected,
                c.ok
            );
        }
        out
    }

    /// Schema-stable JSON document (`janitizer.hostile-gauntlet/v1`).
    pub fn to_json(&self) -> String {
        use janitizer_telemetry::json::Json;
        let gains = self.evidence_gains();
        Json::obj([
            ("schema", Json::str("janitizer.hostile-gauntlet/v1")),
            ("all_ok", Json::Bool(self.all_ok())),
            (
                "evidence_gain_classes",
                Json::Arr(gains.into_iter().map(Json::str).collect()),
            ),
            (
                "cells",
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            Json::obj([
                                ("class", Json::str(c.class.clone())),
                                ("module", Json::str(c.module.clone())),
                                ("backend", Json::str(c.backend)),
                                ("code_bytes", Json::U64(c.code_bytes)),
                                ("static_bytes", Json::U64(c.static_bytes)),
                                ("coverage_pct", Json::F64(c.coverage_pct())),
                                ("low_confidence_regions", Json::U64(c.low_confidence)),
                                ("conflict_regions", Json::U64(c.conflicts)),
                                (
                                    "region_fallback_blocks",
                                    Json::U64(c.region_fallback_blocks),
                                ),
                                ("outcome", Json::str(c.outcome.clone())),
                                ("detected", Json::Bool(c.detected)),
                                ("ok", Json::Bool(c.ok)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .render_pretty()
    }
}

/// Ground-truth bytes covered by statically instrumented blocks
/// (`Proven` or `Likely` tiers).
fn gauntlet_static_bytes(
    res: &janitizer_analysis::DisasmResult,
    code_ranges: &[(u64, u64)],
) -> u64 {
    use janitizer_analysis::ConfidenceTier;
    let mut covered = 0u64;
    for block in res.cfg.blocks.values() {
        let tier = res
            .tiers
            .get(&block.start)
            .copied()
            .unwrap_or(ConfidenceTier::Proven);
        if !matches!(tier, ConfidenceTier::Proven | ConfidenceTier::Likely) {
            continue;
        }
        for &(s, e) in code_ranges {
            let lo = block.start.max(s);
            let hi = block.end.min(e);
            if lo < hi {
                covered += hi - lo;
            }
        }
    }
    covered
}

/// Runs the hostile-module gauntlet: every hostile class analyzed and
/// executed under JASan-hybrid with each registered disassembly backend.
/// Every module must analyze soundly or degrade per region — a panic or
/// engine error fails the cell, and the overlap class's heap overflow
/// must stay detected under every backend.
pub fn hostile_gauntlet() -> GauntletResult {
    use janitizer_analysis as analysis;
    let prev = analysis::disasm_backend_name();
    let mut cells = Vec::new();
    for b in analysis::backends() {
        let backend = b.name();
        analysis::set_disasm_backend(backend);
        for m in janitizer_workloads::hostile_suite() {
            let code_bytes = m.code_bytes();
            let janitizer_workloads::HostileModule {
                name,
                class,
                image,
                code_ranges,
                expect_violation,
                ..
            } = m;
            let res = b.analyze(&image);
            let static_bytes = gauntlet_static_bytes(&res, &code_ranges);
            let low_confidence = res
                .degraded
                .iter()
                .filter(|r| r.cause == analysis::RegionCause::LowConfidence)
                .count() as u64;
            let conflicts = res
                .degraded
                .iter()
                .filter(|r| r.cause == analysis::RegionCause::Conflict)
                .count() as u64;

            let mut store = janitizer_workloads::library_base();
            store.add(image);
            let opts = HybridOptions {
                load: LoadOptions {
                    preload: vec![RT_MODULE.into()],
                    ..LoadOptions::default()
                },
                fuel: 200_000_000,
                ..HybridOptions::default()
            };
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_hybrid(&store, name, Jasan::hybrid(), &opts)
            }));
            let (outcome, detected, region_fallback_blocks, crashed) = match run {
                Ok(Ok(r)) => {
                    let detected = matches!(r.outcome, RunOutcome::Violation(_))
                        || !r.engine.reports.is_empty();
                    let outcome = match &r.outcome {
                        RunOutcome::Exited(c) => format!("exited({c})"),
                        RunOutcome::Violation(_) => "violation".into(),
                        RunOutcome::Fault(f) => format!("fault({f:?})"),
                        RunOutcome::OutOfFuel => "out-of-fuel".into(),
                    };
                    let crashed = matches!(r.outcome, RunOutcome::Fault(_) | RunOutcome::OutOfFuel)
                        && !detected;
                    (outcome, detected, r.coverage.region_fallback_blocks, crashed)
                }
                Ok(Err(e)) => (format!("error: {e}"), false, 0, true),
                Err(_) => ("panic".into(), false, 0, true),
            };
            let ok = !crashed && detected == expect_violation;
            cells.push(GauntletCell {
                class: class.to_string(),
                module: name.to_string(),
                backend,
                code_bytes,
                static_bytes,
                low_confidence,
                conflicts,
                region_fallback_blocks,
                outcome,
                detected,
                ok,
            });
        }
    }
    analysis::set_disasm_backend(prev);
    GauntletResult { cells }
}
