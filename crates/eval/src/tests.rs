//! Unit tests for the figure data structures and summary math.

use crate::*;
use std::io;

fn fig(rows: Vec<(&str, Vec<Option<f64>>)>) -> FigResult {
    FigResult {
        title: "test".into(),
        columns: vec!["a".into(), "b".into()],
        rows: rows
            .into_iter()
            .map(|(n, v)| (n.to_string(), v))
            .collect(),
        higher_is_better: false,
        use_mean: false,
    }
}

#[test]
fn geomean_math() {
    let f = fig(vec![
        ("w1", vec![Some(2.0), Some(4.0)]),
        ("w2", vec![Some(8.0), Some(4.0)]),
    ]);
    let g = f.geomean();
    assert!((g[0].unwrap() - 4.0).abs() < 1e-9);
    assert!((g[1].unwrap() - 4.0).abs() < 1e-9);
}

#[test]
fn geomean_skips_missing_cells() {
    let f = fig(vec![
        ("w1", vec![Some(2.0), None]),
        ("w2", vec![Some(8.0), Some(3.0)]),
    ]);
    let g = f.geomean();
    assert!((g[0].unwrap() - 4.0).abs() < 1e-9);
    assert!((g[1].unwrap() - 3.0).abs() < 1e-9);
}

#[test]
fn geomean_x_uses_complete_rows_only() {
    let f = fig(vec![
        ("w1", vec![Some(2.0), None]),
        ("w2", vec![Some(8.0), Some(3.0)]),
    ]);
    let g = f.geomean_x();
    assert!((g[0].unwrap() - 8.0).abs() < 1e-9, "only w2 is complete");
    assert!((g[1].unwrap() - 3.0).abs() < 1e-9);
}

#[test]
fn mean_math() {
    let f = fig(vec![
        ("w1", vec![Some(1.0), Some(10.0)]),
        ("w2", vec![Some(3.0), None]),
    ]);
    let m = f.mean();
    assert!((m[0].unwrap() - 2.0).abs() < 1e-9);
    assert!((m[1].unwrap() - 10.0).abs() < 1e-9);
}

#[test]
fn csv_and_json_render() {
    let f = fig(vec![("w1", vec![Some(1.5), None])]);
    let csv = f.to_csv();
    assert!(csv.starts_with("benchmark,a,b\n"));
    assert!(csv.contains("w1,1.5000,\n"));
    let json = f.to_json();
    assert!(json.contains("\"title\""));
    assert!(json.contains("1.5"));
}

#[test]
fn render_marks_missing_with_x() {
    let f = fig(vec![("w1", vec![Some(1.0), None])]);
    let text = f.render();
    assert!(text.contains('x'), "{text}");
    assert!(text.contains("geomean"));
}

#[test]
fn mean_mode_renders_mean_row() {
    let mut f = fig(vec![("w1", vec![Some(1.0), Some(2.0)])]);
    f.use_mean = true;
    let text = f.render();
    assert!(text.contains("mean"));
    assert!(!text.contains("geomean"));
}

#[test]
fn atomic_write_survives_midwrite_failure() {
    let dir = std::env::temp_dir().join("janitizer-eval-atomic-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fig.json");
    std::fs::write(&path, b"old complete contents").unwrap();

    // The injected writer gets one torn partial write in before failing,
    // modelling a disk filling up mid-stream.
    let err = write_atomic_with(&path, b"replacement", |p, b| {
        std::fs::write(p, &b[..3]).unwrap();
        Err(io::Error::other("disk full"))
    })
    .unwrap_err();
    assert_eq!(err.to_string(), "disk full");
    assert_eq!(
        std::fs::read(&path).unwrap(),
        b"old complete contents",
        "destination must be untouched after a failed write"
    );
    assert!(
        !path.with_file_name("fig.json.tmp").exists(),
        "failed write must not leak its temp file"
    );

    write_atomic(&path, b"replacement").unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), b"replacement");
    assert!(!path.with_file_name("fig.json.tmp").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn inject_spec_parses_and_rejects() {
    let fi = parse_inject("seed=7,rate=0.25").unwrap();
    assert_eq!((fi.seed, fi.rate), (7, 0.25));
    let fi = parse_inject("rate=1,seed=3").unwrap();
    assert_eq!((fi.seed, fi.rate), (3, 1.0));
    assert_eq!(parse_inject("seed=9").map(|f| f.rate), Some(1.0));
    assert!(parse_inject("rate=0.5").is_none(), "seed is mandatory");
    assert!(parse_inject("seed=1,rate=1.5").is_none(), "rate > 1");
    assert!(parse_inject("seed=x").is_none());
    assert!(parse_inject("bogus=1").is_none());
    assert!(parse_inject("").is_none());
}

#[test]
fn empty_juliet_counts_are_zero() {
    let c = JulietCounts::default();
    assert_eq!(
        (c.false_positives, c.true_negatives, c.true_positives, c.false_negatives),
        (0, 0, 0, 0)
    );
}
